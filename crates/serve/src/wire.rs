//! **CHAMWIRE** — the versioned, length-prefixed, CRC32-sealed binary
//! frame protocol `chameleon-serve` speaks over TCP.
//!
//! ```text
//! frame   := magic "CHAMWIR1" (8) | len:u32le | payload[len] | crc32(payload):u32le
//! payload := correlation:u64le | opcode:u8 | body
//! ```
//!
//! Every request carries a client-chosen correlation id; the matching
//! response echoes it, so a client may pipeline requests on one
//! connection and still pair answers unambiguously. The CRC32 footer (the
//! same IEEE polynomial the `CHAMFLT1`/`CHAMLN02` checkpoint envelopes
//! use) seals the payload against transport bit rot; the length prefix is
//! capped at [`MAX_PAYLOAD_BYTES`] so a corrupt or hostile prefix can
//! never drive an allocation.
//!
//! Decoding is total: any byte sequence either yields a value or a typed
//! [`WireError`] — never a panic, never an over-allocation. The proptest
//! frame fuzzer in `tests/wire_fuzz.rs` holds the protocol to that.

use chameleon_core::StepTrace;
use chameleon_fleet::{SessionId, SessionSpec};
use chameleon_obs::{EventRecord, Observation, Stage, StageStats};
use chameleon_replay::crc32;

use crate::metrics::{LatencyHistogram, ServeCounters, LATENCY_BUCKETS};

/// Magic bytes identifying a CHAMWIRE frame (protocol version 1).
pub const WIRE_MAGIC: &[u8; 8] = b"CHAMWIR1";

/// Hard cap on a frame's payload length. A length prefix above this is
/// rejected *before* any allocation happens.
pub const MAX_PAYLOAD_BYTES: usize = 64 << 20;

/// Fixed frame overhead: magic + length prefix + CRC32 footer.
pub const FRAME_OVERHEAD: usize = WIRE_MAGIC.len() + 4 + 4;

/// Why a frame or payload failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame does not start with [`WIRE_MAGIC`] (wrong protocol or
    /// version, or a desynchronized stream).
    BadMagic,
    /// The bytes end before the declared frame or field contents.
    Truncated,
    /// The length prefix exceeds the decoder's cap.
    Oversized {
        /// Declared payload length.
        len: u64,
        /// The cap in force.
        max: u64,
    },
    /// The payload does not match its CRC32 footer.
    BadChecksum {
        /// CRC32 recomputed over the payload as received.
        found: u32,
        /// CRC32 recorded in the footer at send time.
        expected: u32,
    },
    /// The payload's opcode byte names no known request/response.
    UnknownOpcode(u8),
    /// The body is structurally invalid for its opcode.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "bad frame magic"),
            Self::Truncated => write!(f, "truncated frame"),
            Self::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds cap {max}")
            }
            Self::BadChecksum { found, expected } => {
                write!(
                    f,
                    "frame CRC mismatch: found {found:#010x}, expected {expected:#010x}"
                )
            }
            Self::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            Self::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Frame envelope
// ---------------------------------------------------------------------------

/// Wraps a payload in the CHAMWIRE envelope.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    frame.extend_from_slice(WIRE_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame
}

/// Decodes one frame from the front of `bytes`, returning the payload and
/// the total number of bytes the frame occupied.
///
/// # Errors
///
/// Returns a typed [`WireError`] on bad magic, truncation, an oversized
/// length prefix (checked before allocating), or a CRC mismatch.
pub fn decode_frame(bytes: &[u8], max_payload: usize) -> Result<(Vec<u8>, usize), WireError> {
    if bytes.len() < WIRE_MAGIC.len() + 4 {
        return Err(
            if bytes.is_empty() || WIRE_MAGIC.starts_with(&bytes[..bytes.len().min(8)]) {
                WireError::Truncated
            } else {
                WireError::BadMagic
            },
        );
    }
    if &bytes[..WIRE_MAGIC.len()] != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    if len > max_payload {
        return Err(WireError::Oversized {
            len: len as u64,
            max: max_payload as u64,
        });
    }
    let total = FRAME_OVERHEAD + len;
    if bytes.len() < total {
        return Err(WireError::Truncated);
    }
    let payload = &bytes[12..12 + len];
    let footer = u32::from_le_bytes(bytes[12 + len..total].try_into().expect("4 bytes"));
    let found = crc32(payload);
    if found != footer {
        return Err(WireError::BadChecksum {
            found,
            expected: footer,
        });
    }
    Ok((payload.to_vec(), total))
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A client request. Each maps to exactly one [`Response`].
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`] without touching
    /// the engine.
    Ping,
    /// Create a session with this spec (acknowledged by
    /// [`Response::Created`]).
    CreateSession {
        /// Fleet-unique session id, chosen by the client.
        session: SessionId,
        /// Everything needed to build the session deterministically.
        spec: SessionSpec,
    },
    /// Deliver up to `batches` stream batches to the session's learner.
    Step {
        /// Target session.
        session: SessionId,
        /// Maximum batches to deliver.
        batches: u32,
    },
    /// Evaluate the session's learner on the scenario's test set.
    Predict {
        /// Target session.
        session: SessionId,
    },
    /// Serialize the session to a `CHAMFLT1` checkpoint blob.
    Checkpoint {
        /// Target session.
        session: SessionId,
    },
    /// Force the session out of residency into checkpoint form.
    Evict {
        /// Target session.
        session: SessionId,
    },
    /// Snapshot fleet + serving-layer metrics.
    Stats,
    /// Snapshot the unified observability view: per-stage span
    /// aggregates, the event-log tail, and flattened counters
    /// ([`chameleon_obs::Observation`]).
    Observe,
    /// Router health probe; answered with [`Response::ProbeAck`] carrying
    /// a cheap load summary so routers can rank backends.
    Probe,
    /// Export the session for handoff: serialize its `CHAMFLT1` blob and
    /// forget it, so exactly one node owns the session at a time.
    HandoffExport {
        /// Session to export.
        session: SessionId,
    },
    /// Import a handed-off session from its `CHAMFLT1` blob; acknowledged
    /// with [`Response::HandoffAck`].
    Handoff {
        /// Session being handed off (must match the blob's own id).
        session: SessionId,
        /// The full `CHAMFLT1` checkpoint captured on the old owner.
        blob: Vec<u8>,
    },
}

const REQ_PING: u8 = 0x00;
const REQ_CREATE: u8 = 0x01;
const REQ_STEP: u8 = 0x02;
const REQ_PREDICT: u8 = 0x03;
const REQ_CHECKPOINT: u8 = 0x04;
const REQ_EVICT: u8 = 0x05;
const REQ_STATS: u8 = 0x06;
const REQ_OBSERVE: u8 = 0x07;
const REQ_PROBE: u8 = 0x08;
const REQ_HANDOFF_EXPORT: u8 = 0x09;
const REQ_HANDOFF: u8 = 0x0A;

impl Request {
    /// Serializes `correlation | opcode | body` (the frame payload).
    pub fn encode_payload(&self, correlation: u64) -> Vec<u8> {
        let mut p = Vec::with_capacity(32);
        p.extend_from_slice(&correlation.to_le_bytes());
        match self {
            Self::Ping => p.push(REQ_PING),
            Self::CreateSession { session, spec } => {
                p.push(REQ_CREATE);
                p.extend_from_slice(&session.to_le_bytes());
                let spec_bytes = spec.to_bytes();
                p.extend_from_slice(&(spec_bytes.len() as u32).to_le_bytes());
                p.extend_from_slice(&spec_bytes);
            }
            Self::Step { session, batches } => {
                p.push(REQ_STEP);
                p.extend_from_slice(&session.to_le_bytes());
                p.extend_from_slice(&batches.to_le_bytes());
            }
            Self::Predict { session } => {
                p.push(REQ_PREDICT);
                p.extend_from_slice(&session.to_le_bytes());
            }
            Self::Checkpoint { session } => {
                p.push(REQ_CHECKPOINT);
                p.extend_from_slice(&session.to_le_bytes());
            }
            Self::Evict { session } => {
                p.push(REQ_EVICT);
                p.extend_from_slice(&session.to_le_bytes());
            }
            Self::Stats => p.push(REQ_STATS),
            Self::Observe => p.push(REQ_OBSERVE),
            Self::Probe => p.push(REQ_PROBE),
            Self::HandoffExport { session } => {
                p.push(REQ_HANDOFF_EXPORT);
                p.extend_from_slice(&session.to_le_bytes());
            }
            Self::Handoff { session, blob } => {
                p.push(REQ_HANDOFF);
                p.extend_from_slice(&session.to_le_bytes());
                p.extend_from_slice(&(blob.len() as u32).to_le_bytes());
                p.extend_from_slice(blob);
            }
        }
        p
    }

    /// Decodes a frame payload into `(correlation, request)`.
    ///
    /// # Errors
    ///
    /// Returns a typed [`WireError`]; never panics on arbitrary input.
    pub fn decode_payload(payload: &[u8]) -> Result<(u64, Self), WireError> {
        let mut r = Reader(payload);
        let correlation = r.u64()?;
        let opcode = r.u8()?;
        let request = match opcode {
            REQ_PING => Self::Ping,
            REQ_CREATE => {
                let session = r.u64()?;
                let spec_len = r.u32()? as usize;
                let spec_bytes = r.bytes(spec_len)?;
                let (spec, consumed) = SessionSpec::decode_prefix(spec_bytes)
                    .map_err(|_| WireError::Malformed("session spec"))?;
                if consumed != spec_bytes.len() {
                    return Err(WireError::Malformed("trailing bytes after session spec"));
                }
                Self::CreateSession { session, spec }
            }
            REQ_STEP => Self::Step {
                session: r.u64()?,
                batches: r.u32()?,
            },
            REQ_PREDICT => Self::Predict { session: r.u64()? },
            REQ_CHECKPOINT => Self::Checkpoint { session: r.u64()? },
            REQ_EVICT => Self::Evict { session: r.u64()? },
            REQ_STATS => Self::Stats,
            REQ_OBSERVE => Self::Observe,
            REQ_PROBE => Self::Probe,
            REQ_HANDOFF_EXPORT => Self::HandoffExport { session: r.u64()? },
            REQ_HANDOFF => {
                let session = r.u64()?;
                let len = r.u32()? as usize;
                Self::Handoff {
                    session,
                    blob: r.bytes(len)?.to_vec(),
                }
            }
            other => return Err(WireError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok((correlation, request))
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Typed reason a request was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The session id was never created on this server.
    UnknownSession,
    /// The session id already exists.
    DuplicateSession,
    /// The shard hosting the session lost its worker thread.
    ShardDown,
    /// The request was syntactically valid CHAMWIRE but semantically
    /// unusable (bad opcode body, invalid spec, …).
    BadRequest,
    /// The serving layer's engine thread is gone (server shutting down).
    EngineDown,
    /// The fleet accepted the request but the session reported a failure
    /// (invalid config, restore failure, …); the message carries the
    /// session's reason.
    SessionFailed,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            Self::UnknownSession => 0,
            Self::DuplicateSession => 1,
            Self::ShardDown => 2,
            Self::BadRequest => 3,
            Self::EngineDown => 4,
            Self::SessionFailed => 5,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => Self::UnknownSession,
            1 => Self::DuplicateSession,
            2 => Self::ShardDown,
            3 => Self::BadRequest,
            4 => Self::EngineDown,
            5 => Self::SessionFailed,
            _ => return Err(WireError::Malformed("error code")),
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Self::UnknownSession => "unknown session",
            Self::DuplicateSession => "duplicate session",
            Self::ShardDown => "shard down",
            Self::BadRequest => "bad request",
            Self::EngineDown => "engine down",
            Self::SessionFailed => "session failed",
        };
        write!(f, "{name}")
    }
}

/// The summary a [`Request::Predict`] returns: the session's evaluation
/// report, minus nothing — the full per-domain/per-class breakdown rides
/// along so served clients see exactly what in-process callers see.
#[derive(Clone, Debug, PartialEq)]
pub struct PredictSummary {
    /// Final accuracy over the full test set, in percent.
    pub acc_all: f32,
    /// Accuracy per domain, in percent.
    pub per_domain: Vec<f32>,
    /// Accuracy per class, in percent.
    pub per_class: Vec<f32>,
    /// Nominal memory overhead of the strategy in MB.
    pub memory_overhead_mb: f64,
}

/// A combined fleet + serving-layer metrics snapshot, as shipped by
/// [`Response::Stats`]. The merged [`StepTrace`] feeds straight into the
/// `chameleon-hw` pricing path, so a served fleet can be priced exactly
/// like an in-process one.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Sessions resident across all shards.
    pub sessions_resident: u64,
    /// Sessions evicted to checkpoint form across all shards.
    pub sessions_cold: u64,
    /// Sessions ever created.
    pub sessions_created: u64,
    /// Stream batches delivered fleet-wide.
    pub batches: u64,
    /// Evictions performed fleet-wide.
    pub evictions: u64,
    /// Restores performed fleet-wide.
    pub restores: u64,
    /// Every session's operation trace merged into one (the
    /// `chameleon-hw` pricing input).
    pub trace: StepTrace,
    /// Serving-layer counters (frames, bytes, rejects, latency).
    pub serve: ServeCounters,
}

/// The load summary a [`Request::Probe`] returns: enough for a router to
/// rank backends without the cost of a full [`StatsSnapshot`] pull.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeSummary {
    /// Sessions resident across all shards.
    pub sessions_resident: u64,
    /// Sessions evicted to checkpoint form across all shards.
    pub sessions_cold: u64,
    /// Requests currently in flight inside the fleet engine.
    pub in_flight: u64,
}

/// A server response; carries the request's correlation id on the wire.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// The session was created and is resident.
    Created,
    /// A step ran.
    Stepped {
        /// Batches actually delivered (fewer when the stream ends).
        delivered: u32,
        /// Whether the session's stream is now exhausted and finalized.
        done: bool,
    },
    /// A predict (evaluation) ran.
    Predicted(PredictSummary),
    /// A checkpoint was serialized; the `CHAMFLT1` blob.
    Checkpointed(Vec<u8>),
    /// The session was evicted to checkpoint form (idempotent).
    Evicted,
    /// Metrics snapshot.
    Stats(Box<StatsSnapshot>),
    /// Unified observability snapshot (spans + events + counters).
    Observed(Box<Observation>),
    /// The request failed; typed code plus human-readable detail.
    Error {
        /// Typed refusal reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The target shard's queue is full: retry after backing off. The
    /// wire-level surface of fleet [`chameleon_fleet::Backpressure`] —
    /// clients back off instead of stalling a shard, and the connection
    /// stays open.
    RetryAfter {
        /// Suggested minimum backoff before retrying, in milliseconds.
        millis: u32,
    },
    /// Answer to [`Request::Probe`]: a cheap load summary routers use to
    /// rank backends and detect degradation without a full `Stats` pull.
    ProbeAck(ProbeSummary),
    /// Answer to [`Request::HandoffExport`]: the session's `CHAMFLT1`
    /// blob; the exporting node no longer owns the session.
    HandoffExported(Vec<u8>),
    /// Answer to [`Request::Handoff`]: the importing node now owns the
    /// session.
    HandoffAck,
}

const RSP_PONG: u8 = 0x80;
const RSP_CREATED: u8 = 0x81;
const RSP_STEPPED: u8 = 0x82;
const RSP_PREDICTED: u8 = 0x83;
const RSP_CHECKPOINTED: u8 = 0x84;
const RSP_EVICTED: u8 = 0x85;
const RSP_STATS: u8 = 0x86;
const RSP_ERROR: u8 = 0x87;
const RSP_RETRY_AFTER: u8 = 0x88;
const RSP_OBSERVED: u8 = 0x89;
const RSP_PROBE_ACK: u8 = 0x8A;
const RSP_HANDOFF_EXPORTED: u8 = 0x8B;
const RSP_HANDOFF_ACK: u8 = 0x8C;

impl Response {
    /// Serializes `correlation | opcode | body` (the frame payload).
    pub fn encode_payload(&self, correlation: u64) -> Vec<u8> {
        let mut p = Vec::with_capacity(32);
        p.extend_from_slice(&correlation.to_le_bytes());
        match self {
            Self::Pong => p.push(RSP_PONG),
            Self::Created => p.push(RSP_CREATED),
            Self::Stepped { delivered, done } => {
                p.push(RSP_STEPPED);
                p.extend_from_slice(&delivered.to_le_bytes());
                p.push(u8::from(*done));
            }
            Self::Predicted(summary) => {
                p.push(RSP_PREDICTED);
                p.extend_from_slice(&summary.acc_all.to_le_bytes());
                put_f32_list(&mut p, &summary.per_domain);
                put_f32_list(&mut p, &summary.per_class);
                p.extend_from_slice(&summary.memory_overhead_mb.to_le_bytes());
            }
            Self::Checkpointed(blob) => {
                p.push(RSP_CHECKPOINTED);
                p.extend_from_slice(&(blob.len() as u32).to_le_bytes());
                p.extend_from_slice(blob);
            }
            Self::Evicted => p.push(RSP_EVICTED),
            Self::Stats(stats) => {
                p.push(RSP_STATS);
                encode_stats(&mut p, stats);
            }
            Self::Observed(observation) => {
                p.push(RSP_OBSERVED);
                encode_observation(&mut p, observation);
            }
            Self::Error { code, message } => {
                p.push(RSP_ERROR);
                p.push(code.to_u8());
                let bytes = message.as_bytes();
                p.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                p.extend_from_slice(bytes);
            }
            Self::RetryAfter { millis } => {
                p.push(RSP_RETRY_AFTER);
                p.extend_from_slice(&millis.to_le_bytes());
            }
            Self::ProbeAck(summary) => {
                p.push(RSP_PROBE_ACK);
                p.extend_from_slice(&summary.sessions_resident.to_le_bytes());
                p.extend_from_slice(&summary.sessions_cold.to_le_bytes());
                p.extend_from_slice(&summary.in_flight.to_le_bytes());
            }
            Self::HandoffExported(blob) => {
                p.push(RSP_HANDOFF_EXPORTED);
                p.extend_from_slice(&(blob.len() as u32).to_le_bytes());
                p.extend_from_slice(blob);
            }
            Self::HandoffAck => p.push(RSP_HANDOFF_ACK),
        }
        p
    }

    /// Decodes a frame payload into `(correlation, response)`.
    ///
    /// # Errors
    ///
    /// Returns a typed [`WireError`]; never panics on arbitrary input.
    pub fn decode_payload(payload: &[u8]) -> Result<(u64, Self), WireError> {
        let mut r = Reader(payload);
        let correlation = r.u64()?;
        let opcode = r.u8()?;
        let response = match opcode {
            RSP_PONG => Self::Pong,
            RSP_CREATED => Self::Created,
            RSP_STEPPED => Self::Stepped {
                delivered: r.u32()?,
                done: r.u8()? != 0,
            },
            RSP_PREDICTED => Self::Predicted(PredictSummary {
                acc_all: r.f32()?,
                per_domain: r.f32_list()?,
                per_class: r.f32_list()?,
                memory_overhead_mb: r.f64()?,
            }),
            RSP_CHECKPOINTED => {
                let len = r.u32()? as usize;
                Self::Checkpointed(r.bytes(len)?.to_vec())
            }
            RSP_EVICTED => Self::Evicted,
            RSP_STATS => Self::Stats(Box::new(decode_stats(&mut r)?)),
            RSP_OBSERVED => Self::Observed(Box::new(decode_observation(&mut r)?)),
            RSP_ERROR => {
                let code = ErrorCode::from_u8(r.u8()?)?;
                let len = r.u32()? as usize;
                let bytes = r.bytes(len)?;
                let message = std::str::from_utf8(bytes)
                    .map_err(|_| WireError::Malformed("error message utf-8"))?
                    .to_string();
                Self::Error { code, message }
            }
            RSP_RETRY_AFTER => Self::RetryAfter { millis: r.u32()? },
            RSP_PROBE_ACK => Self::ProbeAck(ProbeSummary {
                sessions_resident: r.u64()?,
                sessions_cold: r.u64()?,
                in_flight: r.u64()?,
            }),
            RSP_HANDOFF_EXPORTED => {
                let len = r.u32()? as usize;
                Self::HandoffExported(r.bytes(len)?.to_vec())
            }
            RSP_HANDOFF_ACK => Self::HandoffAck,
            other => return Err(WireError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok((correlation, response))
    }
}

fn put_f32_list(p: &mut Vec<u8>, list: &[f32]) {
    p.extend_from_slice(&(list.len() as u32).to_le_bytes());
    for v in list {
        p.extend_from_slice(&v.to_le_bytes());
    }
}

fn encode_stats(p: &mut Vec<u8>, s: &StatsSnapshot) {
    for v in [
        s.sessions_resident,
        s.sessions_cold,
        s.sessions_created,
        s.batches,
        s.evictions,
        s.restores,
    ] {
        p.extend_from_slice(&v.to_le_bytes());
    }
    let t = &s.trace;
    for v in [
        t.inputs,
        t.trunk_passes,
        t.head_fwd_passes,
        t.head_bwd_passes,
        t.onchip_sample_reads,
        t.onchip_sample_writes,
        t.offchip_latent_reads,
        t.offchip_latent_writes,
        t.offchip_raw_reads,
        t.offchip_raw_writes,
        t.covariance_updates,
        t.matrix_inversions,
        t.inversion_dim as u64,
    ] {
        p.extend_from_slice(&v.to_le_bytes());
    }
    let c = &s.serve;
    for v in [
        c.connections_accepted,
        c.connections_closed,
        c.frames_in,
        c.frames_out,
        c.bytes_in,
        c.bytes_out,
        c.decode_rejects,
        c.backpressure_replies,
        c.requests_ok,
        c.requests_failed,
    ] {
        p.extend_from_slice(&v.to_le_bytes());
    }
    p.extend_from_slice(&(LATENCY_BUCKETS as u32).to_le_bytes());
    for bucket in c.latency.buckets {
        p.extend_from_slice(&bucket.to_le_bytes());
    }
}

fn decode_stats(r: &mut Reader<'_>) -> Result<StatsSnapshot, WireError> {
    let mut s = StatsSnapshot {
        sessions_resident: r.u64()?,
        sessions_cold: r.u64()?,
        sessions_created: r.u64()?,
        batches: r.u64()?,
        evictions: r.u64()?,
        restores: r.u64()?,
        ..StatsSnapshot::default()
    };
    s.trace = StepTrace {
        inputs: r.u64()?,
        trunk_passes: r.u64()?,
        head_fwd_passes: r.u64()?,
        head_bwd_passes: r.u64()?,
        onchip_sample_reads: r.u64()?,
        onchip_sample_writes: r.u64()?,
        offchip_latent_reads: r.u64()?,
        offchip_latent_writes: r.u64()?,
        offchip_raw_reads: r.u64()?,
        offchip_raw_writes: r.u64()?,
        covariance_updates: r.u64()?,
        matrix_inversions: r.u64()?,
        inversion_dim: r.u64()? as usize,
    };
    s.serve = ServeCounters {
        connections_accepted: r.u64()?,
        connections_closed: r.u64()?,
        frames_in: r.u64()?,
        frames_out: r.u64()?,
        bytes_in: r.u64()?,
        bytes_out: r.u64()?,
        decode_rejects: r.u64()?,
        backpressure_replies: r.u64()?,
        requests_ok: r.u64()?,
        requests_failed: r.u64()?,
        latency: LatencyHistogram::default(),
    };
    let buckets = r.u32()? as usize;
    if buckets != LATENCY_BUCKETS {
        return Err(WireError::Malformed("latency bucket count"));
    }
    for bucket in &mut s.serve.latency.buckets {
        *bucket = r.u64()?;
    }
    Ok(s)
}

fn put_str(p: &mut Vec<u8>, text: &str) {
    let bytes = text.as_bytes();
    p.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    p.extend_from_slice(bytes);
}

fn encode_observation(p: &mut Vec<u8>, o: &Observation) {
    p.extend_from_slice(&(o.spans.len() as u32).to_le_bytes());
    for (stage, stats) in &o.spans {
        p.push(stage.id());
        p.extend_from_slice(&stats.count.to_le_bytes());
        p.extend_from_slice(&stats.total_nanos.to_le_bytes());
        p.extend_from_slice(&stats.max_nanos.to_le_bytes());
        p.extend_from_slice(&(LATENCY_BUCKETS as u32).to_le_bytes());
        for bucket in stats.histogram.buckets {
            p.extend_from_slice(&bucket.to_le_bytes());
        }
    }
    p.extend_from_slice(&o.events.capacity.to_le_bytes());
    p.extend_from_slice(&o.events.next_seq.to_le_bytes());
    p.extend_from_slice(&o.events.dropped.to_le_bytes());
    p.extend_from_slice(&(o.events.recent.len() as u32).to_le_bytes());
    for record in &o.events.recent {
        p.extend_from_slice(&record.seq.to_le_bytes());
        p.extend_from_slice(&record.nanos.to_le_bytes());
        put_str(p, &record.message);
    }
    p.extend_from_slice(&(o.counters.len() as u32).to_le_bytes());
    for (name, value) in &o.counters {
        put_str(p, name);
        p.extend_from_slice(&value.to_le_bytes());
    }
}

fn decode_observation(r: &mut Reader<'_>) -> Result<Observation, WireError> {
    let mut o = Observation::default();
    let spans = r.u32()? as usize;
    for _ in 0..spans {
        let stage = Stage::from_id(r.u8()?).ok_or(WireError::Malformed("span stage id"))?;
        let mut stats = StageStats {
            count: r.u64()?,
            total_nanos: r.u64()?,
            max_nanos: r.u64()?,
            ..StageStats::default()
        };
        let buckets = r.u32()? as usize;
        if buckets != LATENCY_BUCKETS {
            return Err(WireError::Malformed("span bucket count"));
        }
        for bucket in &mut stats.histogram.buckets {
            *bucket = r.u64()?;
        }
        o.spans.push((stage, stats));
    }
    o.events.capacity = r.u64()?;
    o.events.next_seq = r.u64()?;
    o.events.dropped = r.u64()?;
    let records = r.u32()? as usize;
    for _ in 0..records {
        let seq = r.u64()?;
        let nanos = r.u64()?;
        o.events.recent.push(EventRecord {
            seq,
            nanos,
            message: r.str("event message")?,
        });
    }
    let counters = r.u32()? as usize;
    for _ in 0..counters {
        let name = r.str("counter name")?;
        o.counters.push((name, r.u64()?));
    }
    Ok(o)
}

/// Best-effort extraction of the correlation id from a payload that failed
/// full decoding, so error replies can still be matched by the client.
pub fn correlation_of(payload: &[u8]) -> u64 {
    payload
        .get(..8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
        .unwrap_or(0)
}

struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn bytes(&mut self, n: usize) -> Result<&[u8], WireError> {
        if self.0.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|_| WireError::Malformed(what))
    }

    fn f32_list(&mut self) -> Result<Vec<f32>, WireError> {
        let len = self.u32()? as usize;
        if self.0.len() < len.saturating_mul(4) {
            return Err(WireError::Truncated);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f32()?);
        }
        Ok(out)
    }

    /// Rejects trailing bytes: a payload must be consumed exactly.
    fn finish(&self) -> Result<(), WireError> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_core::ChameleonConfig;
    use chameleon_stream::{PreferenceProfile, StreamConfig};

    fn spec() -> SessionSpec {
        SessionSpec {
            learner: ChameleonConfig::default(),
            stream: StreamConfig {
                preference: PreferenceProfile::Skewed {
                    preferred: vec![1, 3],
                    boost: 4.0,
                },
                ..StreamConfig::default()
            },
            learner_seed: 11,
            stream_seed: 22,
        }
    }

    #[test]
    fn requests_roundtrip_through_frames() {
        let requests = [
            Request::Ping,
            Request::CreateSession {
                session: 7,
                spec: spec(),
            },
            Request::Step {
                session: 7,
                batches: 12,
            },
            Request::Predict { session: 7 },
            Request::Checkpoint { session: 7 },
            Request::Evict { session: 7 },
            Request::Stats,
            Request::Observe,
            Request::Probe,
            Request::HandoffExport { session: 7 },
            Request::Handoff {
                session: 7,
                blob: vec![0xCA, 0xFE, 0x00, 0x42],
            },
        ];
        for (i, request) in requests.iter().enumerate() {
            let corr = 1000 + i as u64;
            let frame = encode_frame(&request.encode_payload(corr));
            let (payload, used) = decode_frame(&frame, MAX_PAYLOAD_BYTES).expect("frame");
            assert_eq!(used, frame.len());
            let (back_corr, back) = Request::decode_payload(&payload).expect("payload");
            assert_eq!(back_corr, corr);
            assert_eq!(&back, request);
        }
    }

    fn observation() -> Observation {
        let mut o = Observation::default();
        let mut stats = StageStats {
            count: 4,
            total_nanos: 9_000,
            max_nanos: 5_000,
            ..StageStats::default()
        };
        stats.histogram.record_nanos(5_000);
        stats.histogram.record_nanos(1_000);
        o.spans = Stage::ALL
            .iter()
            .map(|&stage| {
                (
                    stage,
                    if stage == Stage::Step {
                        stats.clone()
                    } else {
                        StageStats::default()
                    },
                )
            })
            .collect();
        o.events.capacity = 256;
        o.events.next_seq = 3;
        o.events.dropped = 1;
        o.events.recent.push(EventRecord {
            seq: 2,
            nanos: 77_000,
            message: "shard 0: session 7 evicted".to_string(),
        });
        o.push_counter("fleet.batches", 99);
        o.push_counter("serve.frames_in", 120);
        o
    }

    #[test]
    fn malformed_observation_stage_id_is_rejected() {
        let frame = encode_frame(&Response::Observed(Box::new(observation())).encode_payload(5));
        let (mut payload, _) = decode_frame(&frame, MAX_PAYLOAD_BYTES).expect("frame");
        // First span's stage id sits right after correlation (8) +
        // opcode (1) + span count (4).
        payload[13] = 0xEE;
        assert_eq!(
            Response::decode_payload(&payload),
            Err(WireError::Malformed("span stage id"))
        );
    }

    #[test]
    fn responses_roundtrip_through_frames() {
        let mut stats = StatsSnapshot {
            sessions_resident: 3,
            batches: 99,
            ..StatsSnapshot::default()
        };
        stats.trace.inputs = 990;
        stats.serve.frames_in = 120;
        stats.serve.latency.record_nanos(1_500_000);
        let responses = [
            Response::Pong,
            Response::Created,
            Response::Stepped {
                delivered: 5,
                done: true,
            },
            Response::Predicted(PredictSummary {
                acc_all: 81.25,
                per_domain: vec![80.0, 82.5],
                per_class: vec![79.0, 83.0, 81.0],
                memory_overhead_mb: 1.5,
            }),
            Response::Checkpointed(vec![1, 2, 3, 255]),
            Response::Evicted,
            Response::Stats(Box::new(stats)),
            Response::Error {
                code: ErrorCode::UnknownSession,
                message: "session 9 was never created".into(),
            },
            Response::RetryAfter { millis: 2 },
            Response::Observed(Box::new(observation())),
            Response::ProbeAck(ProbeSummary {
                sessions_resident: 4,
                sessions_cold: 2,
                in_flight: 1,
            }),
            Response::HandoffExported(vec![9, 8, 7]),
            Response::HandoffAck,
        ];
        for (i, response) in responses.iter().enumerate() {
            let corr = 42 + i as u64;
            let frame = encode_frame(&response.encode_payload(corr));
            let (payload, _) = decode_frame(&frame, MAX_PAYLOAD_BYTES).expect("frame");
            let (back_corr, back) = Response::decode_payload(&payload).expect("payload");
            assert_eq!(back_corr, corr);
            assert_eq!(&back, response);
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(WIRE_MAGIC);
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(&[0u8; 64]);
        assert_eq!(
            decode_frame(&frame, MAX_PAYLOAD_BYTES),
            Err(WireError::Oversized {
                len: u64::from(u32::MAX),
                max: MAX_PAYLOAD_BYTES as u64,
            })
        );
    }

    #[test]
    fn flipped_payload_bits_fail_the_crc() {
        let frame = encode_frame(&Request::Stats.encode_payload(5));
        for bit in 0..8 {
            let mut bad = frame.clone();
            let i = WIRE_MAGIC.len() + 4 + 2; // a payload byte
            bad[i] ^= 1 << bit;
            assert!(matches!(
                decode_frame(&bad, MAX_PAYLOAD_BYTES),
                Err(WireError::BadChecksum { .. })
            ));
        }
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut payload = Request::Ping.encode_payload(1);
        payload.push(0);
        assert_eq!(
            Request::decode_payload(&payload),
            Err(WireError::Malformed("trailing bytes"))
        );
    }

    #[test]
    fn correlation_is_recoverable_from_short_garbage() {
        assert_eq!(correlation_of(&[1, 0, 0, 0, 0, 0, 0, 0, 99]), 1);
        assert_eq!(correlation_of(&[1, 2, 3]), 0);
    }
}
