//! The CHAMWIRE TCP server: an acceptor thread, a bounded pool of
//! connection workers, and one engine thread that owns the
//! [`FleetEngine`].
//!
//! Threading model:
//!
//! * the **engine thread** is the only holder of the `FleetEngine`. It
//!   receives decoded requests over an mpsc channel, submits them with a
//!   monotonically increasing correlation id, and matches the fleet's
//!   acknowledgement events back to the waiting connection worker.
//!   Fleet backpressure ([`chameleon_fleet::FleetError::Rejected`]) is
//!   answered with a wire-level [`Response::RetryAfter`] instead of
//!   blocking, so one saturated shard never stalls the serving layer;
//! * **connection workers** pull accepted sockets from a shared queue and
//!   speak CHAMWIRE: split frames, verify CRCs, decode requests, forward
//!   to the engine. Requests are served *pipelined*: the worker keeps
//!   reading and dispatching frames while earlier requests are still in
//!   the engine, and a per-connection **writer thread** sends responses
//!   back as they resolve — out of order is fine, the correlation id is
//!   what pairs them. One slow request therefore never head-of-line
//!   blocks the socket, and a peer multiplexing many logical streams
//!   over a single connection (the router's per-backend connection) gets
//!   full engine-side parallelism from one socket. Read timeouts double
//!   as the idle clock — a connection silent past `idle_timeout` is
//!   reaped;
//! * the **acceptor** admits sockets into the bounded worker queue; when
//!   the queue is full it turns the connection away with a `RetryAfter`
//!   frame rather than letting it queue unbounded.
//!
//! Shutdown is graceful and ordered: the stop flag is raised, the
//! acceptor is woken (a loopback self-connect) and joined, workers finish
//! their in-flight requests and exit when the connection queue closes,
//! and finally the engine drains every outstanding fleet acknowledgement
//! before dropping the engine (which joins the shard threads).

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use chameleon_balance::{BalanceConfig, Balancer};
use chameleon_fleet::{FleetConfig, FleetEngine, FleetError, SessionCommand, SessionEventKind};
use chameleon_obs::{Observation, Observer, Stage};
use chameleon_replay::crc32;
use chameleon_runtime::{timed, Clock, Runtime, WallClock};
use chameleon_stream::{ConfigError, DomainIlScenario};

use crate::metrics::{ServeCounters, ServeMetrics};
use crate::wire::{
    correlation_of, encode_frame, ErrorCode, PredictSummary, ProbeSummary, Request, Response,
    StatsSnapshot, WireError, FRAME_OVERHEAD, MAX_PAYLOAD_BYTES, WIRE_MAGIC,
};

/// Tunables of the serving layer (the fleet itself is shaped separately
/// by [`FleetConfig`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ServeConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"` (port 0 picks a free port;
    /// read it back from [`Server::local_addr`]).
    pub addr: String,
    /// Connection-worker pool size — the number of sockets served
    /// concurrently. The acceptor's hand-off queue has the same bound.
    pub workers: usize,
    /// Socket read timeout. This is also the granularity at which a
    /// worker notices the stop flag and advances the idle clock.
    pub read_timeout: Duration,
    /// Socket write timeout; a peer that stops reading is disconnected.
    pub write_timeout: Duration,
    /// A connection silent for this long is reaped.
    pub idle_timeout: Duration,
    /// Backoff hint carried by [`Response::RetryAfter`] replies.
    pub retry_after: Duration,
    /// Per-frame payload cap enforced by this server (≤
    /// [`MAX_PAYLOAD_BYTES`]).
    pub max_payload: usize,
    /// When set, evicted sessions are spilled to a durable
    /// [`chameleon_store::SessionStore`] in this directory, and startup
    /// recovers every session sealed there back to its last checkpoint.
    pub store_dir: Option<std::path::PathBuf>,
    /// When set, the engine thread runs a [`chameleon_balance::Balancer`]
    /// with this policy, migrating sessions between shards online as load
    /// skews. `None` keeps placement purely hash-static.
    pub balance: Option<BalanceConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            read_timeout: Duration::from_millis(25),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
            retry_after: Duration::from_millis(2),
            max_payload: MAX_PAYLOAD_BYTES,
            store_dir: None,
            balance: None,
        }
    }
}

impl ServeConfig {
    /// Checks structural validity.
    ///
    /// # Errors
    ///
    /// Returns the first violated requirement.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.workers == 0 {
            return Err(ConfigError {
                field: "worker count",
                requirement: "must be positive",
            });
        }
        if self.read_timeout.is_zero() {
            return Err(ConfigError {
                field: "read timeout",
                requirement: "must be positive",
            });
        }
        if self.max_payload == 0 || self.max_payload > MAX_PAYLOAD_BYTES {
            return Err(ConfigError {
                field: "payload cap",
                requirement: "must be within (0, MAX_PAYLOAD_BYTES]",
            });
        }
        Ok(())
    }
}

/// One decoded request on its way to the engine thread, carrying the wire
/// correlation id and the frame's start timestamp so the reply can be
/// written (and its latency priced) by the connection's writer thread.
struct EngineOp {
    request: Request,
    correlation: u64,
    started: u64,
    reply: mpsc::Sender<Outbound>,
}

/// One response on its way to a connection's writer thread. Responses may
/// arrive out of order relative to their requests — the correlation id is
/// what lets the peer pair them back up.
struct Outbound {
    correlation: u64,
    started: u64,
    response: Response,
}

/// What the engine remembers about an accepted fleet request until the
/// fleet acknowledges it.
struct PendingReply {
    correlation: u64,
    started: u64,
    reply: mpsc::Sender<Outbound>,
}

fn answer(reply: &mpsc::Sender<Outbound>, correlation: u64, started: u64, response: Response) {
    let _ = reply.send(Outbound {
        correlation,
        started,
        response,
    });
}

/// Everything a connection worker needs, cloned once per worker thread.
#[derive(Clone)]
struct WorkerCtx {
    ops: mpsc::Sender<EngineOp>,
    metrics: Arc<ServeMetrics>,
    stop: Arc<AtomicBool>,
    obs: Arc<Observer>,
    clock: Arc<dyn Clock>,
    read_timeout: Duration,
    write_timeout: Duration,
    idle_timeout: Duration,
    max_payload: usize,
}

/// A running CHAMWIRE server in front of a [`FleetEngine`].
///
/// Dropping the server shuts it down gracefully (see module docs);
/// [`Server::shutdown`] does the same explicitly and is idempotent.
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServeMetrics>,
    observer: Arc<Observer>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    engine: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the engine + worker + acceptor threads, and begins
    /// serving.
    ///
    /// # Errors
    ///
    /// Returns an [`std::io::Error`] if either config fails validation
    /// (`InvalidInput`) or the listener cannot bind.
    pub fn start(
        scenario: Arc<DomainIlScenario>,
        fleet_config: FleetConfig,
        config: ServeConfig,
    ) -> std::io::Result<Self> {
        Self::start_with_clock(scenario, fleet_config, config, WallClock::shared())
    }

    /// [`Self::start`] with an injected [`Clock`]. Production callers
    /// pass a [`WallClock`]; simulation tests pass a
    /// [`chameleon_runtime::VirtualClock`] so time-dependent behavior —
    /// the idle reaper, request latency accounting — is driven by
    /// explicit `advance` calls instead of wall-clock sleeps.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::start`].
    pub fn start_with_clock(
        scenario: Arc<DomainIlScenario>,
        fleet_config: FleetConfig,
        config: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> std::io::Result<Self> {
        let invalid = |e: ConfigError| std::io::Error::new(ErrorKind::InvalidInput, e.to_string());
        config.validate().map_err(invalid)?;
        fleet_config.validate().map_err(invalid)?;

        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = Arc::new(ServeMetrics::default());
        let stop = Arc::new(AtomicBool::new(false));

        // One observer for the whole server, on the injected clock: the
        // fleet's shard workers record step/eval/checkpoint/restore spans
        // into it, the connection workers add encode/decode spans, and
        // `Request::Observe` snapshots it all in one round-trip.
        let observer = Arc::new(Observer::new(Arc::clone(&clock)));
        let fleet = match &config.store_dir {
            Some(dir) => {
                // Durable mode: open (or create) the session store, then
                // recover — every sealed session comes back cold on its
                // home shard before the first request is accepted.
                let store_err =
                    |e: chameleon_store::StoreError| std::io::Error::other(e.to_string());
                let store =
                    chameleon_store::SharedStore::open(chameleon_store::StoreConfig::new(dir))
                        .map_err(store_err)?;
                let (fleet, _report) = FleetEngine::recover_with_observer(
                    scenario,
                    fleet_config,
                    Runtime::Threads,
                    Arc::clone(&observer),
                    store,
                )
                .map_err(store_err)?;
                fleet
            }
            None => FleetEngine::with_observer(
                scenario,
                fleet_config,
                Runtime::Threads,
                Arc::clone(&observer),
            ),
        };
        let (op_tx, op_rx) = mpsc::channel::<EngineOp>();
        let engine_metrics = Arc::clone(&metrics);
        let retry_after = config.retry_after;
        let balance = config.balance.clone();
        let engine = std::thread::Builder::new()
            .name("serve-engine".to_string())
            .spawn(move || engine_loop(fleet, &op_rx, &engine_metrics, retry_after, balance))
            .expect("spawn engine thread");

        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(config.workers);
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let ctx = WorkerCtx {
            ops: op_tx,
            metrics: Arc::clone(&metrics),
            stop: Arc::clone(&stop),
            obs: Arc::clone(&observer),
            clock,
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            idle_timeout: config.idle_timeout,
            max_payload: config.max_payload,
        };
        let workers = (0..config.workers)
            .map(|index| {
                let ctx = ctx.clone();
                let conn_rx = Arc::clone(&conn_rx);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{index}"))
                    .spawn(move || worker_loop(&ctx, &conn_rx))
                    .expect("spawn connection worker")
            })
            .collect();
        // `ctx` (holding the original `op_tx`) drops at the end of this
        // scope: only worker threads keep engine senders alive, so the
        // engine exits exactly when the last worker does.

        let acceptor_metrics = Arc::clone(&metrics);
        let acceptor_stop = Arc::clone(&stop);
        let acceptor = std::thread::Builder::new()
            .name("serve-acceptor".to_string())
            .spawn(move || {
                acceptor_loop(
                    &listener,
                    &conn_tx,
                    &acceptor_stop,
                    &acceptor_metrics,
                    retry_after,
                );
            })
            .expect("spawn acceptor thread");

        Ok(Self {
            local_addr,
            stop,
            metrics,
            observer,
            acceptor: Some(acceptor),
            workers,
            engine: Some(engine),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the serving-layer counters.
    pub fn metrics(&self) -> ServeCounters {
        self.metrics.snapshot()
    }

    /// The server-wide span recorder + event log (the same one
    /// `Request::Observe` snapshots).
    pub fn observer(&self) -> Arc<Observer> {
        Arc::clone(&self.observer)
    }

    /// Graceful shutdown: stop accepting, let workers finish their
    /// in-flight requests, drain the fleet, join every thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the acceptor out of its blocking accept().
        let _ = TcpStream::connect(self.local_addr);
        if let Some(join) = self.acceptor.take() {
            let _ = join.join();
        }
        for join in self.workers.drain(..) {
            let _ = join.join();
        }
        if let Some(join) = self.engine.take() {
            let _ = join.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Engine thread
// ---------------------------------------------------------------------------

fn engine_loop(
    mut fleet: FleetEngine,
    ops: &Receiver<EngineOp>,
    metrics: &ServeMetrics,
    retry_after: Duration,
    balance: Option<BalanceConfig>,
) {
    let retry_millis = retry_after.as_millis().min(u128::from(u32::MAX)) as u32;
    let mut next_correlation: u64 = 1;
    let mut pending: HashMap<u64, PendingReply> = HashMap::new();
    // The balancer lives here because migration needs exclusive engine
    // access; it ticks between ops, so a migration never interleaves with
    // a request's submit/acknowledge pair.
    let mut balancer = balance.as_ref().map(BalanceConfig::build);
    loop {
        match ops.recv_timeout(Duration::from_millis(1)) {
            Ok(op) => {
                handle_op(
                    &mut fleet,
                    op,
                    &mut pending,
                    &mut next_correlation,
                    metrics,
                    retry_millis,
                    balancer.as_ref(),
                );
                if let Some(balancer) = balancer.as_mut() {
                    balancer.on_op(&mut fleet);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        flush_events(&mut fleet, &mut pending);
    }
    // Every accepted fleet request is acknowledged by exactly one event;
    // resolve them all before dropping the engine (which joins shards).
    for event in fleet.drain_pending() {
        if let Some(p) = pending.remove(&event.correlation) {
            answer(
                &p.reply,
                p.correlation,
                p.started,
                event_response(event.kind),
            );
        }
    }
    for (_, p) in pending.drain() {
        answer(
            &p.reply,
            p.correlation,
            p.started,
            Response::Error {
                code: ErrorCode::EngineDown,
                message: "server shut down before the request resolved".to_string(),
            },
        );
    }
}

fn flush_events(fleet: &mut FleetEngine, pending: &mut HashMap<u64, PendingReply>) {
    for event in fleet.drain() {
        if let Some(p) = pending.remove(&event.correlation) {
            answer(
                &p.reply,
                p.correlation,
                p.started,
                event_response(event.kind),
            );
        }
    }
}

fn handle_op(
    fleet: &mut FleetEngine,
    op: EngineOp,
    pending: &mut HashMap<u64, PendingReply>,
    next_correlation: &mut u64,
    metrics: &ServeMetrics,
    retry_millis: u32,
    balancer: Option<&Balancer>,
) {
    // The fleet's internal correlation space is the engine's own — the
    // wire correlation rides alongside in `pending` and stamps the reply.
    let EngineOp {
        request,
        correlation: wire,
        started,
        reply,
    } = op;
    let correlation = *next_correlation;
    let submitted = match request {
        Request::Ping => {
            answer(&reply, wire, started, Response::Pong);
            return;
        }
        Request::Stats => {
            let fm = fleet.metrics();
            let snapshot = StatsSnapshot {
                sessions_resident: fm.sessions_resident() as u64,
                sessions_cold: fm.sessions_cold() as u64,
                sessions_created: fm.sessions_created(),
                batches: fm.batches(),
                evictions: fm.evictions(),
                restores: fm.restores(),
                trace: fm.merged_trace(),
                serve: metrics.snapshot(),
            };
            answer(&reply, wire, started, Response::Stats(Box::new(snapshot)));
            return;
        }
        Request::Observe => {
            let observation = build_observation(fleet, metrics, balancer);
            answer(
                &reply,
                wire,
                started,
                Response::Observed(Box::new(observation)),
            );
            return;
        }
        Request::Probe => {
            // Answered engine-side so the summary reflects the fleet the
            // router would actually route to, yet without the cost of a
            // full stats snapshot.
            let fm = fleet.metrics();
            let summary = ProbeSummary {
                sessions_resident: fm.sessions_resident() as u64,
                sessions_cold: fm.sessions_cold() as u64,
                in_flight: fleet.pending() as u64,
            };
            answer(&reply, wire, started, Response::ProbeAck(summary));
            return;
        }
        Request::CreateSession { session, spec } => {
            fleet.create_correlated(session, spec, correlation)
        }
        Request::Step { session, batches } => fleet.command_correlated(
            session,
            SessionCommand::Step {
                batches: batches as usize,
            },
            correlation,
        ),
        Request::Predict { session } => {
            fleet.command_correlated(session, SessionCommand::Evaluate, correlation)
        }
        Request::Checkpoint { session } => {
            fleet.command_correlated(session, SessionCommand::Checkpoint, correlation)
        }
        Request::Evict { session } => {
            fleet.command_correlated(session, SessionCommand::Evict, correlation)
        }
        Request::HandoffExport { session } => {
            fleet.command_correlated(session, SessionCommand::Export, correlation)
        }
        Request::Handoff { session, blob } => fleet.import_correlated(session, blob, correlation),
    };
    match submitted {
        Ok(()) => {
            *next_correlation += 1;
            pending.insert(
                correlation,
                PendingReply {
                    correlation: wire,
                    started,
                    reply,
                },
            );
        }
        Err(error) => {
            answer(
                &reply,
                wire,
                started,
                fleet_error_response(&error, retry_millis),
            );
        }
    }
}

/// Snapshots the unified observability view: the server observer's span
/// aggregates and event tail, plus every fleet / trace / serve counter
/// flattened under a dotted name. The `fleet.*_nanos` counters and the
/// corresponding span totals come from the *same* shard measurements, so
/// they reconcile exactly.
fn build_observation(
    fleet: &mut FleetEngine,
    metrics: &ServeMetrics,
    balancer: Option<&Balancer>,
) -> Observation {
    let mut o = fleet.observer().observe();
    let fm = fleet.metrics();
    o.push_counter("fleet.sessions_resident", fm.sessions_resident() as u64);
    o.push_counter("fleet.sessions_cold", fm.sessions_cold() as u64);
    o.push_counter("fleet.sessions_created", fm.sessions_created());
    o.push_counter("fleet.batches", fm.batches());
    o.push_counter("fleet.evictions", fm.evictions());
    o.push_counter("fleet.restores", fm.restores());
    o.push_counter("fleet.migrations", fleet.migrations());
    o.push_counter(
        "fleet.placement_overrides",
        fleet.placement_overrides() as u64,
    );
    o.push_counter("fleet.step_nanos", fm.step_nanos());
    o.push_counter("fleet.checkpoint_nanos", fm.checkpoint_nanos());
    o.push_counter("fleet.restore_nanos", fm.restore_nanos());
    o.push_counter("fleet.eval_nanos", fm.eval_nanos());
    // Per-shard load gauges: the signals the balancer itself watches, so
    // hot-shard skew (and its correction) is visible from the outside.
    for shard in &fm.per_shard {
        let prefix = format!("fleet.shard{}", shard.shard);
        o.push_counter(format!("{prefix}.queue_depth"), shard.queue_depth as u64);
        o.push_counter(format!("{prefix}.batches"), shard.batches);
        o.push_counter(format!("{prefix}.resident_bytes"), shard.resident_bytes);
        o.push_counter(format!("{prefix}.evictions"), shard.evictions);
    }
    if let Some(balancer) = balancer {
        for (name, value) in balancer.counters().named() {
            o.push_counter(name, value);
        }
    }
    let t = fm.merged_trace();
    o.push_counter("trace.inputs", t.inputs);
    o.push_counter("trace.trunk_passes", t.trunk_passes);
    o.push_counter("trace.head_fwd_passes", t.head_fwd_passes);
    o.push_counter("trace.head_bwd_passes", t.head_bwd_passes);
    o.push_counter("trace.onchip_sample_reads", t.onchip_sample_reads);
    o.push_counter("trace.onchip_sample_writes", t.onchip_sample_writes);
    o.push_counter("trace.offchip_latent_reads", t.offchip_latent_reads);
    o.push_counter("trace.offchip_latent_writes", t.offchip_latent_writes);
    o.push_counter("trace.offchip_raw_reads", t.offchip_raw_reads);
    o.push_counter("trace.offchip_raw_writes", t.offchip_raw_writes);
    o.push_counter("trace.covariance_updates", t.covariance_updates);
    o.push_counter("trace.matrix_inversions", t.matrix_inversions);
    o.push_counter("trace.inversion_dim", t.inversion_dim as u64);
    let c = metrics.snapshot();
    o.push_counter("serve.connections_accepted", c.connections_accepted);
    o.push_counter("serve.connections_closed", c.connections_closed);
    o.push_counter("serve.frames_in", c.frames_in);
    o.push_counter("serve.frames_out", c.frames_out);
    o.push_counter("serve.bytes_in", c.bytes_in);
    o.push_counter("serve.bytes_out", c.bytes_out);
    o.push_counter("serve.decode_rejects", c.decode_rejects);
    o.push_counter("serve.backpressure_replies", c.backpressure_replies);
    o.push_counter("serve.requests_ok", c.requests_ok);
    o.push_counter("serve.requests_failed", c.requests_failed);
    if let Some(s) = fleet.store_counters() {
        o.push_counter("store.appends", s.appends);
        o.push_counter("store.append_bytes", s.append_bytes);
        o.push_counter("store.fsyncs", s.fsyncs);
        o.push_counter("store.rotations", s.rotations);
        o.push_counter("store.compactions", s.compactions);
        o.push_counter("store.torn_truncations", s.torn_truncations);
        o.push_counter("store.truncated_bytes", s.truncated_bytes);
        o.push_counter("store.decode_rejects", s.decode_rejects);
        o.push_counter("store.short_reads", s.short_reads);
        o.push_counter("store.sessions_recovered", s.sessions_recovered);
        o.push_counter("store.segments", s.segments);
        o.push_counter("store.live_records", s.live_records);
        o.push_counter("store.dead_bytes", s.dead_bytes);
    }
    o
}

fn fleet_error_response(error: &FleetError, retry_millis: u32) -> Response {
    match error {
        FleetError::Rejected(_) => Response::RetryAfter {
            millis: retry_millis,
        },
        FleetError::UnknownSession => Response::Error {
            code: ErrorCode::UnknownSession,
            message: "session was never created on this server".to_string(),
        },
        FleetError::DuplicateSession => Response::Error {
            code: ErrorCode::DuplicateSession,
            message: "session already exists".to_string(),
        },
        FleetError::ShardDown(shard) => Response::Error {
            code: ErrorCode::ShardDown,
            message: format!("shard {shard} worker is down"),
        },
    }
}

fn event_response(kind: SessionEventKind) -> Response {
    match kind {
        SessionEventKind::Created => Response::Created,
        SessionEventKind::Stepped { delivered, done } => Response::Stepped {
            delivered: delivered as u32,
            done,
        },
        SessionEventKind::Evaluated(report) => Response::Predicted(PredictSummary {
            acc_all: report.acc_all,
            per_domain: report.per_domain,
            per_class: report.per_class,
            memory_overhead_mb: report.memory_overhead_mb,
        }),
        SessionEventKind::Checkpointed(blob) => Response::Checkpointed(blob),
        SessionEventKind::Exported(blob) => Response::HandoffExported(blob),
        SessionEventKind::Imported => Response::HandoffAck,
        SessionEventKind::Evicted => Response::Evicted,
        SessionEventKind::Failed(reason) => Response::Error {
            code: ErrorCode::SessionFailed,
            message: reason,
        },
    }
}

// ---------------------------------------------------------------------------
// Acceptor
// ---------------------------------------------------------------------------

fn acceptor_loop(
    listener: &TcpListener,
    conn_tx: &SyncSender<TcpStream>,
    stop: &AtomicBool,
    metrics: &ServeMetrics,
    retry_after: Duration,
) {
    for incoming in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let stream = match incoming {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        ServeMetrics::add(&metrics.connections_accepted, 1);
        match conn_tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(stream)) => turn_away(stream, retry_after, metrics),
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

/// Every worker is busy and the hand-off queue is full: answer with a
/// `RetryAfter` frame (correlation 0 — no request was read) and close.
fn turn_away(mut stream: TcpStream, retry_after: Duration, metrics: &ServeMetrics) {
    let millis = retry_after.as_millis().min(u128::from(u32::MAX)) as u32;
    let frame = encode_frame(&Response::RetryAfter { millis }.encode_payload(0));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    if stream.write_all(&frame).is_ok() {
        ServeMetrics::add(&metrics.frames_out, 1);
        ServeMetrics::add(&metrics.bytes_out, frame.len() as u64);
    }
    ServeMetrics::add(&metrics.backpressure_replies, 1);
    ServeMetrics::add(&metrics.connections_closed, 1);
}

// ---------------------------------------------------------------------------
// Connection workers
// ---------------------------------------------------------------------------

fn worker_loop(ctx: &WorkerCtx, conn_rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        let stream = {
            let Ok(guard) = conn_rx.lock() else { return };
            match guard.recv() {
                Ok(stream) => stream,
                Err(_) => return, // acceptor gone: no more connections
            }
        };
        handle_connection(ctx, stream);
        ServeMetrics::add(&ctx.metrics.connections_closed, 1);
    }
}

/// How the front of the receive buffer splits.
enum FrameSplit {
    /// No complete frame yet; read more bytes.
    NeedMore,
    /// One CRC-valid frame of `used` bytes.
    Frame { payload: Vec<u8>, used: usize },
    /// A reject. `used == 0` means the stream cannot be resynchronized
    /// (bad magic, hostile length) and the connection must close; a
    /// nonzero `used` means the frame boundary is known, so the frame is
    /// skipped and the connection survives.
    Corrupt {
        used: usize,
        correlation: u64,
        error: WireError,
    },
}

fn split_frame(buf: &[u8], max_payload: usize) -> FrameSplit {
    let head = buf.len().min(WIRE_MAGIC.len());
    if buf[..head] != WIRE_MAGIC[..head] {
        return FrameSplit::Corrupt {
            used: 0,
            correlation: 0,
            error: WireError::BadMagic,
        };
    }
    if buf.len() < WIRE_MAGIC.len() + 4 {
        return FrameSplit::NeedMore;
    }
    let len = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")) as usize;
    if len > max_payload {
        return FrameSplit::Corrupt {
            used: 0,
            correlation: 0,
            error: WireError::Oversized {
                len: len as u64,
                max: max_payload as u64,
            },
        };
    }
    let total = FRAME_OVERHEAD + len;
    if buf.len() < total {
        return FrameSplit::NeedMore;
    }
    let payload = &buf[12..12 + len];
    let footer = u32::from_le_bytes(buf[12 + len..total].try_into().expect("4 bytes"));
    let found = crc32(payload);
    if found != footer {
        return FrameSplit::Corrupt {
            used: total,
            correlation: correlation_of(payload),
            error: WireError::BadChecksum {
                found,
                expected: footer,
            },
        };
    }
    FrameSplit::Frame {
        payload: payload.to_vec(),
        used: total,
    }
}

fn handle_connection(ctx: &WorkerCtx, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(ctx.read_timeout));
    let _ = stream.set_write_timeout(Some(ctx.write_timeout));
    // The reader half (this thread) and the writer half share the socket:
    // responses stream back as they resolve while further requests are
    // still being read, paired by correlation id.
    let Ok(writer_stream) = stream.try_clone() else {
        return;
    };
    let (out_tx, out_rx) = mpsc::channel::<Outbound>();
    let writer_dead = Arc::new(AtomicBool::new(false));
    let writer = {
        let ctx = ctx.clone();
        let dead = Arc::clone(&writer_dead);
        std::thread::Builder::new()
            .name("serve-writer".to_string())
            .spawn(move || writer_loop(&ctx, writer_stream, &out_rx, &dead))
            .expect("spawn connection writer")
    };
    let mut buf: Vec<u8> = Vec::new();
    let mut scratch = [0u8; 16 * 1024];
    // Idle reaping reads the injected clock: each read timeout is a
    // chance to notice that `idle_timeout` has elapsed since the last
    // byte arrived. Under a virtual clock the connection only ages when
    // the test advances time.
    let mut last_activity = ctx.clock.now_nanos();
    let idle_timeout_nanos = ctx.idle_timeout.as_nanos() as u64;
    'conn: loop {
        // Dispatch every complete frame already buffered before reading
        // more; none of these dispatches blocks on the engine.
        loop {
            match split_frame(&buf, ctx.max_payload) {
                FrameSplit::NeedMore => break,
                FrameSplit::Frame { payload, used } => {
                    buf.drain(..used);
                    serve_one(ctx, &out_tx, &payload);
                }
                FrameSplit::Corrupt {
                    used,
                    correlation,
                    error,
                } => {
                    // requests_failed is counted by the writer when it
                    // sends the Error response — not here, or the reject
                    // would be double-counted.
                    ServeMetrics::add(&ctx.metrics.decode_rejects, 1);
                    let reply = Response::Error {
                        code: ErrorCode::BadRequest,
                        message: error.to_string(),
                    };
                    answer(&out_tx, correlation, ctx.clock.now_nanos(), reply);
                    if used == 0 {
                        break 'conn; // desynchronized: nothing after this parses
                    }
                    buf.drain(..used);
                }
            }
        }
        if ctx.stop.load(Ordering::Relaxed) || writer_dead.load(Ordering::Relaxed) {
            break; // in-flight frames above were dispatched first
        }
        match stream.read(&mut scratch) {
            Ok(0) => break, // clean EOF
            Ok(n) => {
                last_activity = ctx.clock.now_nanos();
                ServeMetrics::add(&ctx.metrics.bytes_in, n as u64);
                buf.extend_from_slice(&scratch[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if ctx.clock.now_nanos().saturating_sub(last_activity) >= idle_timeout_nanos {
                    break; // reaped
                }
            }
            Err(_) => break,
        }
    }
    // The writer drains what is already queued and exits once every sender
    // is gone — ours here, and the engine's transient clones as the last
    // in-flight requests resolve.
    drop(out_tx);
    let _ = writer.join();
}

/// Dispatches one CRC-valid frame. Never blocks on the engine: the
/// response reaches the connection's writer thread via `out`.
fn serve_one(ctx: &WorkerCtx, out: &mpsc::Sender<Outbound>, payload: &[u8]) {
    let started = ctx.clock.now_nanos();
    ServeMetrics::add(&ctx.metrics.frames_in, 1);
    let (decoded, decode_nanos) = timed(ctx.clock.as_ref(), || Request::decode_payload(payload));
    ctx.obs.record(Stage::Decode, decode_nanos);
    let (correlation, request) = match decoded {
        Ok(decoded) => decoded,
        Err(error) => {
            ServeMetrics::add(&ctx.metrics.decode_rejects, 1);
            let reply = Response::Error {
                code: ErrorCode::BadRequest,
                message: error.to_string(),
            };
            answer(out, correlation_of(payload), started, reply);
            return;
        }
    };
    match request {
        // Liveness must stay observable even when the engine is saturated.
        Request::Ping => answer(out, correlation, started, Response::Pong),
        request => {
            let op = EngineOp {
                request,
                correlation,
                started,
                reply: out.clone(),
            };
            if ctx.ops.send(op).is_err() {
                let reply = Response::Error {
                    code: ErrorCode::EngineDown,
                    message: "engine thread is gone".to_string(),
                };
                answer(out, correlation, started, reply);
            }
        }
    }
}

/// Owns the write half of one connection: prices each response, writes it,
/// and on a write failure faults the reader by shutting the socket down.
fn writer_loop(
    ctx: &WorkerCtx,
    mut stream: TcpStream,
    out_rx: &Receiver<Outbound>,
    dead: &AtomicBool,
) {
    while let Ok(out) = out_rx.recv() {
        match &out.response {
            Response::RetryAfter { .. } => ServeMetrics::add(&ctx.metrics.backpressure_replies, 1),
            Response::Error { .. } => ServeMetrics::add(&ctx.metrics.requests_failed, 1),
            _ => ServeMetrics::add(&ctx.metrics.requests_ok, 1),
        }
        let (wrote, encode_nanos) = timed(ctx.clock.as_ref(), || {
            write_response(ctx, &mut stream, out.correlation, &out.response)
        });
        ctx.obs.record(Stage::Encode, encode_nanos);
        let elapsed = ctx.clock.now_nanos().saturating_sub(out.started);
        ctx.metrics.record_latency(Duration::from_nanos(elapsed));
        if !wrote {
            // The peer stopped reading (or is gone): poison the connection
            // so the reader stops feeding it and unblock its pending read.
            dead.store(true, Ordering::Relaxed);
            let _ = stream.shutdown(std::net::Shutdown::Both);
            break;
        }
    }
}

fn write_response(
    ctx: &WorkerCtx,
    stream: &mut TcpStream,
    correlation: u64,
    response: &Response,
) -> bool {
    let frame = encode_frame(&response.encode_payload(correlation));
    if stream.write_all(&frame).is_err() {
        return false;
    }
    ServeMetrics::add(&ctx.metrics.frames_out, 1);
    ServeMetrics::add(&ctx.metrics.bytes_out, frame.len() as u64);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_frame_recognizes_partial_and_whole_frames() {
        let frame = encode_frame(&Request::Ping.encode_payload(9));
        for cut in 0..frame.len() {
            assert!(matches!(
                split_frame(&frame[..cut], MAX_PAYLOAD_BYTES),
                FrameSplit::NeedMore
            ));
        }
        match split_frame(&frame, MAX_PAYLOAD_BYTES) {
            FrameSplit::Frame { used, .. } => assert_eq!(used, frame.len()),
            _ => panic!("whole frame did not split"),
        }
    }

    #[test]
    fn split_frame_rejects_bad_magic_early() {
        // The very first wrong byte is enough — no need to buffer a
        // whole header before rejecting a desynchronized stream.
        assert!(matches!(
            split_frame(b"X", MAX_PAYLOAD_BYTES),
            FrameSplit::Corrupt {
                used: 0,
                error: WireError::BadMagic,
                ..
            }
        ));
    }

    #[test]
    fn split_frame_survivable_corruption_reports_boundary() {
        let mut frame = encode_frame(&Request::Stats.encode_payload(77));
        let i = frame.len() - 5; // the opcode byte — past the correlation
        frame[i] ^= 0x40;
        match split_frame(&frame, MAX_PAYLOAD_BYTES) {
            FrameSplit::Corrupt {
                used,
                correlation,
                error: WireError::BadChecksum { .. },
            } => {
                assert_eq!(used, frame.len());
                assert_eq!(correlation, 77);
            }
            _ => panic!("checksum corruption not detected"),
        }
    }

    #[test]
    fn split_frame_caps_length_before_buffering() {
        let mut frame = Vec::new();
        frame.extend_from_slice(WIRE_MAGIC);
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            split_frame(&frame, MAX_PAYLOAD_BYTES),
            FrameSplit::Corrupt {
                used: 0,
                error: WireError::Oversized { .. },
                ..
            }
        ));
    }
}
