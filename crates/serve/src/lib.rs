//! `chameleon-serve`: a dependency-free TCP serving layer in front of the
//! [`chameleon_fleet`] engine, speaking **CHAMWIRE** — a versioned,
//! length-prefixed, CRC32-sealed binary frame protocol with request
//! correlation ids.
//!
//! The Chameleon paper's deployment target is an edge gateway hosting
//! many users' continual-learning sessions. `chameleon-fleet` provides
//! the in-process hosting layer; this crate puts it behind a socket so
//! the same sessions can be driven by out-of-process clients — with the
//! determinism contract intact: a session driven over the wire produces
//! **bit-identical** `CHAMFLT1` checkpoints to the same session driven
//! in-process (held by `tests/serve.rs`).
//!
//! * [`wire`] — the CHAMWIRE codec: frames, requests, responses, typed
//!   [`wire::WireError`]s. Decoding is total (fuzzed in
//!   `tests/wire_fuzz.rs`): corrupt bytes yield errors, never panics or
//!   unbounded allocations.
//! * [`Server`] — acceptor + bounded connection-worker pool + one engine
//!   thread owning the [`chameleon_fleet::FleetEngine`]; graceful
//!   drain-then-join shutdown; per-server [`ServeCounters`] with a
//!   latency histogram. Fleet backpressure surfaces as wire-level
//!   [`wire::Response::RetryAfter`] — the connection stays open.
//! * [`Connection`] — the client: typed helpers, retry/backoff honoring
//!   the server's `RetryAfter` hint.
//!
//! Everything is `std` only: `std::net` sockets, `std::thread` workers,
//! `std::sync::mpsc` queues.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use chameleon_core::ChameleonConfig;
//! use chameleon_fleet::{FleetConfig, SessionSpec};
//! use chameleon_serve::{Connection, ServeConfig, Server};
//! use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};
//!
//! fn run() -> Result<(), Box<dyn std::error::Error>> {
//!     let scenario = Arc::new(DomainIlScenario::generate(&DatasetSpec::core50_tiny(), 1));
//!     let mut server = Server::start(scenario, FleetConfig::default(), ServeConfig::default())?;
//!     let mut client = Connection::connect(server.local_addr())?;
//!     client.ping()?;
//!     let spec = SessionSpec {
//!         learner: ChameleonConfig::default(),
//!         stream: StreamConfig::default(),
//!         learner_seed: 7,
//!         stream_seed: 7,
//!     };
//!     client.create_session(7, spec)?;
//!     let delivered = client.run_to_completion(7, 8)?;
//!     assert!(delivered > 0);
//!     let blob = client.checkpoint(7)?;
//!     assert_eq!(&blob[..8], chameleon_fleet::FLEET_MAGIC);
//!     server.shutdown();
//!     Ok(())
//! }
//! run().expect("serve example");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod metrics;
mod server;
pub mod wire;

pub use client::{ClientError, Connection, DEFAULT_STALL_BUDGET};
pub use metrics::{LatencyHistogram, ServeCounters, LATENCY_BUCKETS};
pub use server::{ServeConfig, Server};
