//! CHAMWIRE client: a blocking connection with typed request helpers and
//! retry/backoff that honors the server's [`Response::RetryAfter`] hint.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use chameleon_fleet::{SessionId, SessionSpec};
use chameleon_replay::crc32;
use chameleon_runtime::{splitmix64, Clock, SimRng, WallClock};

use chameleon_obs::Observation;

use crate::wire::{
    encode_frame, ErrorCode, PredictSummary, ProbeSummary, Request, Response, StatsSnapshot,
    WireError, MAX_PAYLOAD_BYTES, WIRE_MAGIC,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(std::io::Error),
    /// The server's bytes did not decode as CHAMWIRE.
    Wire(WireError),
    /// The response's correlation id does not match the request's.
    CorrelationMismatch {
        /// Correlation id the request carried.
        sent: u64,
        /// Correlation id the response echoed.
        received: u64,
    },
    /// The server refused the request with a typed error.
    Refused {
        /// Typed refusal reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server kept answering `RetryAfter` past the retry budget.
    Saturated {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// [`Connection::run_to_completion`] saw its zero-progress budget of
    /// consecutive `delivered == 0, done == false` rounds with no batch
    /// delivered — the session is live but not advancing (wedged stream,
    /// misbehaving server), and looping further would spin forever.
    Stalled {
        /// Consecutive zero-progress rounds observed before giving up.
        rounds: u32,
    },
    /// The server answered with a response type the request cannot
    /// produce (protocol violation).
    UnexpectedResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket error: {e}"),
            Self::Wire(e) => write!(f, "wire error: {e}"),
            Self::CorrelationMismatch { sent, received } => {
                write!(f, "correlation mismatch: sent {sent}, received {received}")
            }
            Self::Refused { code, message } => write!(f, "refused ({code}): {message}"),
            Self::Saturated { attempts } => {
                write!(f, "server still backpressured after {attempts} attempts")
            }
            Self::Stalled { rounds } => {
                write!(
                    f,
                    "session made no progress for {rounds} consecutive step rounds"
                )
            }
            Self::UnexpectedResponse(want) => {
                write!(f, "unexpected response (wanted {want})")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// A blocking CHAMWIRE connection.
///
/// Requests are serial: each send waits for its response. Correlation
/// ids are still generated and checked, so a desynchronized stream is
/// caught instead of mispairing answers.
pub struct Connection {
    stream: TcpStream,
    next_correlation: u64,
    max_payload: usize,
    max_retries: u32,
    stall_budget: u32,
    clock: Arc<dyn Clock>,
    backoff: SimRng,
}

/// Default bound on consecutive zero-progress step rounds
/// [`Connection::run_to_completion`] tolerates before returning
/// [`ClientError::Stalled`].
pub const DEFAULT_STALL_BUDGET: u32 = 32;

impl Connection {
    /// Connects and enables `TCP_NODELAY`.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        // Each connection gets its own jitter stream, seeded from the
        // ephemeral local port so two clients started at the same instant
        // still back off on different schedules. Deterministic tests
        // override it with `set_backoff_seed`.
        let seed = stream
            .local_addr()
            .map(|a| u64::from(a.port()))
            .unwrap_or(0);
        Ok(Self {
            stream,
            next_correlation: 1,
            max_payload: MAX_PAYLOAD_BYTES,
            max_retries: 10_000,
            stall_budget: DEFAULT_STALL_BUDGET,
            clock: WallClock::shared(),
            backoff: SimRng::new(splitmix64(seed ^ 0xB0FF)),
        })
    }

    /// Caps how many `RetryAfter` rounds [`Connection::request`] rides
    /// out before giving up with [`ClientError::Saturated`].
    pub fn set_max_retries(&mut self, max_retries: u32) {
        self.max_retries = max_retries;
    }

    /// Caps how many *consecutive* zero-progress step rounds
    /// [`Connection::run_to_completion`] tolerates before returning
    /// [`ClientError::Stalled`] (default [`DEFAULT_STALL_BUDGET`]).
    pub fn set_stall_budget(&mut self, stall_budget: u32) {
        self.stall_budget = stall_budget.max(1);
    }

    /// Reseeds the deterministic backoff-jitter stream. Under a
    /// [`chameleon_runtime::VirtualClock`] this pins the whole retry
    /// schedule: same seed, same `RetryAfter` answers, same sleeps.
    pub fn set_backoff_seed(&mut self, seed: u64) {
        self.backoff = SimRng::new(splitmix64(seed ^ 0xB0FF));
    }

    /// Injects the [`Clock`] backoff sleeps run on. Tests pass a
    /// [`chameleon_runtime::VirtualClock`] so riding out `RetryAfter`
    /// storms advances virtual time instead of stalling the test on
    /// wall-clock sleeps.
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
    }

    /// Sends one request and reads its response — no retry: a
    /// [`Response::RetryAfter`] is returned to the caller as-is.
    ///
    /// # Errors
    ///
    /// I/O failures, undecodable responses, correlation mismatches.
    pub fn request_once(&mut self, request: &Request) -> Result<Response, ClientError> {
        let correlation = self.next_correlation;
        self.next_correlation += 1;
        let frame = encode_frame(&request.encode_payload(correlation));
        self.stream.write_all(&frame)?;
        let payload = self.read_payload()?;
        let (received, response) = Response::decode_payload(&payload)?;
        // A turn-away from a saturated acceptor is sent before any request
        // is read and carries correlation 0; it can pair with any request.
        if received != correlation
            && !(received == 0 && matches!(response, Response::RetryAfter { .. }))
        {
            return Err(ClientError::CorrelationMismatch {
                sent: correlation,
                received,
            });
        }
        Ok(response)
    }

    /// Sends a request, sleeping out every `RetryAfter` answer (the
    /// server's backoff hint, escalated multiplicatively) until a real
    /// response arrives or the retry budget is exhausted.
    ///
    /// # Errors
    ///
    /// Everything [`Connection::request_once`] raises, plus
    /// [`ClientError::Saturated`] past the retry budget.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut boost: u64 = 0;
        for _ in 0..=self.max_retries {
            match self.request_once(request)? {
                Response::RetryAfter { millis } => {
                    let sleep = jittered_backoff_millis(&mut self.backoff, millis, boost);
                    self.clock.sleep(Duration::from_millis(sleep));
                    boost = (boost * 2).clamp(1, 64);
                }
                other => return Ok(other),
            }
        }
        Err(ClientError::Saturated {
            attempts: self.max_retries.saturating_add(1),
        })
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// See [`Connection::request`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.settle(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("Pong")),
        }
    }

    /// Creates a session on the server.
    ///
    /// # Errors
    ///
    /// See [`Connection::request`].
    pub fn create_session(
        &mut self,
        session: SessionId,
        spec: SessionSpec,
    ) -> Result<(), ClientError> {
        match self.settle(&Request::CreateSession { session, spec })? {
            Response::Created => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("Created")),
        }
    }

    /// Delivers up to `batches` stream batches; returns `(delivered,
    /// done)`.
    ///
    /// # Errors
    ///
    /// See [`Connection::request`].
    pub fn step(&mut self, session: SessionId, batches: u32) -> Result<(u32, bool), ClientError> {
        match self.settle(&Request::Step { session, batches })? {
            Response::Stepped { delivered, done } => Ok((delivered, done)),
            _ => Err(ClientError::UnexpectedResponse("Stepped")),
        }
    }

    /// Steps the session in `slice`-batch increments until its stream is
    /// exhausted; returns total batches delivered.
    ///
    /// A healthy server eventually answers every step with progress
    /// (`delivered > 0`) or completion (`done`). One that keeps
    /// answering `delivered == 0, done == false` would previously spin
    /// this loop forever; it is now bounded by the connection's stall
    /// budget ([`Connection::set_stall_budget`]), and the counter resets
    /// whenever a round delivers batches.
    ///
    /// # Errors
    ///
    /// See [`Connection::request`]; additionally
    /// [`ClientError::Stalled`] after `stall_budget` consecutive
    /// zero-progress rounds.
    pub fn run_to_completion(
        &mut self,
        session: SessionId,
        slice: u32,
    ) -> Result<u64, ClientError> {
        let mut total = 0u64;
        let mut zero_rounds = 0u32;
        loop {
            let (delivered, done) = self.step(session, slice.max(1))?;
            total += u64::from(delivered);
            if done {
                return Ok(total);
            }
            if delivered == 0 {
                zero_rounds += 1;
                if zero_rounds >= self.stall_budget {
                    return Err(ClientError::Stalled {
                        rounds: zero_rounds,
                    });
                }
            } else {
                zero_rounds = 0;
            }
        }
    }

    /// Evaluates the session on the scenario's test set.
    ///
    /// # Errors
    ///
    /// See [`Connection::request`].
    pub fn predict(&mut self, session: SessionId) -> Result<PredictSummary, ClientError> {
        match self.settle(&Request::Predict { session })? {
            Response::Predicted(summary) => Ok(summary),
            _ => Err(ClientError::UnexpectedResponse("Predicted")),
        }
    }

    /// Serializes the session to its `CHAMFLT1` checkpoint blob.
    ///
    /// # Errors
    ///
    /// See [`Connection::request`].
    pub fn checkpoint(&mut self, session: SessionId) -> Result<Vec<u8>, ClientError> {
        match self.settle(&Request::Checkpoint { session })? {
            Response::Checkpointed(blob) => Ok(blob),
            _ => Err(ClientError::UnexpectedResponse("Checkpointed")),
        }
    }

    /// Forces the session out of residency into checkpoint form.
    ///
    /// # Errors
    ///
    /// See [`Connection::request`].
    pub fn evict(&mut self, session: SessionId) -> Result<(), ClientError> {
        match self.settle(&Request::Evict { session })? {
            Response::Evicted => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("Evicted")),
        }
    }

    /// Cheap health probe: residency counts and in-flight depth, without
    /// the cost of a full stats snapshot. The routing tier's health
    /// checks ride on this.
    ///
    /// # Errors
    ///
    /// See [`Connection::request`].
    pub fn probe(&mut self) -> Result<ProbeSummary, ClientError> {
        match self.settle(&Request::Probe)? {
            Response::ProbeAck(summary) => Ok(summary),
            _ => Err(ClientError::UnexpectedResponse("ProbeAck")),
        }
    }

    /// Exports the session for handoff: the server serializes it to its
    /// `CHAMFLT1` blob and *forgets* it — afterwards the blob is the only
    /// copy and the session can be imported elsewhere.
    ///
    /// # Errors
    ///
    /// See [`Connection::request`].
    pub fn handoff_export(&mut self, session: SessionId) -> Result<Vec<u8>, ClientError> {
        match self.settle(&Request::HandoffExport { session })? {
            Response::HandoffExported(blob) => Ok(blob),
            _ => Err(ClientError::UnexpectedResponse("HandoffExported")),
        }
    }

    /// Imports a handed-off session from its `CHAMFLT1` blob; the server
    /// admits it cold and restores it on first touch, exactly like an
    /// eviction restore.
    ///
    /// # Errors
    ///
    /// See [`Connection::request`].
    pub fn handoff_import(&mut self, session: SessionId, blob: Vec<u8>) -> Result<(), ClientError> {
        match self.settle(&Request::Handoff { session, blob })? {
            Response::HandoffAck => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("HandoffAck")),
        }
    }

    /// Snapshots fleet + serving-layer metrics.
    ///
    /// # Errors
    ///
    /// See [`Connection::request`].
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.settle(&Request::Stats)? {
            Response::Stats(snapshot) => Ok(*snapshot),
            _ => Err(ClientError::UnexpectedResponse("Stats")),
        }
    }

    /// Snapshots the unified observability view: per-stage span
    /// aggregates, the event-log tail, and flattened fleet/trace/serve
    /// counters.
    ///
    /// # Errors
    ///
    /// See [`Connection::request`].
    pub fn observe(&mut self) -> Result<Observation, ClientError> {
        match self.settle(&Request::Observe)? {
            Response::Observed(observation) => Ok(*observation),
            _ => Err(ClientError::UnexpectedResponse("Observed")),
        }
    }

    /// `request` with `Error` responses lifted into
    /// [`ClientError::Refused`], so the typed helpers only see success
    /// variants.
    fn settle(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.request(request)? {
            Response::Error { code, message } => Err(ClientError::Refused { code, message }),
            other => Ok(other),
        }
    }

    /// Reads one frame and returns its CRC-verified payload.
    fn read_payload(&mut self) -> Result<Vec<u8>, ClientError> {
        let mut header = [0u8; 12];
        self.stream.read_exact(&mut header)?;
        if &header[..8] != WIRE_MAGIC {
            return Err(WireError::BadMagic.into());
        }
        let len = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
        if len > self.max_payload {
            return Err(WireError::Oversized {
                len: len as u64,
                max: self.max_payload as u64,
            }
            .into());
        }
        let mut body = vec![0u8; len + 4];
        self.stream.read_exact(&mut body)?;
        let footer = u32::from_le_bytes(body[len..].try_into().expect("4 bytes"));
        body.truncate(len);
        let found = crc32(&body);
        if found != footer {
            return Err(WireError::BadChecksum {
                found,
                expected: footer,
            }
            .into());
        }
        Ok(body)
    }
}

/// One backoff sleep: the server's hint plus the escalation boost, plus
/// seeded full jitter of up to the same magnitude. Synchronized clients
/// hammered with identical `RetryAfter` hints thus spread over a 2×
/// window instead of retrying in lockstep.
fn jittered_backoff_millis(rng: &mut SimRng, millis: u32, boost: u64) -> u64 {
    let base = u64::from(millis).max(1) + boost;
    base + rng.below(base + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(seed: u64) -> Vec<u64> {
        let mut rng = SimRng::new(splitmix64(seed ^ 0xB0FF));
        let mut boost = 0u64;
        (0..32)
            .map(|_| {
                let sleep = jittered_backoff_millis(&mut rng, 2, boost);
                boost = (boost * 2).clamp(1, 64);
                sleep
            })
            .collect()
    }

    #[test]
    fn backoff_jitter_is_seeded_and_deterministic() {
        assert_eq!(schedule(7), schedule(7));
        assert_ne!(schedule(7), schedule(8), "distinct seeds must desync");
    }

    #[test]
    fn backoff_jitter_is_bounded_by_twice_the_base() {
        let mut rng = SimRng::new(1);
        for boost in [0u64, 1, 8, 64] {
            for millis in [0u32, 1, 2, 1000] {
                let base = u64::from(millis).max(1) + boost;
                for _ in 0..200 {
                    let sleep = jittered_backoff_millis(&mut rng, millis, boost);
                    assert!(sleep >= base && sleep <= 2 * base);
                }
            }
        }
    }
}
