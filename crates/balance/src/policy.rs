//! Per-shard load signals and the pluggable rebalance policies that turn
//! them into migration plans.

use chameleon_fleet::SessionId;

/// One shard's load signals at a balancer tick, sourced from the fleet's
/// own [`chameleon_fleet::ShardMetrics`] counters. Cumulative counters
/// (batches, evictions) arrive here as *deltas since the previous tick*,
/// so a policy sees recent load, not lifetime totals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// Shard index.
    pub shard: usize,
    /// Requests sitting in the shard's bounded queue right now.
    pub queue_depth: usize,
    /// Sessions currently placed on this shard (resident or cold).
    pub sessions: usize,
    /// Resident session footprint in bytes.
    pub resident_bytes: u64,
    /// Per-shard session-memory budget in bytes.
    pub budget_bytes: u64,
    /// Stream batches delivered since the previous tick.
    pub steps_delta: u64,
    /// Budget evictions since the previous tick.
    pub evictions_delta: u64,
}

impl ShardLoad {
    /// Composite load score: work done recently (`steps_delta`), work
    /// waiting (`queue_depth`, weighted ×8 — backlog is the strongest
    /// hot-shard signal), and churn (`evictions_delta`, ×4 — eviction
    /// thrash is the dominant cost in `results/fleet_throughput.json`).
    #[must_use]
    pub fn score(&self) -> u64 {
        self.steps_delta
            .saturating_add((self.queue_depth as u64).saturating_mul(8))
            .saturating_add(self.evictions_delta.saturating_mul(4))
    }
}

/// One planned session move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Migration {
    /// Session to move.
    pub session: SessionId,
    /// Shard it currently lives on.
    pub from: usize,
    /// Shard it should live on.
    pub to: usize,
}

/// A rebalance policy: reads per-shard load and the current placement,
/// returns the migrations to perform this tick (possibly none).
///
/// Policies must be deterministic functions of their inputs and their own
/// state — the simtest migration explorer replays schedules bit for bit.
pub trait BalancePolicy {
    /// Human-readable policy name (surfaced in logs and JSON output).
    fn name(&self) -> &'static str;

    /// Plans this tick's migrations. `loads[s]` and `placed[s]` describe
    /// shard `s`; `placed` lists session ids in ascending order.
    fn plan(&mut self, loads: &[ShardLoad], placed: &[Vec<SessionId>]) -> Vec<Migration>;
}

/// Index of the highest-score shard (ties broken toward the lower index).
fn hottest(loads: &[ShardLoad]) -> usize {
    let mut best = 0;
    for (i, load) in loads.iter().enumerate().skip(1) {
        if load.score() > loads[best].score() {
            best = i;
        }
    }
    best
}

/// Index of the lowest-score shard (ties broken toward the lower index).
fn coldest(loads: &[ShardLoad]) -> usize {
    let mut best = 0;
    for (i, load) in loads.iter().enumerate().skip(1) {
        if load.score() < loads[best].score() {
            best = i;
        }
    }
    best
}

/// Moves up to `max_moves` sessions from `from` to `to`, lowest ids
/// first, always leaving at least one session behind (an empty source
/// shard would just invert the imbalance next tick).
fn drain_moves(
    placed: &[Vec<SessionId>],
    from: usize,
    to: usize,
    max_moves: usize,
) -> Vec<Migration> {
    let candidates = &placed[from];
    let movable = candidates.len().saturating_sub(1).min(max_moves);
    candidates
        .iter()
        .take(movable)
        .map(|&session| Migration { session, from, to })
        .collect()
}

/// Periodic rebalance toward the least-loaded shard: every `every` ticks,
/// if the hottest shard's score exceeds twice the coldest's (plus a small
/// absolute gap, so idle fleets never flap), move up to `max_moves` of
/// its sessions to the coldest shard.
#[derive(Clone, Debug)]
pub struct PeriodicLeastLoaded {
    /// Rebalance every this many ticks.
    pub every: u64,
    /// Upper bound on migrations per rebalance.
    pub max_moves: usize,
    /// Absolute score gap below which imbalance is ignored.
    pub min_gap: u64,
    ticks: u64,
}

impl PeriodicLeastLoaded {
    /// A policy rebalancing every `every` ticks, `max_moves` moves each.
    #[must_use]
    pub fn new(every: u64, max_moves: usize) -> Self {
        Self {
            every: every.max(1),
            max_moves,
            min_gap: 4,
            ticks: 0,
        }
    }
}

impl BalancePolicy for PeriodicLeastLoaded {
    fn name(&self) -> &'static str {
        "periodic"
    }

    fn plan(&mut self, loads: &[ShardLoad], placed: &[Vec<SessionId>]) -> Vec<Migration> {
        self.ticks += 1;
        if !self.ticks.is_multiple_of(self.every) || loads.len() < 2 {
            return Vec::new();
        }
        let hot = hottest(loads);
        let cold = coldest(loads);
        let hot_score = loads[hot].score();
        let cold_score = loads[cold].score();
        if hot == cold || hot_score < cold_score.saturating_mul(2).saturating_add(self.min_gap) {
            return Vec::new();
        }
        drain_moves(placed, hot, cold, self.max_moves)
    }
}

/// Threshold-triggered work stealing for single-user floods: fires on any
/// tick where one shard has a queue backlog of at least `queue_threshold`
/// — or did essentially all of the recent work while another shard sat
/// idle — and moves up to `max_moves` co-located sessions to the coldest
/// shard, so innocent sessions stop queueing behind the flood.
#[derive(Clone, Debug)]
pub struct ThresholdWorkStealing {
    /// Queue backlog that triggers a steal.
    pub queue_threshold: usize,
    /// Upper bound on migrations per steal.
    pub max_moves: usize,
    /// Absolute steps-delta below which concentration is ignored.
    pub min_gap: u64,
}

impl ThresholdWorkStealing {
    /// A policy stealing when a queue reaches `queue_threshold` entries.
    #[must_use]
    pub fn new(queue_threshold: usize, max_moves: usize) -> Self {
        Self {
            queue_threshold: queue_threshold.max(1),
            max_moves,
            min_gap: 8,
        }
    }
}

impl BalancePolicy for ThresholdWorkStealing {
    fn name(&self) -> &'static str {
        "steal"
    }

    fn plan(&mut self, loads: &[ShardLoad], placed: &[Vec<SessionId>]) -> Vec<Migration> {
        if loads.len() < 2 {
            return Vec::new();
        }
        let hot = hottest(loads);
        let cold = coldest(loads);
        if hot == cold {
            return Vec::new();
        }
        let backlogged = loads[hot].queue_depth >= self.queue_threshold;
        // Flood detection without a backlog snapshot: the hot shard did
        // at least `min_gap` steps this interval and four times the
        // coldest shard's work.
        let concentrated = loads[hot].steps_delta >= self.min_gap
            && loads[hot].steps_delta >= loads[cold].steps_delta.saturating_mul(4);
        if !backlogged && !concentrated {
            return Vec::new();
        }
        drain_moves(placed, hot, cold, self.max_moves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads(scores: &[(u64, usize)]) -> Vec<ShardLoad> {
        scores
            .iter()
            .enumerate()
            .map(|(shard, &(steps_delta, queue_depth))| ShardLoad {
                shard,
                steps_delta,
                queue_depth,
                ..ShardLoad::default()
            })
            .collect()
    }

    #[test]
    fn periodic_moves_from_hottest_to_coldest_and_respects_cadence() {
        let mut policy = PeriodicLeastLoaded::new(2, 2);
        let loads = loads(&[(100, 0), (2, 0), (30, 0)]);
        let placed = vec![vec![3, 7, 11], vec![1], vec![2, 5]];
        // Tick 1 of 2: cadence says wait.
        assert!(policy.plan(&loads, &placed).is_empty());
        let plan = policy.plan(&loads, &placed);
        assert_eq!(
            plan,
            vec![
                Migration {
                    session: 3,
                    from: 0,
                    to: 1
                },
                Migration {
                    session: 7,
                    from: 0,
                    to: 1
                },
            ]
        );
    }

    #[test]
    fn periodic_tolerates_balanced_and_idle_fleets() {
        let mut policy = PeriodicLeastLoaded::new(1, 4);
        let placed = vec![vec![0, 2], vec![1, 3]];
        // Balanced: 60 vs 40 is inside the 2x band.
        assert!(policy.plan(&loads(&[(60, 0), (40, 0)]), &placed).is_empty());
        // Idle: zero scores never trip the absolute gap.
        assert!(policy.plan(&loads(&[(0, 0), (0, 0)]), &placed).is_empty());
    }

    #[test]
    fn policies_never_empty_the_source_shard() {
        let mut policy = PeriodicLeastLoaded::new(1, 8);
        let plan = policy.plan(&loads(&[(100, 0), (0, 0)]), &[vec![4, 9], vec![]]);
        assert_eq!(plan.len(), 1, "one of two sessions may move, not both");
        let mut steal = ThresholdWorkStealing::new(1, 8);
        let plan = steal.plan(&loads(&[(0, 5), (0, 0)]), &[vec![4], vec![]]);
        assert!(plan.is_empty(), "a lone session is never stolen away");
    }

    #[test]
    fn stealing_fires_on_backlog_or_concentration_only() {
        let mut policy = ThresholdWorkStealing::new(4, 1);
        let placed = vec![vec![0, 2, 4], vec![1]];
        // Backlog below threshold, work not concentrated: no steal.
        assert!(policy.plan(&loads(&[(10, 3), (9, 0)]), &placed).is_empty());
        // Backlog at threshold: steal one session.
        let plan = policy.plan(&loads(&[(10, 4), (9, 0)]), &placed);
        assert_eq!(
            plan,
            vec![Migration {
                session: 0,
                from: 0,
                to: 1
            }]
        );
        // No backlog, but one shard did all the work: steal.
        let plan = policy.plan(&loads(&[(64, 0), (1, 0)]), &placed);
        assert_eq!(plan.len(), 1);
    }
}
