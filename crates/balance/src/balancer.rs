//! The [`Balancer`]: drives a [`BalancePolicy`] against a live
//! [`FleetEngine`], turning its plans into online session migrations.

use chameleon_fleet::{FleetEngine, FleetError};

use crate::policy::{BalancePolicy, PeriodicLeastLoaded, ShardLoad, ThresholdWorkStealing};

/// Which policy a [`BalanceConfig`] builds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`PeriodicLeastLoaded`] rebalancing every `every` ticks.
    Periodic {
        /// Rebalance cadence in ticks.
        every: u64,
    },
    /// [`ThresholdWorkStealing`] with this queue-backlog trigger.
    Steal {
        /// Queue backlog that triggers a steal.
        queue_threshold: usize,
    },
}

/// A plain-data description of a balancer — parseable from the CLI
/// `--balance` knob, cloneable into server configs, and built into a live
/// [`Balancer`] by the thread that owns the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BalanceConfig {
    /// Policy to run.
    pub policy: PolicyKind,
    /// Upper bound on migrations per policy invocation.
    pub max_moves: usize,
    /// Engine operations between policy invocations (the tick cadence of
    /// [`Balancer::on_op`]).
    pub interval_ops: u64,
}

impl BalanceConfig {
    /// Parses the CLI `--balance` grammar:
    /// `periodic`, `periodic:<every-ticks>`, `steal`, or
    /// `steal:<queue-depth>`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the accepted grammar.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (name, arg) = match spec.split_once(':') {
            Some((name, arg)) => (name, Some(arg)),
            None => (spec, None),
        };
        let policy = match name {
            "periodic" => {
                let every = match arg {
                    None => 4,
                    Some(raw) => raw
                        .parse::<u64>()
                        .ok()
                        .filter(|&v| v > 0)
                        .ok_or_else(|| format!("bad periodic cadence {raw:?}"))?,
                };
                PolicyKind::Periodic { every }
            }
            "steal" => {
                let queue_threshold = match arg {
                    None => 4,
                    Some(raw) => raw
                        .parse::<usize>()
                        .ok()
                        .filter(|&v| v > 0)
                        .ok_or_else(|| format!("bad steal queue threshold {raw:?}"))?,
                };
                PolicyKind::Steal { queue_threshold }
            }
            other => {
                let expected = "periodic[:<every>] or steal[:<depth>]";
                return Err(format!(
                    "unknown balance policy {other:?} (expected {expected})"
                ));
            }
        };
        Ok(Self {
            policy,
            max_moves: 2,
            interval_ops: 64,
        })
    }

    /// The policy name (`periodic` / `steal`).
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        match self.policy {
            PolicyKind::Periodic { .. } => "periodic",
            PolicyKind::Steal { .. } => "steal",
        }
    }

    /// Builds the live balancer this config describes.
    #[must_use]
    pub fn build(&self) -> Balancer {
        let policy: Box<dyn BalancePolicy + Send> = match self.policy {
            PolicyKind::Periodic { every } => {
                Box::new(PeriodicLeastLoaded::new(every, self.max_moves))
            }
            PolicyKind::Steal { queue_threshold } => {
                Box::new(ThresholdWorkStealing::new(queue_threshold, self.max_moves))
            }
        };
        Balancer::new(policy, self.interval_ops)
    }
}

/// Lifetime counters of one balancer, exposed as `balance.*` in the
/// observability layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BalanceCounters {
    /// Policy invocations.
    pub rebalance_ticks: u64,
    /// Sessions actually moved.
    pub migrations_total: u64,
    /// Planned moves skipped safely (session already on target, or the
    /// export was declined and the session stayed put).
    pub migrations_skipped: u64,
    /// Planned moves that hit a hard engine error (dead shard, unknown
    /// session).
    pub migration_failures: u64,
}

impl BalanceCounters {
    /// The counters as `balance.*` name/value pairs, ready to push into a
    /// `chameleon_obs::Observation`.
    #[must_use]
    pub fn named(&self) -> Vec<(String, u64)> {
        vec![
            ("balance.rebalance_ticks".to_string(), self.rebalance_ticks),
            (
                "balance.migrations_total".to_string(),
                self.migrations_total,
            ),
            (
                "balance.migrations_skipped".to_string(),
                self.migrations_skipped,
            ),
            (
                "balance.migration_failures".to_string(),
                self.migration_failures,
            ),
        ]
    }
}

/// Watches a fleet's per-shard load and migrates sessions online per its
/// policy's plans. One balancer belongs to whatever single thread owns
/// the [`FleetEngine`] (the CLI step loop, or a server's engine thread).
pub struct Balancer {
    policy: Box<dyn BalancePolicy + Send>,
    interval_ops: u64,
    ops_since_tick: u64,
    /// Per-shard cumulative `(batches, evictions)` at the previous tick,
    /// so policies see deltas rather than lifetime totals.
    prev: Vec<(u64, u64)>,
    counters: BalanceCounters,
}

impl Balancer {
    /// A balancer running `policy` every `interval_ops` engine ops.
    #[must_use]
    pub fn new(policy: Box<dyn BalancePolicy + Send>, interval_ops: u64) -> Self {
        Self {
            policy,
            interval_ops: interval_ops.max(1),
            ops_since_tick: 0,
            prev: Vec::new(),
            counters: BalanceCounters::default(),
        }
    }

    /// The policy's name.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Lifetime counters.
    #[must_use]
    pub fn counters(&self) -> BalanceCounters {
        self.counters
    }

    /// Notes one engine operation and runs a tick when the cadence is
    /// due. Returns migrations performed (0 between ticks).
    pub fn on_op(&mut self, engine: &mut FleetEngine) -> usize {
        self.ops_since_tick += 1;
        if self.ops_since_tick < self.interval_ops {
            return 0;
        }
        self.ops_since_tick = 0;
        self.tick(engine)
    }

    /// Runs one policy invocation now: snapshots per-shard load, asks the
    /// policy for a plan, and executes it with
    /// [`FleetEngine::migrate_session`]. Returns migrations performed.
    pub fn tick(&mut self, engine: &mut FleetEngine) -> usize {
        self.counters.rebalance_ticks += 1;
        let metrics = engine.metrics();
        let num_shards = engine.config().num_shards;
        self.prev.resize(num_shards, (0, 0));
        let mut loads = Vec::with_capacity(num_shards);
        let mut placed = Vec::with_capacity(num_shards);
        for shard in 0..num_shards {
            let m = metrics.per_shard.iter().find(|m| m.shard == shard);
            let (batches, evictions) = m.map_or((0, 0), |m| (m.batches, m.evictions));
            let (prev_batches, prev_evictions) = self.prev[shard];
            loads.push(ShardLoad {
                shard,
                queue_depth: m.map_or(0, |m| m.queue_depth),
                sessions: engine.sessions_on(shard).len(),
                resident_bytes: m.map_or(0, |m| m.resident_bytes),
                budget_bytes: m.map_or(0, |m| m.budget_bytes),
                steps_delta: batches.saturating_sub(prev_batches),
                evictions_delta: evictions.saturating_sub(prev_evictions),
            });
            self.prev[shard] = (batches, evictions);
            placed.push(engine.sessions_on(shard));
        }
        let plan = self.policy.plan(&loads, &placed);
        let mut moved = 0;
        for migration in plan {
            match engine.migrate_session(migration.session, migration.to) {
                Ok(true) => {
                    moved += 1;
                    self.counters.migrations_total += 1;
                }
                Ok(false) => self.counters.migrations_skipped += 1,
                Err(FleetError::UnknownSession) => self.counters.migrations_skipped += 1,
                Err(_) => self.counters.migration_failures += 1,
            }
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Migration;
    use chameleon_core::ChameleonConfig;
    use chameleon_fleet::{FleetConfig, SessionCommand, SessionSpec};
    use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};
    use std::sync::Arc;

    fn sim_fleet(num_shards: usize, seed: u64) -> FleetEngine {
        let scenario = Arc::new(DomainIlScenario::generate(&DatasetSpec::core50_tiny(), 7));
        FleetEngine::new_sim(
            scenario,
            FleetConfig {
                num_shards,
                ..FleetConfig::default()
            },
            seed,
        )
    }

    fn spec(user: u64) -> SessionSpec {
        SessionSpec {
            learner: ChameleonConfig {
                long_term_capacity: 30,
                ..ChameleonConfig::default()
            },
            stream: StreamConfig::default(),
            learner_seed: user,
            stream_seed: user,
        }
    }

    #[test]
    fn parse_accepts_the_documented_grammar_and_rejects_the_rest() {
        assert_eq!(
            BalanceConfig::parse("periodic").unwrap().policy,
            PolicyKind::Periodic { every: 4 }
        );
        assert_eq!(
            BalanceConfig::parse("periodic:2").unwrap().policy,
            PolicyKind::Periodic { every: 2 }
        );
        assert_eq!(
            BalanceConfig::parse("steal:9").unwrap().policy,
            PolicyKind::Steal { queue_threshold: 9 }
        );
        assert!(BalanceConfig::parse("steal:0").is_err());
        assert!(BalanceConfig::parse("periodic:x").is_err());
        assert!(BalanceConfig::parse("roulette").is_err());
    }

    #[test]
    fn tick_executes_plans_and_counts_outcomes() {
        struct Plan(Vec<Migration>);
        impl BalancePolicy for Plan {
            fn name(&self) -> &'static str {
                "scripted"
            }
            fn plan(&mut self, _: &[ShardLoad], _: &[Vec<u64>]) -> Vec<Migration> {
                self.0.clone()
            }
        }

        let mut engine = sim_fleet(2, 11);
        for user in 0..4u64 {
            engine.create_blocking(user, spec(user)).unwrap();
            engine
                .command_blocking(user, SessionCommand::Step { batches: 2 })
                .unwrap();
        }
        engine.drain_pending();
        let from = engine.shard_of(0);
        let to = 1 - from;
        let mut balancer = Balancer::new(
            Box::new(Plan(vec![
                Migration {
                    session: 0,
                    from,
                    to,
                },
                // Already where it is asked to go: counted as skipped.
                Migration {
                    session: 1,
                    from: engine.shard_of(1),
                    to: engine.shard_of(1),
                },
                // Never created: skipped, not a hard failure.
                Migration {
                    session: 99,
                    from: 0,
                    to: 1,
                },
            ])),
            1,
        );
        let moved = balancer.tick(&mut engine);
        assert_eq!(moved, 1);
        assert_eq!(engine.shard_of(0), to);
        let c = balancer.counters();
        assert_eq!(c.rebalance_ticks, 1);
        assert_eq!(c.migrations_total, 1);
        assert_eq!(c.migrations_skipped, 2);
        assert_eq!(c.migration_failures, 0);
        // The moved session keeps training on the new shard.
        engine
            .command_blocking(0, SessionCommand::Step { batches: 2 })
            .unwrap();
        let events = engine.drain_pending();
        assert!(!events.is_empty());
    }

    #[test]
    fn on_op_honors_the_interval_and_deltas_reset_between_ticks() {
        let mut engine = sim_fleet(2, 3);
        for user in 0..6u64 {
            engine.create_blocking(user, spec(user)).unwrap();
        }
        engine.drain_pending();
        let mut balancer = BalanceConfig::parse("periodic:1").unwrap().build();
        balancer.interval_ops = 4;
        let mut ticks = 0;
        for _ in 0..8 {
            balancer.on_op(&mut engine);
            ticks = balancer.counters().rebalance_ticks;
        }
        assert_eq!(ticks, 2, "8 ops at interval 4 is exactly 2 ticks");
    }

    #[test]
    fn steal_policy_rescues_colocated_sessions_from_a_flood() {
        // Find a seed where at least two of sessions 0..6 share a shard
        // with session 0, flood session 0 with steps, and require the
        // stealing balancer to move a co-located session away.
        let mut engine = sim_fleet(2, 5);
        for user in 0..6u64 {
            engine.create_blocking(user, spec(user)).unwrap();
        }
        engine.drain_pending();
        let flood_shard = engine.shard_of(0);
        assert!(
            engine.sessions_on(flood_shard).len() >= 2,
            "test setup needs a co-located session"
        );
        let mut balancer = BalanceConfig::parse("steal:4").unwrap().build();
        // Flood: only session 0 does work.
        for _ in 0..12 {
            engine
                .command_blocking(0, SessionCommand::Step { batches: 2 })
                .unwrap();
        }
        engine.drain_pending();
        let moved = balancer.tick(&mut engine);
        assert!(moved >= 1, "stealing must fire under a single-user flood");
        assert!(engine.migrations() >= 1);
        assert!(engine.placement_overrides() >= 1);
        assert!(
            engine.sessions_on(flood_shard).len() < 6,
            "a session must have left the flooded shard"
        );
    }
}
