//! Seeded skewed-traffic shapes: which session receives the next
//! operation. Real fleets are not uniform — popularity is Zipf-shaped,
//! activity is bursty and diurnal, and the worst case is one user
//! flooding their session. These generators make those patterns
//! reproducible from a seed, so a rebalancer's win is provable.

use chameleon_runtime::{splitmix64, SimRng};

/// Draws in a burst/diurnal phase before the pattern rotates.
const PHASE_DRAWS: u64 = 64;

/// Share of the session pool inside the diurnal "awake" window.
const DIURNAL_WINDOW_DIVISOR: usize = 2;

/// What pattern a [`TrafficShape`] follows.
#[derive(Clone, Debug, PartialEq)]
pub enum ShapeKind {
    /// Every session equally likely (the pre-shape default).
    Uniform,
    /// Zipf-distributed popularity: session `r` drawn with probability
    /// proportional to `1/(r+1)^s`. `s≈1.1` matches web-scale skew.
    Zipf {
        /// The skew exponent.
        exponent: f64,
    },
    /// Alternating quiet/burst phases: quiet phases are uniform, burst
    /// phases hammer one rotating session for `PHASE_DRAWS` (64) draws.
    Burst,
    /// A rotating "awake" window of half the sessions receives 90% of
    /// the traffic, like timezones waking and sleeping.
    Diurnal,
    /// Adversarial single-user flood: session 0 receives ~80% of draws.
    Flood,
}

/// A seeded traffic generator over a fixed session pool. The sequence of
/// [`TrafficShape::next_session`] draws is a pure function of
/// `(spec, sessions, seed)`.
#[derive(Clone, Debug)]
pub struct TrafficShape {
    kind: ShapeKind,
    sessions: usize,
    rng: SimRng,
    draws: u64,
    hot_draws: u64,
    /// Zipf cumulative distribution, empty for other shapes.
    cdf: Vec<f64>,
}

impl TrafficShape {
    /// Parses the CLI `--shape` grammar: `uniform`, `zipf:<s>`, `burst`,
    /// `diurnal`, or `flood`, over a pool of `sessions` sessions.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the accepted grammar.
    pub fn parse(spec: &str, sessions: usize, seed: u64) -> Result<Self, String> {
        let kind = match spec {
            "uniform" => ShapeKind::Uniform,
            "burst" => ShapeKind::Burst,
            "diurnal" => ShapeKind::Diurnal,
            "flood" => ShapeKind::Flood,
            other => match other.split_once(':') {
                Some(("zipf", raw)) => {
                    let exponent = raw
                        .parse::<f64>()
                        .ok()
                        .filter(|e| e.is_finite() && *e > 0.0)
                        .ok_or_else(|| format!("bad zipf exponent {raw:?}"))?;
                    ShapeKind::Zipf { exponent }
                }
                _ => {
                    return Err(format!(
                        "unknown traffic shape {other:?} (expected uniform, zipf:<s>, burst, diurnal, or flood)"
                    ))
                }
            },
        };
        Ok(Self::new(kind, sessions, seed))
    }

    /// A generator of `kind` over `sessions` sessions, seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `sessions` is zero.
    #[must_use]
    pub fn new(kind: ShapeKind, sessions: usize, seed: u64) -> Self {
        assert!(sessions > 0, "traffic shape needs a non-empty session pool");
        let cdf = match kind {
            ShapeKind::Zipf { exponent } => {
                let mut acc = 0.0f64;
                let mut cdf = Vec::with_capacity(sessions);
                for rank in 0..sessions {
                    acc += 1.0 / ((rank + 1) as f64).powf(exponent);
                    cdf.push(acc);
                }
                let total = acc;
                for entry in &mut cdf {
                    *entry /= total;
                }
                cdf
            }
            _ => Vec::new(),
        };
        Self {
            kind,
            sessions,
            rng: SimRng::new(splitmix64(seed ^ 0x5AAB_E000)),
            draws: 0,
            hot_draws: 0,
            cdf,
        }
    }

    /// The shape's canonical name (`zipf:1.1`, `burst`, …).
    #[must_use]
    pub fn name(&self) -> String {
        match &self.kind {
            ShapeKind::Uniform => "uniform".to_string(),
            ShapeKind::Zipf { exponent } => format!("zipf:{exponent}"),
            ShapeKind::Burst => "burst".to_string(),
            ShapeKind::Diurnal => "diurnal".to_string(),
            ShapeKind::Flood => "flood".to_string(),
        }
    }

    /// The session pool size.
    #[must_use]
    pub fn sessions(&self) -> usize {
        self.sessions
    }

    /// Total draws so far.
    #[must_use]
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Draws that landed on the shape's hot subset: Zipf rank 0, the
    /// flooding session, the current burst target, or the diurnal awake
    /// window (0 under `uniform` — there is no hot subset).
    #[must_use]
    pub fn hot_draws(&self) -> u64 {
        self.hot_draws
    }

    /// Per-shape counters for `--json` output.
    #[must_use]
    pub fn counters(&self) -> Vec<(String, u64)> {
        vec![
            ("shape.draws".to_string(), self.draws),
            ("shape.hot_draws".to_string(), self.hot_draws),
        ]
    }

    /// A uniform f64 in `[0, 1)` (53-bit mantissa of one raw draw).
    fn unit(&mut self) -> f64 {
        (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Which session receives the next operation.
    pub fn next_session(&mut self) -> usize {
        let t = self.draws;
        self.draws += 1;
        let n = self.sessions;
        match self.kind {
            ShapeKind::Uniform => self.rng.below(n as u64) as usize,
            ShapeKind::Zipf { .. } => {
                let u = self.unit();
                let rank = self.cdf.partition_point(|&c| c <= u).min(n - 1);
                if rank == 0 {
                    self.hot_draws += 1;
                }
                rank
            }
            ShapeKind::Burst => {
                let phase = t / PHASE_DRAWS;
                if phase % 2 == 1 {
                    // Burst phase: hammer one rotating session.
                    self.hot_draws += 1;
                    ((phase / 2) % n as u64) as usize
                } else {
                    self.rng.below(n as u64) as usize
                }
            }
            ShapeKind::Diurnal => {
                let window = (n / DIURNAL_WINDOW_DIVISOR).max(1);
                let start = ((t / PHASE_DRAWS) % n as u64) as usize;
                if self.rng.chance(9, 10) {
                    self.hot_draws += 1;
                    (start + self.rng.below(window as u64) as usize) % n
                } else {
                    self.rng.below(n as u64) as usize
                }
            }
            ShapeKind::Flood => {
                if n == 1 || self.rng.chance(4, 5) {
                    self.hot_draws += 1;
                    0
                } else {
                    1 + self.rng.below(n as u64 - 1) as usize
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(shape: &mut TrafficShape, draws: usize) -> Vec<u64> {
        let mut counts = vec![0u64; shape.sessions()];
        for _ in 0..draws {
            counts[shape.next_session()] += 1;
        }
        counts
    }

    #[test]
    fn parse_accepts_the_documented_grammar_and_rejects_the_rest() {
        for good in [
            "uniform", "zipf:1.1", "zipf:0.5", "burst", "diurnal", "flood",
        ] {
            assert!(TrafficShape::parse(good, 8, 1).is_ok(), "rejected {good}");
        }
        for bad in ["zipf", "zipf:-1", "zipf:abc", "zipf:inf", "pareto", ""] {
            assert!(TrafficShape::parse(bad, 8, 1).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn same_seed_replays_the_exact_sequence() {
        for spec in ["uniform", "zipf:1.1", "burst", "diurnal", "flood"] {
            let mut a = TrafficShape::parse(spec, 16, 42).unwrap();
            let mut b = TrafficShape::parse(spec, 16, 42).unwrap();
            let seq_a: Vec<usize> = (0..500).map(|_| a.next_session()).collect();
            let seq_b: Vec<usize> = (0..500).map(|_| b.next_session()).collect();
            assert_eq!(seq_a, seq_b, "{spec} must replay from its seed");
            let mut c = TrafficShape::parse(spec, 16, 43).unwrap();
            let seq_c: Vec<usize> = (0..500).map(|_| c.next_session()).collect();
            if spec != "burst" {
                // Burst phases are draw-indexed, but the uniform halves
                // still differ; for the stochastic shapes the whole
                // sequence differs.
                assert_ne!(seq_a, seq_c, "{spec} must vary with the seed");
            }
        }
    }

    #[test]
    fn zipf_is_head_heavy_and_covers_the_tail() {
        let mut shape = TrafficShape::parse("zipf:1.1", 16, 7).unwrap();
        let counts = histogram(&mut shape, 4000);
        assert!(
            counts[0] > counts[8] && counts[0] > counts[15],
            "rank 0 must dominate: {counts:?}"
        );
        assert!(
            counts[0] as f64 >= 0.2 * 4000.0,
            "zipf(1.1) head takes a large share: {counts:?}"
        );
        assert_eq!(shape.draws(), 4000);
        assert_eq!(shape.hot_draws(), counts[0]);
    }

    #[test]
    fn flood_concentrates_on_session_zero() {
        let mut shape = TrafficShape::parse("flood", 8, 3).unwrap();
        let counts = histogram(&mut shape, 2000);
        assert!(
            counts[0] as f64 > 0.7 * 2000.0,
            "flood must hammer session 0: {counts:?}"
        );
        assert_eq!(shape.hot_draws(), counts[0]);
    }

    #[test]
    fn burst_alternates_uniform_and_single_target_phases() {
        let mut shape = TrafficShape::parse("burst", 8, 5).unwrap();
        // First phase (draws 0..64) is uniform, second (64..128) is one
        // session only.
        let first: Vec<usize> = (0..64).map(|_| shape.next_session()).collect();
        let second: Vec<usize> = (0..64).map(|_| shape.next_session()).collect();
        assert!(first.iter().collect::<std::collections::HashSet<_>>().len() > 1);
        assert_eq!(
            second
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            1
        );
        assert_eq!(shape.hot_draws(), 64);
    }

    #[test]
    fn diurnal_keeps_most_traffic_inside_the_rotating_window() {
        let mut shape = TrafficShape::parse("diurnal", 8, 9).unwrap();
        let counts = histogram(&mut shape, 4000);
        // Every session gets some traffic (the window rotates through the
        // whole pool over 8 phases), but the hot share dominates.
        assert!(
            counts.iter().all(|&c| c > 0),
            "window must rotate: {counts:?}"
        );
        assert!(shape.hot_draws() as f64 > 0.8 * 4000.0);
    }

    #[test]
    fn single_session_pools_are_legal_for_every_shape() {
        for spec in ["uniform", "zipf:1.1", "burst", "diurnal", "flood"] {
            let mut shape = TrafficShape::parse(spec, 1, 1).unwrap();
            for _ in 0..100 {
                assert_eq!(shape.next_session(), 0);
            }
        }
    }
}
