//! `chameleon-balance`: a load-aware shard rebalancer for the fleet
//! engine, plus the seeded skewed-traffic shapes that make its win
//! provable.
//!
//! Session→shard placement in `chameleon-fleet` is a static seeded hash —
//! perfect for determinism, blind to load. Real traffic is Zipf-skewed,
//! bursty, and diurnal, so one hot shard saturates while the rest idle.
//! This crate closes the loop:
//!
//! * [`ShardLoad`] — per-shard load signals (queue depth, recent steps,
//!   resident bytes, eviction churn) sourced from the fleet's own
//!   [`chameleon_fleet::ShardMetrics`] counters,
//! * [`BalancePolicy`] — the pluggable planning trait, shipped with
//!   [`PeriodicLeastLoaded`] (periodic rebalance toward the least-loaded
//!   shard) and [`ThresholdWorkStealing`] (threshold-triggered stealing
//!   for single-user floods),
//! * [`Balancer`] — executes plans as **online session migrations**:
//!   export the session to its `CHAMFLT1` checkpoint, record the new
//!   placement in the engine's override table, import the blob cold on
//!   the target shard ([`chameleon_fleet::FleetEngine::migrate_session`]),
//! * [`TrafficShape`] — seeded zipf / burst / diurnal / flood traffic
//!   generators for loadgen, benches, and the CLI.
//!
//! # Migration safety
//!
//! A migration is observably identical to a local
//! [`chameleon_fleet::SessionCommand::Evict`] at the same command
//! boundary: observable state (replay stores, quarantine, counters,
//! stream position) moves bit for bit; transient training state restarts
//! exactly as the checkpoint format documents. The
//! `chameleon-simtest` migration explorer proves learning outcomes are
//! bit-identical regardless of migration schedule (`simtest
//! --balance-seeds N`), and the write-ahead store discipline from
//! `chameleon-store` makes mid-migration crashes recoverable: the
//! override table is in-memory, so recovery simply re-homes every
//! session on its hash-default shard and reads the latest sealed
//! checkpoint from the fleet-wide store.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use chameleon_balance::{BalanceConfig, TrafficShape};
//! use chameleon_core::ChameleonConfig;
//! use chameleon_fleet::{FleetConfig, FleetEngine, SessionCommand, SessionSpec};
//! use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};
//!
//! let scenario = Arc::new(DomainIlScenario::generate(&DatasetSpec::core50_tiny(), 1));
//! let mut fleet = FleetEngine::new_sim(
//!     scenario,
//!     FleetConfig { num_shards: 2, ..FleetConfig::default() },
//!     7,
//! );
//! let mut shape = TrafficShape::parse("zipf:1.1", 4, 7).expect("shape");
//! let mut balancer = BalanceConfig::parse("steal:4").expect("policy").build();
//! for user in 0..4u64 {
//!     let spec = SessionSpec {
//!         learner: ChameleonConfig::default(),
//!         stream: StreamConfig::default(),
//!         learner_seed: user,
//!         stream_seed: user,
//!     };
//!     fleet.create_blocking(user, spec).expect("create");
//! }
//! for _ in 0..64 {
//!     let user = shape.next_session() as u64;
//!     fleet
//!         .command_blocking(user, SessionCommand::Step { batches: 1 })
//!         .expect("step");
//!     balancer.on_op(&mut fleet);
//! }
//! fleet.drain_pending();
//! assert!(balancer.counters().rebalance_ticks >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod balancer;
mod policy;
mod shape;

pub use balancer::{BalanceConfig, BalanceCounters, Balancer, PolicyKind};
pub use policy::{BalancePolicy, Migration, PeriodicLeastLoaded, ShardLoad, ThresholdWorkStealing};
pub use shape::{ShapeKind, TrafficShape};
