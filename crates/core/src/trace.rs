//! Operation and memory-traffic counters for hardware costing.

/// Counts of architectural events accumulated by a strategy over a run.
///
/// These are *counts*, not costs: the `chameleon-hw` crate converts them to
/// latency and energy with device-specific constants (nominal MobileNetV1
/// MAC counts, per-sample byte sizes, SRAM/DRAM energy). Keeping strategies
/// cost-agnostic means a single recorded trace prices onto every device
/// model in Table II.
///
/// All counters are totals for the run; [`StepTrace::per_input`] normalizes
/// by the number of stream inputs, which is the unit of Table II
/// ("latency/energy per image").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepTrace {
    /// New stream samples observed.
    pub inputs: u64,
    /// Forward passes through the frozen trunk `f_θ` (new inputs plus
    /// re-extraction of raw replay samples — ER/DER/GSS pay this again for
    /// every replayed image; latent methods do not).
    pub trunk_passes: u64,
    /// Per-sample forward passes through the trainable head `g_φ`.
    pub head_fwd_passes: u64,
    /// Per-sample backward passes through the head.
    pub head_bwd_passes: u64,
    /// Replay samples read from the on-chip store (Chameleon's `M_s`).
    pub onchip_sample_reads: u64,
    /// Replay samples written to the on-chip store.
    pub onchip_sample_writes: u64,
    /// Latent replay samples read from off-chip memory.
    pub offchip_latent_reads: u64,
    /// Latent replay samples written to off-chip memory.
    pub offchip_latent_writes: u64,
    /// Raw-image replay samples read from off-chip memory.
    pub offchip_raw_reads: u64,
    /// Raw-image replay samples written to off-chip memory.
    pub offchip_raw_writes: u64,
    /// Covariance / pseudo-inverse updates (SLDA's per-image `O(N²)` update).
    pub covariance_updates: u64,
    /// Full matrix inversions performed (SLDA's `O(N³)` step).
    pub matrix_inversions: u64,
    /// Dimension of the inverted matrix (0 when unused).
    pub inversion_dim: usize,
}

impl StepTrace {
    /// A zeroed trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Normalizes every counter by the number of inputs, yielding average
    /// events *per stream image* — the unit the paper's Table II reports.
    ///
    /// Returns `None` when no inputs were observed.
    pub fn per_input(&self) -> Option<PerInputTrace> {
        if self.inputs == 0 {
            return None;
        }
        let n = self.inputs as f64;
        Some(PerInputTrace {
            trunk_passes: self.trunk_passes as f64 / n,
            head_fwd_passes: self.head_fwd_passes as f64 / n,
            head_bwd_passes: self.head_bwd_passes as f64 / n,
            onchip_sample_reads: self.onchip_sample_reads as f64 / n,
            onchip_sample_writes: self.onchip_sample_writes as f64 / n,
            offchip_latent_reads: self.offchip_latent_reads as f64 / n,
            offchip_latent_writes: self.offchip_latent_writes as f64 / n,
            offchip_raw_reads: self.offchip_raw_reads as f64 / n,
            offchip_raw_writes: self.offchip_raw_writes as f64 / n,
            covariance_updates: self.covariance_updates as f64 / n,
            matrix_inversions: self.matrix_inversions as f64 / n,
            inversion_dim: self.inversion_dim,
        })
    }

    /// Adds another trace's totals into this one.
    pub fn merge(&mut self, other: &StepTrace) {
        self.inputs += other.inputs;
        self.trunk_passes += other.trunk_passes;
        self.head_fwd_passes += other.head_fwd_passes;
        self.head_bwd_passes += other.head_bwd_passes;
        self.onchip_sample_reads += other.onchip_sample_reads;
        self.onchip_sample_writes += other.onchip_sample_writes;
        self.offchip_latent_reads += other.offchip_latent_reads;
        self.offchip_latent_writes += other.offchip_latent_writes;
        self.offchip_raw_reads += other.offchip_raw_reads;
        self.offchip_raw_writes += other.offchip_raw_writes;
        self.covariance_updates += other.covariance_updates;
        self.matrix_inversions += other.matrix_inversions;
        self.inversion_dim = self.inversion_dim.max(other.inversion_dim);
    }
}

/// Per-stream-image averages derived from a [`StepTrace`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PerInputTrace {
    /// Trunk forward passes per image.
    pub trunk_passes: f64,
    /// Head forward sample-passes per image.
    pub head_fwd_passes: f64,
    /// Head backward sample-passes per image.
    pub head_bwd_passes: f64,
    /// On-chip replay reads per image.
    pub onchip_sample_reads: f64,
    /// On-chip replay writes per image.
    pub onchip_sample_writes: f64,
    /// Off-chip latent reads per image.
    pub offchip_latent_reads: f64,
    /// Off-chip latent writes per image.
    pub offchip_latent_writes: f64,
    /// Off-chip raw reads per image.
    pub offchip_raw_reads: f64,
    /// Off-chip raw writes per image.
    pub offchip_raw_writes: f64,
    /// Covariance updates per image.
    pub covariance_updates: f64,
    /// Matrix inversions per image.
    pub matrix_inversions: f64,
    /// Dimension of the inverted matrix.
    pub inversion_dim: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_input_normalizes() {
        let t = StepTrace {
            inputs: 10,
            trunk_passes: 10,
            head_fwd_passes: 30,
            head_bwd_passes: 30,
            onchip_sample_reads: 100,
            ..StepTrace::default()
        };
        let p = t.per_input().expect("non-empty");
        assert_eq!(p.trunk_passes, 1.0);
        assert_eq!(p.head_fwd_passes, 3.0);
        assert_eq!(p.onchip_sample_reads, 10.0);
    }

    #[test]
    fn per_input_of_empty_trace_is_none() {
        assert!(StepTrace::new().per_input().is_none());
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = StepTrace {
            inputs: 1,
            trunk_passes: 2,
            ..StepTrace::default()
        };
        let b = StepTrace {
            inputs: 3,
            trunk_passes: 4,
            inversion_dim: 64,
            ..StepTrace::default()
        };
        a.merge(&b);
        assert_eq!(a.inputs, 4);
        assert_eq!(a.trunk_passes, 6);
        assert_eq!(a.inversion_dim, 64);
    }
}
