//! User-preference estimation (paper §III-C, Eq. 2).

/// On-device user-preference tracker.
///
/// The paper estimates user preferences by tracking per-class sample
/// frequencies `n_c` and identifying the `k` most frequent classes within a
/// *learning window* (~1500 images). At the end of each window the top-`k`
/// set and the allocation factor
///
/// ```text
/// Δ_k = n_k^ρ / (n_k + n_{N−k})^ρ            (Eq. 2)
/// ```
///
/// are recalibrated, where `n_k` is the mean window frequency of preferred
/// classes, `n_{N−k}` the mean frequency of the rest, and `ρ ∈ [0, 1]`
/// interpolates between treating all classes equally (ρ = 0 ⇒ Δ = 1) and
/// allocating in proportion to observed frequency (ρ = 1).
///
/// [`PreferenceTracker::allocation_weight`] returns the per-sample term of
/// Eq. 4: `Δ_k` for preferred classes, `1 − Δ_k` otherwise.
///
/// # Example
///
/// ```
/// use chameleon_core::PreferenceTracker;
///
/// let mut t = PreferenceTracker::new(10, 2, 20, 0.6);
/// for _ in 0..15 { t.observe(3); }
/// for _ in 0..5 { t.observe(7); }
/// // Window of 20 complete: classes 3 and 7 are the user's preferred set.
/// assert!(t.is_preferred(3) && t.is_preferred(7));
/// assert!(!t.is_preferred(0));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PreferenceTracker {
    window_counts: Vec<u64>,
    total_counts: Vec<u64>,
    window_len: usize,
    seen_in_window: usize,
    k: usize,
    rho: f32,
    preferred: Vec<usize>,
    delta: f32,
    windows_completed: u64,
}

impl PreferenceTracker {
    /// Creates a tracker over `num_classes` classes with top-`k` preference
    /// sets, a learning window of `window_len` samples, and exponent `rho`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k > num_classes`, `window_len == 0`, or `rho`
    /// is outside `[0, 1]`.
    pub fn new(num_classes: usize, k: usize, window_len: usize, rho: f32) -> Self {
        assert!(k > 0 && k <= num_classes, "k must be in 1..=num_classes");
        assert!(window_len > 0, "window length must be positive");
        assert!((0.0..=1.0).contains(&rho), "rho must be in [0,1]");
        Self {
            window_counts: vec![0; num_classes],
            total_counts: vec![0; num_classes],
            window_len,
            seen_in_window: 0,
            k,
            rho,
            preferred: Vec::new(),
            // Before the first window completes, Δ defaults to 0.5 so the
            // allocation term is uninformative (all classes equal).
            delta: 0.5,
            windows_completed: 0,
        }
    }

    /// Records one observed label; recalibrates at window boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range.
    pub fn observe(&mut self, label: usize) {
        assert!(label < self.window_counts.len(), "label out of range");
        self.window_counts[label] += 1;
        self.total_counts[label] += 1;
        self.seen_in_window += 1;
        if self.seen_in_window >= self.window_len {
            self.recalibrate();
        }
    }

    /// Whether `class` is in the current preferred set.
    pub fn is_preferred(&self, class: usize) -> bool {
        self.preferred.contains(&class)
    }

    /// The current preferred classes (empty before the first window).
    pub fn preferred(&self) -> &[usize] {
        &self.preferred
    }

    /// The current allocation factor `Δ_k`.
    pub fn delta(&self) -> f32 {
        self.delta
    }

    /// Per-class allocation term of Eq. 4: `Δ_k` for preferred classes,
    /// `1 − Δ_k` otherwise.
    pub fn allocation_weight(&self, class: usize) -> f32 {
        if self.is_preferred(class) {
            self.delta
        } else {
            1.0 - self.delta
        }
    }

    /// Number of completed learning windows.
    pub fn windows_completed(&self) -> u64 {
        self.windows_completed
    }

    /// Lifetime per-class counts `n_c` (Algorithm 1 line 3).
    pub fn total_counts(&self) -> &[u64] {
        &self.total_counts
    }

    /// Restores lifetime counts from a checkpoint. Window-local state
    /// (current window counts, preferred set, Δ) restarts; it re-converges
    /// within one learning window.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len()` differs from the class count.
    pub fn restore_counts(&mut self, counts: &[u64]) {
        assert_eq!(
            counts.len(),
            self.total_counts.len(),
            "checkpoint class count mismatch"
        );
        self.total_counts.copy_from_slice(counts);
    }

    fn recalibrate(&mut self) {
        // Rank classes by window frequency; take the top-k with non-zero
        // counts as the new preferred set.
        let mut order: Vec<usize> = (0..self.window_counts.len()).collect();
        order.sort_by(|&a, &b| {
            self.window_counts[b]
                .cmp(&self.window_counts[a])
                .then(a.cmp(&b))
        });
        self.preferred = order
            .into_iter()
            .take(self.k)
            .filter(|&c| self.window_counts[c] > 0)
            .collect();

        // Eq. 2 with mean frequencies of the two groups.
        let pref_total: u64 = self.preferred.iter().map(|&c| self.window_counts[c]).sum();
        let rest_classes = self.window_counts.len() - self.preferred.len();
        let rest_total: u64 = self.window_counts.iter().sum::<u64>() - pref_total;
        let n_k = if self.preferred.is_empty() {
            0.0
        } else {
            pref_total as f32 / self.preferred.len() as f32
        };
        let n_rest = if rest_classes == 0 {
            0.0
        } else {
            rest_total as f32 / rest_classes as f32
        };
        self.delta = if n_k + n_rest > 0.0 {
            (n_k / (n_k + n_rest)).powf(self.rho)
        } else {
            0.5
        };

        self.window_counts.fill(0);
        self.seen_in_window = 0;
        self.windows_completed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn before_first_window_everything_is_neutral() {
        let t = PreferenceTracker::new(5, 2, 100, 0.5);
        assert!(t.preferred().is_empty());
        assert_eq!(t.delta(), 0.5);
        assert_eq!(t.allocation_weight(0), 0.5);
        assert_eq!(t.allocation_weight(4), 0.5);
    }

    #[test]
    fn top_k_classes_become_preferred() {
        let mut t = PreferenceTracker::new(6, 2, 30, 0.5);
        for _ in 0..20 {
            t.observe(1);
        }
        for _ in 0..8 {
            t.observe(4);
        }
        for _ in 0..2 {
            t.observe(0);
        }
        assert_eq!(t.windows_completed(), 1);
        assert!(t.is_preferred(1));
        assert!(t.is_preferred(4));
        assert!(!t.is_preferred(0));
    }

    #[test]
    fn preferences_recalibrate_when_user_changes() {
        let mut t = PreferenceTracker::new(4, 1, 10, 0.5);
        for _ in 0..10 {
            t.observe(0);
        }
        assert_eq!(t.preferred(), &[0]);
        for _ in 0..10 {
            t.observe(3);
        }
        assert_eq!(t.preferred(), &[3]);
        assert_eq!(t.windows_completed(), 2);
    }

    #[test]
    fn rho_zero_gives_neutral_delta() {
        let mut t = PreferenceTracker::new(4, 1, 10, 0.0);
        for _ in 0..10 {
            t.observe(0);
        }
        // Δ = ratio^0 = 1 for any ratio… but Eq. 2's intent at ρ=0 is "all
        // classes equally favorable". ratio^0 = 1.0 exactly.
        assert!((t.delta() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rho_one_gives_frequency_ratio() {
        let mut t = PreferenceTracker::new(2, 1, 10, 1.0);
        for _ in 0..8 {
            t.observe(0);
        }
        for _ in 0..2 {
            t.observe(1);
        }
        // n_k = 8, n_rest = 2 ⇒ Δ = 8/10.
        assert!((t.delta() - 0.8).abs() < 1e-6);
    }

    #[test]
    fn allocation_weight_splits_delta() {
        let mut t = PreferenceTracker::new(2, 1, 10, 1.0);
        for _ in 0..9 {
            t.observe(0);
        }
        t.observe(1);
        assert!((t.allocation_weight(0) - 0.9).abs() < 1e-6);
        assert!((t.allocation_weight(1) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn total_counts_accumulate_across_windows() {
        let mut t = PreferenceTracker::new(3, 1, 5, 0.5);
        for _ in 0..12 {
            t.observe(2);
        }
        assert_eq!(t.total_counts()[2], 12);
        assert_eq!(t.windows_completed(), 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_panics() {
        let mut t = PreferenceTracker::new(3, 1, 5, 0.5);
        t.observe(3);
    }
}
