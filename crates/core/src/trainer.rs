//! The Domain-IL training/evaluation harness.

use chameleon_faults::FaultInjector;
use chameleon_stream::{DomainIlScenario, StreamConfig};
use chameleon_tensor::stats::MeanStd;

use crate::{EvalReport, StepTrace, Strategy};

/// Runs the paper's evaluation protocol: stream every domain once, in
/// order, through a strategy, then score `Acc_all` on the all-domain test
/// set.
///
/// # Example
///
/// ```
/// use chameleon_core::{Finetune, ModelConfig, Trainer};
/// use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};
///
/// let spec = DatasetSpec::core50_tiny();
/// let scenario = DomainIlScenario::generate(&spec, 0);
/// let model = ModelConfig::for_spec(&spec);
/// let mut strategy = Finetune::new(&model, 1);
/// let report = Trainer::new(StreamConfig::default()).run(&scenario, &mut strategy, 1);
/// assert!(report.acc_all >= 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct Trainer {
    stream_config: StreamConfig,
}

impl Trainer {
    /// Creates a trainer with the given stream shaping.
    ///
    /// # Panics
    ///
    /// Panics if the stream configuration is invalid.
    pub fn new(stream_config: StreamConfig) -> Self {
        stream_config.assert_valid();
        Self { stream_config }
    }

    /// Stream configuration in use.
    pub fn stream_config(&self) -> &StreamConfig {
        &self.stream_config
    }

    /// Trains `strategy` on all domains in order (single pass) and
    /// evaluates it.
    pub fn run<S: Strategy + ?Sized>(
        &self,
        scenario: &DomainIlScenario,
        strategy: &mut S,
        stream_seed: u64,
    ) -> EvalReport {
        let order: Vec<usize> = (0..scenario.spec().num_domains).collect();
        self.run_ordered(scenario, strategy, &order, stream_seed)
    }

    /// Trains `strategy` over the domains in an explicit `order` — the
    /// stream-order robustness protocol (a continual learner must not
    /// depend on a lucky domain sequence).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..num_domains`.
    pub fn run_ordered<S: Strategy + ?Sized>(
        &self,
        scenario: &DomainIlScenario,
        strategy: &mut S,
        order: &[usize],
        stream_seed: u64,
    ) -> EvalReport {
        self.run_inner(scenario, strategy, order, stream_seed, None)
    }

    /// Like [`Trainer::run`], but with a fault injector between the
    /// scenario and the strategy: arriving batches pass through the
    /// injector's stream faults, and after every observed batch the
    /// strategy's replay stores receive placement-scaled bit upsets for the
    /// ticks that batch represents.
    ///
    /// A zero-rate injector leaves this bit-identical to [`Trainer::run`]:
    /// the fault paths neither perturb data nor consume randomness.
    pub fn run_with_faults<S: Strategy + ?Sized>(
        &self,
        scenario: &DomainIlScenario,
        strategy: &mut S,
        stream_seed: u64,
        faults: &mut FaultInjector,
    ) -> EvalReport {
        let order: Vec<usize> = (0..scenario.spec().num_domains).collect();
        self.run_inner(scenario, strategy, &order, stream_seed, Some(faults))
    }

    fn run_inner<S: Strategy + ?Sized>(
        &self,
        scenario: &DomainIlScenario,
        strategy: &mut S,
        order: &[usize],
        stream_seed: u64,
        mut faults: Option<&mut FaultInjector>,
    ) -> EvalReport {
        let num_domains = scenario.spec().num_domains;
        let mut seen = vec![false; num_domains];
        assert_eq!(order.len(), num_domains, "order must cover every domain");
        for &domain in order {
            assert!(
                domain < num_domains && !seen[domain],
                "order must be a permutation of 0..{num_domains}"
            );
            seen[domain] = true;
        }
        for (position, &domain) in order.iter().enumerate() {
            strategy.begin_domain(position);
            for batch in scenario.domain_stream(
                domain,
                &self.stream_config,
                stream_seed.wrapping_add(position as u64 * 0x9E37),
            ) {
                match faults.as_deref_mut() {
                    None => strategy.observe(&batch),
                    Some(injector) => {
                        // Stream time passes whether or not the batch is
                        // delivered: a dropped batch's samples still age
                        // whatever is resident in the stores.
                        let ticks = batch.len() as u64;
                        for delivered in injector.mangle_batch(batch) {
                            strategy.observe(&delivered);
                        }
                        strategy.visit_stores(&mut |placement, sample| {
                            injector.flip_bits(&mut sample.features, ticks, placement);
                        });
                    }
                }
            }
            strategy.end_domain(position);
        }
        strategy.finalize();
        EvalReport::evaluate(scenario, strategy)
    }

    /// Trains and evaluates after *every* domain (for forgetting curves).
    /// Returns one report per completed domain.
    pub fn run_with_domain_evals<S: Strategy + ?Sized>(
        &self,
        scenario: &DomainIlScenario,
        strategy: &mut S,
        stream_seed: u64,
    ) -> Vec<EvalReport> {
        let mut reports = Vec::with_capacity(scenario.spec().num_domains);
        for domain in 0..scenario.spec().num_domains {
            strategy.begin_domain(domain);
            for batch in scenario.domain_stream(
                domain,
                &self.stream_config,
                stream_seed.wrapping_add(domain as u64 * 0x9E37),
            ) {
                strategy.observe(&batch);
            }
            strategy.end_domain(domain);
            if domain + 1 == scenario.spec().num_domains {
                strategy.finalize();
            }
            reports.push(EvalReport::evaluate(scenario, strategy));
        }
        reports
    }

    /// Repeats `run` over several seeds with freshly-built strategies and
    /// aggregates `Acc_all` as mean ± std — the format of Table I (the
    /// paper averages over ten runs).
    ///
    /// Seeds are run in parallel threads; the factory receives each run's
    /// seed and must build an independent strategy.
    pub fn run_many<F>(
        &self,
        scenario: &DomainIlScenario,
        factory: F,
        seeds: &[u64],
    ) -> AggregateReport
    where
        F: Fn(u64) -> Box<dyn Strategy> + Sync,
    {
        assert!(!seeds.is_empty(), "at least one seed required");
        let reports: Vec<(EvalReport, StepTrace, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .iter()
                .map(|&seed| {
                    let factory = &factory;
                    let trainer = self.clone();
                    scope.spawn(move || {
                        let mut strategy = factory(seed);
                        let report = trainer.run(scenario, strategy.as_mut(), seed);
                        (report, strategy.trace(), strategy.name().to_string())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("run thread panicked"))
                .collect()
        });

        let accs: Vec<f32> = reports.iter().map(|(r, _, _)| r.acc_all).collect();
        let mut trace = StepTrace::new();
        for (_, t, _) in &reports {
            trace.merge(t);
        }
        AggregateReport {
            name: reports[0].2.clone(),
            acc_all: MeanStd::from_samples(&accs),
            memory_overhead_mb: reports[0].0.memory_overhead_mb,
            runs: reports.into_iter().map(|(r, _, _)| r).collect(),
            trace,
        }
    }
}

/// Aggregated result of repeated runs: the row format of Table I.
#[derive(Clone, Debug)]
pub struct AggregateReport {
    /// Strategy name.
    pub name: String,
    /// `Acc_all` mean ± std over the seeds.
    pub acc_all: MeanStd,
    /// Nominal memory overhead (identical across runs).
    pub memory_overhead_mb: f64,
    /// Individual run reports (per-domain/per-class detail).
    pub runs: Vec<EvalReport>,
    /// Merged operation trace across all runs.
    pub trace: StepTrace,
}

impl AggregateReport {
    /// Mean per-domain accuracy across runs.
    pub fn mean_per_domain(&self) -> Vec<f32> {
        if self.runs.is_empty() {
            return Vec::new();
        }
        let domains = self.runs[0].per_domain.len();
        let mut out = vec![0.0f32; domains];
        for run in &self.runs {
            for (o, &a) in out.iter_mut().zip(&run.per_domain) {
                *o += a;
            }
        }
        for o in &mut out {
            *o /= self.runs.len() as f32;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finetune, LatentReplay, ModelConfig};
    use chameleon_stream::DatasetSpec;

    #[test]
    fn run_many_aggregates_over_seeds() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 0);
        let model = ModelConfig::for_spec(&spec);
        let agg = Trainer::new(StreamConfig::default()).run_many(
            &scenario,
            |seed| Box::new(Finetune::new(&model, seed)),
            &[1, 2, 3],
        );
        assert_eq!(agg.acc_all.runs, 3);
        assert_eq!(agg.runs.len(), 3);
        assert_eq!(agg.name, "Finetuning");
        assert!(agg.acc_all.mean >= 0.0 && agg.acc_all.mean <= 100.0);
    }

    #[test]
    fn replay_beats_finetune_on_tiny_scenario() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 1);
        let model = ModelConfig::for_spec(&spec);
        let trainer = Trainer::new(StreamConfig::default());
        let seeds = [1, 2, 3];
        let ft = trainer.run_many(&scenario, |s| Box::new(Finetune::new(&model, s)), &seeds);
        let lr = trainer.run_many(
            &scenario,
            |s| Box::new(LatentReplay::new(&model, 60, s)),
            &seeds,
        );
        assert!(
            lr.acc_all.mean > ft.acc_all.mean,
            "latent replay {} should beat finetune {}",
            lr.acc_all.mean,
            ft.acc_all.mean
        );
    }

    #[test]
    fn domain_evals_produce_one_report_per_domain() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 2);
        let model = ModelConfig::for_spec(&spec);
        let mut strategy = Finetune::new(&model, 5);
        let reports = Trainer::new(StreamConfig::default()).run_with_domain_evals(
            &scenario,
            &mut strategy,
            5,
        );
        assert_eq!(reports.len(), spec.num_domains);
    }

    #[test]
    fn run_ordered_with_identity_matches_run() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 6);
        let model = ModelConfig::for_spec(&spec);
        let trainer = Trainer::new(StreamConfig::default());
        let mut a = Finetune::new(&model, 9);
        let plain = trainer.run(&scenario, &mut a, 9);
        let mut b = Finetune::new(&model, 9);
        let order: Vec<usize> = (0..spec.num_domains).collect();
        let ordered = trainer.run_ordered(&scenario, &mut b, &order, 9);
        assert_eq!(plain.acc_all, ordered.acc_all);
    }

    #[test]
    fn run_ordered_changes_the_outcome_for_recency_biased_learners() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 7);
        let model = ModelConfig::for_spec(&spec);
        let trainer = Trainer::new(StreamConfig::default());
        let forward: Vec<usize> = (0..spec.num_domains).collect();
        let reverse: Vec<usize> = (0..spec.num_domains).rev().collect();
        let mut a = Finetune::new(&model, 2);
        let fwd = trainer.run_ordered(&scenario, &mut a, &forward, 2);
        let mut b = Finetune::new(&model, 2);
        let rev = trainer.run_ordered(&scenario, &mut b, &reverse, 2);
        // A recency-biased learner favors whichever domain came last.
        let last_fwd = *fwd.per_domain.last().expect("domains");
        let last_rev = rev.per_domain[0];
        assert!(
            last_fwd > 30.0 && last_rev > 30.0,
            "{last_fwd} / {last_rev}"
        );
        assert_ne!(fwd.acc_all, rev.acc_all);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn run_ordered_rejects_duplicates() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 8);
        let model = ModelConfig::for_spec(&spec);
        let mut s = Finetune::new(&model, 1);
        let order = vec![0usize; spec.num_domains];
        Trainer::new(StreamConfig::default()).run_ordered(&scenario, &mut s, &order, 1);
    }

    #[test]
    fn mean_per_domain_averages_runs() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 3);
        let model = ModelConfig::for_spec(&spec);
        let agg = Trainer::new(StreamConfig::default()).run_many(
            &scenario,
            |seed| Box::new(Finetune::new(&model, seed)),
            &[4, 5],
        );
        assert_eq!(agg.mean_per_domain().len(), spec.num_domains);
    }
}
