//! Experience Replay (Chaudhry et al., 2019).

use chameleon_replay::{ReservoirBuffer, StorePlacement, StoredSample};
use chameleon_stream::Batch;
use chameleon_tensor::{Matrix, Prng};

use crate::baselines::{stack_rows, LearnerCore};
use crate::{ModelConfig, StepTrace, Strategy};

/// Experience Replay: a single reservoir buffer of **raw input images**,
/// interleaved with each incoming batch.
///
/// Storage cost is the full raw image per sample (48 KB nominal — Table I's
/// 4.8 MB per 100 samples), and every replayed image must be re-extracted
/// through the frozen trunk, which the hardware model prices as extra trunk
/// passes and off-chip raw traffic.
#[derive(Debug)]
pub struct Er {
    core: LearnerCore,
    buffer: ReservoirBuffer,
    replay_batch: usize,
    shapes: chameleon_stream::shapes::NominalShapes,
    rng: Prng,
    trace: StepTrace,
}

impl Er {
    /// Creates an ER learner with a raw-image buffer of `capacity` samples.
    pub fn new(model: &ModelConfig, capacity: usize, seed: u64) -> Self {
        Self {
            core: LearnerCore::new(model, seed),
            buffer: ReservoirBuffer::new(capacity),
            replay_batch: 10,
            shapes: model.shapes,
            rng: Prng::new(seed ^ 0xE12),
            trace: StepTrace::new(),
        }
    }

    /// Current buffer occupancy.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }
}

impl Strategy for Er {
    fn name(&self) -> &str {
        "ER"
    }

    fn observe(&mut self, batch: &Batch) {
        self.trace.inputs += batch.len() as u64;
        self.trace.trunk_passes += batch.len() as u64;

        // Replay raw images: read from the (off-chip) buffer, re-extract.
        let replayed = self.buffer.sample_batch(self.replay_batch, &mut self.rng);
        self.trace.offchip_raw_reads += replayed.len() as u64;
        self.trace.trunk_passes += replayed.len() as u64;

        let mut raw_rows: Vec<Vec<f32>> = batch.raw.iter_rows().map(<[f32]>::to_vec).collect();
        let mut labels = batch.labels.clone();
        for s in &replayed {
            raw_rows.push(s.features.clone());
            labels.push(s.label);
        }
        let raw = stack_rows(&raw_rows);
        let latents = self.core.extractor.extract_batch(&raw);
        self.core.train_ce(&latents, &labels);
        self.trace.head_fwd_passes += labels.len() as u64;
        self.trace.head_bwd_passes += labels.len() as u64;

        // Reservoir insertion of the raw incoming samples.
        for (row, &label) in batch.raw.iter_rows().zip(&batch.labels) {
            if self
                .buffer
                .offer(StoredSample::raw(row.to_vec(), label), &mut self.rng)
            {
                self.trace.offchip_raw_writes += 1;
            }
        }
    }

    fn logits(&self, raw: &Matrix) -> Matrix {
        self.core.logits_raw(raw)
    }

    fn memory_overhead_mb(&self) -> f64 {
        self.shapes.raw_mb(self.buffer.capacity())
    }

    fn trace(&self) -> StepTrace {
        self.trace
    }

    fn visit_stores(&mut self, visit: &mut dyn FnMut(StorePlacement, &mut StoredSample)) {
        // ER's single raw-image buffer is too large for on-chip SRAM.
        for s in self.buffer.samples_mut() {
            visit(StorePlacement::OffChipDram, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trainer;
    use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};

    #[test]
    fn er_beats_finetune() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 0);
        let model = ModelConfig::for_spec(&spec);
        let trainer = Trainer::new(StreamConfig::default());
        let mut er = Er::new(&model, 60, 1);
        let er_acc = trainer.run(&scenario, &mut er, 1).acc_all;
        let mut ft = crate::Finetune::new(&model, 1);
        let ft_acc = trainer.run(&scenario, &mut ft, 1).acc_all;
        assert!(er_acc > ft_acc + 5.0, "ER {er_acc} vs finetune {ft_acc}");
    }

    #[test]
    fn buffer_respects_capacity() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 1);
        let model = ModelConfig::for_spec(&spec);
        let mut er = Er::new(&model, 25, 2);
        Trainer::new(StreamConfig::default()).run(&scenario, &mut er, 2);
        assert_eq!(er.buffer_len(), 25);
    }

    #[test]
    fn memory_overhead_uses_raw_bytes() {
        let model = ModelConfig::for_spec(&DatasetSpec::core50_tiny());
        let er = Er::new(&model, 100, 3);
        assert!((er.memory_overhead_mb() - 4.8).abs() < 0.2);
    }

    #[test]
    fn trace_includes_replay_trunk_passes() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 2);
        let model = ModelConfig::for_spec(&spec);
        let mut er = Er::new(&model, 50, 4);
        Trainer::new(StreamConfig::default()).run(&scenario, &mut er, 4);
        let t = er.trace();
        // Raw replay forces trunk re-extraction: more trunk passes than
        // stream inputs.
        assert!(t.trunk_passes > t.inputs);
        assert!(t.offchip_raw_reads > 0);
        assert_eq!(t.offchip_latent_reads, 0);
    }
}
