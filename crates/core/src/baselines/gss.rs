//! Gradient-based Sample Selection (Aljundi et al., 2019), greedy variant.

use chameleon_replay::StoredSample;
use chameleon_stream::Batch;
use chameleon_tensor::{ops, Matrix, Prng};

use crate::baselines::{stack_rows, LearnerCore};
use crate::{ModelConfig, StepTrace, Strategy};

/// GSS hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GssConfig {
    /// Buffer capacity in samples.
    pub capacity: usize,
    /// Number of random buffer candidates compared per insertion decision
    /// (GSS-Greedy's `n`).
    pub candidates: usize,
}

impl GssConfig {
    /// Default GSS-Greedy configuration for a given capacity.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            candidates: 10,
        }
    }
}

/// GSS-Greedy: keeps buffer samples whose **gradient directions** are
/// maximally diverse. Each stored sample carries its per-sample gradient
/// vector and a similarity score; new samples probabilistically replace
/// stored ones that are more redundant (higher cosine similarity to the
/// rest of the buffer).
///
/// The stored gradient is what makes GSS's memory overhead ~10× ER's for
/// the same sample count (Table I: 48.8 MB per 100 samples).
#[derive(Debug)]
pub struct Gss {
    core: LearnerCore,
    /// Stored samples plus their gradient-similarity score at insertion.
    buffer: Vec<(StoredSample, f32)>,
    config: GssConfig,
    replay_batch: usize,
    shapes: chameleon_stream::shapes::NominalShapes,
    rng: Prng,
    trace: StepTrace,
}

impl Gss {
    /// Creates a GSS-Greedy learner.
    ///
    /// # Panics
    ///
    /// Panics if `config.capacity == 0` or `config.candidates == 0`.
    pub fn new(model: &ModelConfig, config: GssConfig, seed: u64) -> Self {
        assert!(config.capacity > 0, "buffer capacity must be positive");
        assert!(config.candidates > 0, "candidate count must be positive");
        Self {
            core: LearnerCore::new(model, seed),
            buffer: Vec::with_capacity(config.capacity),
            config,
            replay_batch: 10,
            shapes: model.shapes,
            rng: Prng::new(seed ^ 0x655),
            trace: StepTrace::new(),
        }
    }

    /// Current buffer occupancy.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Max cosine similarity of `gradient` against up to `candidates`
    /// random stored gradients (0 for an empty buffer).
    fn max_similarity(&mut self, gradient: &[f32]) -> f32 {
        if self.buffer.is_empty() {
            return 0.0;
        }
        let idx = self
            .rng
            .sample_without_replacement(self.buffer.len(), self.config.candidates);
        idx.into_iter()
            .map(|i| {
                let stored = self.buffer[i]
                    .0
                    .gradient
                    .as_deref()
                    .expect("GSS stores gradients");
                ops::cosine_similarity(gradient, stored)
            })
            .fold(0.0f32, f32::max)
    }

    /// GSS-Greedy insertion rule.
    fn offer(&mut self, raw: Vec<f32>, label: usize, gradient: Vec<f32>) {
        let score = self.max_similarity(&gradient).max(1e-3);
        if self.buffer.len() < self.config.capacity {
            self.buffer
                .push((StoredSample::with_gradient(raw, label, gradient), score));
            self.trace.offchip_raw_writes += 1;
            return;
        }
        // Pick a victim with probability proportional to its redundancy
        // score; replace it if the newcomer is less redundant.
        let weights: Vec<f32> = self.buffer.iter().map(|(_, s)| *s).collect();
        let victim = self.rng.weighted_choice(&weights);
        let victim_score = self.buffer[victim].1;
        if self.rng.uniform() < victim_score / (victim_score + score) {
            self.buffer[victim] = (StoredSample::with_gradient(raw, label, gradient), score);
            self.trace.offchip_raw_writes += 1;
        }
    }
}

impl Strategy for Gss {
    fn name(&self) -> &str {
        "GSS"
    }

    fn observe(&mut self, batch: &Batch) {
        self.trace.inputs += batch.len() as u64;
        self.trace.trunk_passes += batch.len() as u64;

        let latents = self.core.extractor.extract_batch(&batch.raw);

        // ER-style training on batch + replayed raw samples.
        let idx = self
            .rng
            .sample_without_replacement(self.buffer.len(), self.replay_batch);
        self.trace.offchip_raw_reads += idx.len() as u64;
        self.trace.trunk_passes += idx.len() as u64;
        let mut raw_rows: Vec<Vec<f32>> = batch.raw.iter_rows().map(<[f32]>::to_vec).collect();
        let mut labels = batch.labels.clone();
        for i in idx {
            raw_rows.push(self.buffer[i].0.features.clone());
            labels.push(self.buffer[i].0.label);
        }
        let all_latents = self.core.extractor.extract_batch(&stack_rows(&raw_rows));
        self.core.train_ce(&all_latents, &labels);
        self.trace.head_fwd_passes += labels.len() as u64;
        self.trace.head_bwd_passes += labels.len() as u64;

        // Gradient-direction-based insertion of the incoming samples. The
        // per-sample gradient costs an extra head fwd+bwd each — GSS's
        // compute overhead, which the hardware model prices.
        for (i, &label) in batch.labels.iter().enumerate() {
            let gradient = self.core.head.sample_gradient(latents.row(i), label);
            self.trace.head_fwd_passes += 1;
            self.trace.head_bwd_passes += 1;
            self.offer(batch.raw.row(i).to_vec(), label, gradient);
        }
    }

    fn logits(&self, raw: &Matrix) -> Matrix {
        self.core.logits_raw(raw)
    }

    fn memory_overhead_mb(&self) -> f64 {
        self.shapes.raw_with_gradient_mb(self.config.capacity)
    }

    fn trace(&self) -> StepTrace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trainer;
    use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};

    #[test]
    fn gss_beats_finetune() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 0);
        let model = ModelConfig::for_spec(&spec);
        let trainer = Trainer::new(StreamConfig::default());
        let mut gss = Gss::new(&model, GssConfig::new(60), 1);
        let gss_acc = trainer.run(&scenario, &mut gss, 1).acc_all;
        let mut ft = crate::Finetune::new(&model, 1);
        let ft_acc = trainer.run(&scenario, &mut ft, 1).acc_all;
        assert!(gss_acc > ft_acc + 5.0, "GSS {gss_acc} vs finetune {ft_acc}");
    }

    #[test]
    fn buffer_respects_capacity_and_stores_gradients() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 1);
        let model = ModelConfig::for_spec(&spec);
        let mut gss = Gss::new(&model, GssConfig::new(20), 2);
        Trainer::new(StreamConfig::default()).run(&scenario, &mut gss, 2);
        assert_eq!(gss.buffer_len(), 20);
        assert!(gss.buffer.iter().all(|(s, _)| s.gradient.is_some()));
    }

    #[test]
    fn memory_overhead_is_10x_er() {
        let model = ModelConfig::for_spec(&DatasetSpec::core50());
        let gss = Gss::new(&model, GssConfig::new(100), 3);
        assert!(
            (gss.memory_overhead_mb() - 48.8).abs() < 1.5,
            "{}",
            gss.memory_overhead_mb()
        );
    }

    #[test]
    fn gradient_computation_adds_head_passes() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 2);
        let model = ModelConfig::for_spec(&spec);
        let mut gss = Gss::new(&model, GssConfig::new(30), 4);
        Trainer::new(StreamConfig::default()).run(&scenario, &mut gss, 4);
        let t = gss.trace();
        // Every input costs one extra fwd+bwd for its selection gradient.
        assert!(t.head_fwd_passes >= 2 * t.inputs);
    }

    #[test]
    fn similarity_of_identical_gradients_is_one() {
        let model = ModelConfig::for_spec(&DatasetSpec::core50_tiny());
        let mut gss = Gss::new(&model, GssConfig::new(5), 5);
        let g = vec![1.0, 2.0, 3.0];
        gss.offer(vec![0.0; 3], 0, g.clone());
        let sim = gss.max_similarity(&g);
        assert!((sim - 1.0).abs() < 1e-5, "{sim}");
    }
}
