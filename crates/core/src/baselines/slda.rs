//! Deep Streaming Linear Discriminant Analysis (Hayes & Kanan, 2020).

use std::cell::RefCell;

use chameleon_nn::FrozenExtractor;
use chameleon_stream::Batch;
use chameleon_tensor::{linalg, Matrix};

use crate::{ModelConfig, StepTrace, Strategy};

/// SLDA hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SldaConfig {
    /// Shrinkage `ε` blended into the covariance before inversion.
    pub shrinkage: f32,
}

impl Default for SldaConfig {
    fn default() -> Self {
        Self { shrinkage: 1e-2 }
    }
}

/// Streaming LDA: a non-parametric classifier over frozen latent features.
/// Maintains one running mean per class and a single shared covariance
/// matrix, both updated in one pass; classification uses
/// `w_c = Λ μ_c`, `b_c = −½ μ_cᵀ Λ μ_c` with `Λ = [(1−ε)Σ + εI]⁻¹`.
///
/// SLDA needs almost no memory (Table I: 1.2 MB) and no gradient updates,
/// but the covariance update runs per image and the `O(N³)` inverse is the
/// cost the paper's EdgeTPU experiment highlights (11.7× slower than
/// Chameleon per image) — both are counted in this implementation's trace.
#[derive(Debug)]
pub struct Slda {
    extractor: FrozenExtractor,
    config: SldaConfig,
    /// Per-class running mean of latent features.
    means: Matrix,
    counts: Vec<u64>,
    /// Shared running covariance (around the per-class means).
    covariance: Matrix,
    total: u64,
    /// Cached `Λ` (precision matrix), invalidated on every update.
    precision: RefCell<Option<Matrix>>,
    trace: RefCell<StepTrace>,
}

impl Slda {
    /// Creates an SLDA classifier.
    ///
    /// # Panics
    ///
    /// Panics if `shrinkage` is outside `[0, 1]`.
    pub fn new(model: &ModelConfig, config: SldaConfig, _seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.shrinkage),
            "shrinkage must be in [0,1]"
        );
        let d = model.latent_dim;
        Self {
            extractor: model.build_extractor(),
            config,
            means: Matrix::zeros(model.num_classes, d),
            counts: vec![0; model.num_classes],
            covariance: Matrix::zeros(d, d),
            total: 0,
            precision: RefCell::new(None),
            trace: RefCell::new(StepTrace::new()),
        }
    }

    /// Latent dimensionality.
    pub fn latent_dim(&self) -> usize {
        self.covariance.rows()
    }

    /// Samples observed so far.
    pub fn seen(&self) -> u64 {
        self.total
    }

    /// Streaming update with one latent/label pair (Hayes & Kanan Eq. 2-3):
    /// the covariance accumulates the outer product of the residual against
    /// the *pre-update* class mean, then the mean moves.
    fn update_one(&mut self, latent: &[f32], label: usize) {
        let count = self.counts[label];
        if self.total > 0 {
            let mean = self.means.row(label);
            let residual: Vec<f32> = latent.iter().zip(mean).map(|(&x, &m)| x - m).collect();
            // Σ_{t+1} = (t·Σ_t + Δ)/(t+1), Δ = rrᵀ·t_c/(t_c+1).
            let weight = count as f32 / (count + 1) as f32;
            let t = self.total as f32;
            self.covariance.scale(t / (t + 1.0));
            linalg::rank1_update(&mut self.covariance, weight / (t + 1.0), &residual);
        }
        // Running class mean.
        let mean = self.means.row_mut(label);
        let new_count = (count + 1) as f32;
        for (m, &x) in mean.iter_mut().zip(latent) {
            *m += (x - *m) / new_count;
        }
        self.counts[label] += 1;
        self.total += 1;
        *self.precision.borrow_mut() = None;
    }

    /// Recomputes (and caches) the precision matrix `Λ`.
    fn precision(&self) -> Matrix {
        if let Some(p) = self.precision.borrow().as_ref() {
            return p.clone();
        }
        let (inv, _macs) = linalg::invert_regularized(&self.covariance, self.config.shrinkage)
            .expect("shrinkage keeps the covariance invertible");
        {
            let mut t = self.trace.borrow_mut();
            t.matrix_inversions += 1;
            t.inversion_dim = self.covariance.rows();
        }
        *self.precision.borrow_mut() = Some(inv.clone());
        inv
    }
}

impl Strategy for Slda {
    fn name(&self) -> &str {
        "SLDA"
    }

    fn observe(&mut self, batch: &Batch) {
        {
            let mut t = self.trace.borrow_mut();
            t.inputs += batch.len() as u64;
            t.trunk_passes += batch.len() as u64;
            t.covariance_updates += batch.len() as u64;
            // The reference implementation refreshes Λ whenever it
            // classifies; the paper prices a pseudo-inverse per image.
            t.matrix_inversions += batch.len() as u64;
            t.inversion_dim = self.covariance.rows();
        }
        let latents = self.extractor.extract_batch(&batch.raw);
        for (row, &label) in latents.iter_rows().zip(&batch.labels) {
            self.update_one(row, label);
        }
    }

    fn logits(&self, raw: &Matrix) -> Matrix {
        let latents = self.extractor.extract_batch(raw);
        let precision = self.precision();
        // w_c = Λ μ_c (rows of W), b_c = −½ μ_c·w_c.
        let w = self.means.matmul_nt(&precision); // classes × d (Λ symmetric)
        let biases: Vec<f32> = (0..self.means.rows())
            .map(|c| -0.5 * chameleon_tensor::ops::dot(self.means.row(c), w.row(c)))
            .collect();
        let mut logits = latents.matmul_nt(&w);
        logits.add_row_broadcast(&biases);
        logits
    }

    fn memory_overhead_mb(&self) -> f64 {
        // Class means + shared covariance at the nominal 1024-d feature
        // width, fp16, as deployed by the paper (Table I: 1.2 MB).
        1.2
    }

    fn trace(&self) -> StepTrace {
        *self.trace.borrow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trainer;
    use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};

    #[test]
    fn slda_classifies_well_on_domain_il() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 0);
        let model = ModelConfig::for_spec(&spec);
        let mut s = Slda::new(&model, SldaConfig::default(), 1);
        let acc = Trainer::new(StreamConfig::default())
            .run(&scenario, &mut s, 1)
            .acc_all;
        // SLDA is strong with tiny memory in the paper; it should clearly
        // beat chance and naive finetuning here.
        assert!(acc > 40.0, "SLDA acc {acc}");
    }

    #[test]
    fn means_track_class_centroids() {
        let model = ModelConfig::for_spec(&DatasetSpec::core50_tiny());
        let mut s = Slda::new(&model, SldaConfig::default(), 2);
        let latent = vec![1.0; model.latent_dim];
        for _ in 0..4 {
            s.update_one(&latent, 3);
        }
        assert!(s.means.row(3).iter().all(|&m| (m - 1.0).abs() < 1e-5));
        assert_eq!(s.counts[3], 4);
        assert_eq!(s.seen(), 4);
    }

    #[test]
    fn covariance_stays_symmetric() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 1);
        let model = ModelConfig::for_spec(&spec);
        let mut s = Slda::new(&model, SldaConfig::default(), 3);
        let config = StreamConfig::default();
        for batch in scenario.domain_stream(0, &config, 3).take(10) {
            s.observe(&batch);
        }
        for r in 0..s.covariance.rows() {
            for c in 0..r {
                let diff = (s.covariance.get(r, c) - s.covariance.get(c, r)).abs();
                assert!(diff < 1e-4, "asymmetry at ({r},{c}): {diff}");
            }
        }
    }

    #[test]
    fn trace_counts_inversions_per_image() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 2);
        let model = ModelConfig::for_spec(&spec);
        let mut s = Slda::new(&model, SldaConfig::default(), 4);
        let config = StreamConfig::default();
        for batch in scenario.domain_stream(0, &config, 4).take(5) {
            s.observe(&batch);
        }
        let t = s.trace();
        assert_eq!(t.covariance_updates, t.inputs);
        assert!(t.matrix_inversions >= t.inputs);
        assert_eq!(t.inversion_dim, model.latent_dim);
        assert_eq!(t.head_bwd_passes, 0, "SLDA never backpropagates");
    }

    #[test]
    fn memory_overhead_matches_paper() {
        let model = ModelConfig::for_spec(&DatasetSpec::core50());
        let s = Slda::new(&model, SldaConfig::default(), 5);
        assert_eq!(s.memory_overhead_mb(), 1.2);
    }
}
