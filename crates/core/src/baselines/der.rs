//! Dark Experience Replay (Buzzega et al., 2020).

use chameleon_nn::loss;
use chameleon_replay::{ReservoirBuffer, StoredSample};
use chameleon_stream::Batch;
use chameleon_tensor::{Matrix, Prng};

use crate::baselines::{stack_rows, LearnerCore};
use crate::{ModelConfig, StepTrace, Strategy};

/// DER hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DerConfig {
    /// Buffer capacity in samples.
    pub capacity: usize,
    /// Weight `α` of the logit-MSE replay term.
    pub alpha: f32,
    /// Enables the DER++ variant (adds a cross-entropy term on the replayed
    /// labels with weight `beta`).
    pub plus_plus: bool,
    /// DER++ label-replay weight `β`.
    pub beta: f32,
}

impl DerConfig {
    /// Standard DER with the given buffer capacity.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            alpha: 0.1,
            plus_plus: false,
            beta: 0.5,
        }
    }

    /// DER++ with the given buffer capacity.
    pub fn plus_plus(capacity: usize) -> Self {
        Self {
            plus_plus: true,
            ..Self::new(capacity)
        }
    }
}

/// Dark Experience Replay: a reservoir buffer of raw inputs **plus the
/// network's logits at insertion time** ("dark knowledge"). Replay matches
/// current logits to the stored ones with an MSE term — self-distillation
/// across time.
///
/// Storage is raw + logits (49 KB nominal per sample; Table I: 4.9 MB per
/// 100), and replay re-extracts raw inputs like ER.
#[derive(Debug)]
pub struct Der {
    core: LearnerCore,
    buffer: ReservoirBuffer,
    config: DerConfig,
    replay_batch: usize,
    shapes: chameleon_stream::shapes::NominalShapes,
    rng: Prng,
    trace: StepTrace,
}

impl Der {
    /// Creates a DER learner.
    ///
    /// # Panics
    ///
    /// Panics if `config.capacity == 0` or a weight is negative.
    pub fn new(model: &ModelConfig, config: DerConfig, seed: u64) -> Self {
        assert!(
            config.alpha >= 0.0 && config.beta >= 0.0,
            "weights must be non-negative"
        );
        Self {
            core: LearnerCore::new(model, seed),
            buffer: ReservoirBuffer::new(config.capacity),
            config,
            replay_batch: 10,
            shapes: model.shapes,
            rng: Prng::new(seed ^ 0xDE4),
            trace: StepTrace::new(),
        }
    }

    /// Current buffer occupancy.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }
}

impl Strategy for Der {
    fn name(&self) -> &str {
        if self.config.plus_plus {
            "DER++"
        } else {
            "DER"
        }
    }

    fn observe(&mut self, batch: &Batch) {
        self.trace.inputs += batch.len() as u64;
        self.trace.trunk_passes += batch.len() as u64;

        let latents = self.core.extractor.extract_batch(&batch.raw);

        // --- current-task CE step, capturing logits for the buffer ---
        let fwd = self.core.head.forward(&latents);
        let (_, dlogits) = loss::softmax_cross_entropy(fwd.logits(), &batch.labels);
        let incoming_logits = fwd.logits().clone();
        self.trace.head_fwd_passes += batch.len() as u64;
        self.trace.head_bwd_passes += batch.len() as u64;

        let grads_current = self.core.head.backward(&fwd, &dlogits);

        // --- replay term: MSE to stored logits (+ optional CE, DER++) ---
        let replayed = self.buffer.sample_batch(self.replay_batch, &mut self.rng);
        let mut grads_total = grads_current;
        if !replayed.is_empty() {
            self.trace.offchip_raw_reads += replayed.len() as u64;
            self.trace.trunk_passes += replayed.len() as u64;
            let raw_rows: Vec<Vec<f32>> = replayed.iter().map(|s| s.features.clone()).collect();
            let replay_latents = self.core.extractor.extract_batch(&stack_rows(&raw_rows));
            let rfwd = self.core.head.forward(&replay_latents);
            self.trace.head_fwd_passes += replayed.len() as u64;
            self.trace.head_bwd_passes += replayed.len() as u64;

            let targets = Matrix::try_from_row_iter(
                replayed
                    .iter()
                    .map(|s| s.logits.as_deref().expect("DER stores logits")),
            )
            .expect("stored logits share width");
            let (_, mut dreplay) = loss::logit_mse(rfwd.logits(), &targets);
            dreplay.scale(self.config.alpha);
            if self.config.plus_plus {
                let labels: Vec<usize> = replayed.iter().map(|s| s.label).collect();
                let (_, mut dce) = loss::softmax_cross_entropy(rfwd.logits(), &labels);
                dce.scale(self.config.beta);
                dreplay.axpy(1.0, &dce);
            }
            let replay_grads = self.core.head.backward(&rfwd, &dreplay);
            grads_total.axpy(1.0, &replay_grads);
        }
        self.core.head.apply(&grads_total, &mut self.core.sgd);

        // Reservoir insertion: raw + the logits we just computed.
        for (i, &label) in batch.labels.iter().enumerate() {
            let sample = StoredSample::with_logits(
                batch.raw.row(i).to_vec(),
                label,
                incoming_logits.row(i).to_vec(),
            );
            if self.buffer.offer(sample, &mut self.rng) {
                self.trace.offchip_raw_writes += 1;
            }
        }
    }

    fn logits(&self, raw: &Matrix) -> Matrix {
        self.core.logits_raw(raw)
    }

    fn memory_overhead_mb(&self) -> f64 {
        self.shapes.raw_with_logits_mb(self.buffer.capacity())
    }

    fn trace(&self) -> StepTrace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trainer;
    use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};

    #[test]
    fn der_learns_well_above_chance() {
        // The tiny 4-domain scenario is too short to show much forgetting,
        // so we only assert that DER's combined CE+MSE objective learns;
        // the DER-vs-finetune ordering is exercised at full scale by the
        // Table I bench.
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 0);
        let model = ModelConfig::for_spec(&spec);
        let trainer = Trainer::new(StreamConfig::default());
        let mut der = Der::new(&model, DerConfig::new(60), 1);
        let der_acc = trainer.run(&scenario, &mut der, 1).acc_all;
        let chance = 100.0 / spec.num_classes as f32;
        assert!(der_acc > 2.0 * chance, "DER {der_acc} vs chance {chance}");
    }

    #[test]
    fn der_plus_plus_also_learns() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 1);
        let model = ModelConfig::for_spec(&spec);
        let mut derpp = Der::new(&model, DerConfig::plus_plus(60), 2);
        assert_eq!(derpp.name(), "DER++");
        let acc = Trainer::new(StreamConfig::default())
            .run(&scenario, &mut derpp, 2)
            .acc_all;
        assert!(acc > 20.0, "DER++ acc {acc}");
    }

    #[test]
    fn buffer_stores_logits() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 2);
        let model = ModelConfig::for_spec(&spec);
        let mut der = Der::new(&model, DerConfig::new(30), 3);
        let config = StreamConfig::default();
        for batch in scenario.domain_stream(0, &config, 3) {
            der.observe(&batch);
        }
        assert!(der.buffer_len() > 0);
        assert!(der.buffer.items().iter().all(|s| s
            .logits
            .as_ref()
            .is_some_and(|l| l.len() == spec.num_classes)));
    }

    #[test]
    fn memory_overhead_matches_table1() {
        let model = ModelConfig::for_spec(&DatasetSpec::core50());
        let der = Der::new(&model, DerConfig::new(100), 4);
        assert!(
            (der.memory_overhead_mb() - 4.9).abs() < 0.2,
            "{}",
            der.memory_overhead_mb()
        );
    }
}
