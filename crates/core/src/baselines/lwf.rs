//! Learning without Forgetting (Li & Hoiem, 2018).

use chameleon_nn::{loss, MlpHead};
use chameleon_stream::Batch;
use chameleon_tensor::Matrix;

use crate::baselines::LearnerCore;
use crate::{ModelConfig, StepTrace, Strategy};

/// LwF hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LwfConfig {
    /// Weight of the distillation term.
    pub lambda: f32,
    /// Distillation temperature.
    pub temperature: f32,
}

impl Default for LwfConfig {
    fn default() -> Self {
        Self {
            lambda: 1.0,
            temperature: 2.0,
        }
    }
}

/// Learning without Forgetting: at every domain boundary the current model
/// is frozen as a *teacher*; during the next domain, a distillation loss
/// keeps the student's outputs on new data close to the teacher's, as a
/// data-free proxy for rehearsing old domains.
///
/// Memory overhead is the teacher copy of the trainable tail (Table I:
/// 12.5 MB). Like EWC++, the paper finds it insufficient under strong
/// domain shift.
#[derive(Debug)]
pub struct Lwf {
    core: LearnerCore,
    teacher: Option<MlpHead>,
    config: LwfConfig,
    shapes: chameleon_stream::shapes::NominalShapes,
    trace: StepTrace,
}

impl Lwf {
    /// Creates an LwF learner.
    ///
    /// # Panics
    ///
    /// Panics if `lambda < 0` or `temperature <= 0`.
    pub fn new(model: &ModelConfig, config: LwfConfig, seed: u64) -> Self {
        assert!(config.lambda >= 0.0, "lambda must be non-negative");
        assert!(config.temperature > 0.0, "temperature must be positive");
        Self {
            core: LearnerCore::new(model, seed),
            teacher: None,
            config,
            shapes: model.shapes,
            trace: StepTrace::new(),
        }
    }

    /// Whether a teacher snapshot exists yet.
    pub fn has_teacher(&self) -> bool {
        self.teacher.is_some()
    }
}

impl Strategy for Lwf {
    fn name(&self) -> &str {
        "LwF"
    }

    fn begin_domain(&mut self, domain: usize) {
        if domain > 0 {
            // Snapshot the model trained on everything so far.
            self.teacher = Some(self.core.head.clone());
        }
    }

    fn observe(&mut self, batch: &Batch) {
        self.trace.inputs += batch.len() as u64;
        self.trace.trunk_passes += batch.len() as u64;
        self.trace.head_fwd_passes += batch.len() as u64;
        self.trace.head_bwd_passes += batch.len() as u64;

        let latents = self.core.extractor.extract_batch(&batch.raw);
        let fwd = self.core.head.forward(&latents);
        let (_, mut dlogits) = loss::softmax_cross_entropy(fwd.logits(), &batch.labels);

        if let Some(teacher) = &self.teacher {
            // Distill against the teacher's outputs on the *current* batch.
            let teacher_logits = teacher.logits(&latents);
            self.trace.head_fwd_passes += batch.len() as u64;
            let (_, mut dkd) =
                loss::distillation(fwd.logits(), &teacher_logits, self.config.temperature);
            dkd.scale(self.config.lambda);
            dlogits.axpy(1.0, &dkd);
        }
        let grads = self.core.head.backward(&fwd, &dlogits);
        self.core.head.apply(&grads, &mut self.core.sgd);
    }

    fn logits(&self, raw: &Matrix) -> Matrix {
        self.core.logits_raw(raw)
    }

    fn memory_overhead_mb(&self) -> f64 {
        // One teacher copy of the trainable tail (Table I: 12.5 MB).
        self.shapes.model_copy_mb(1)
    }

    fn trace(&self) -> StepTrace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trainer;
    use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};

    #[test]
    fn lwf_learns_above_chance() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 0);
        let model = ModelConfig::for_spec(&spec);
        let mut l = Lwf::new(&model, LwfConfig::default(), 1);
        let acc = Trainer::new(StreamConfig::default())
            .run(&scenario, &mut l, 1)
            .acc_all;
        assert!(acc > 100.0 / spec.num_classes as f32, "LwF acc {acc}");
    }

    #[test]
    fn teacher_appears_after_first_domain() {
        let model = ModelConfig::for_spec(&DatasetSpec::core50_tiny());
        let mut l = Lwf::new(&model, LwfConfig::default(), 2);
        l.begin_domain(0);
        assert!(!l.has_teacher());
        l.begin_domain(1);
        assert!(l.has_teacher());
    }

    #[test]
    fn distillation_restrains_drift() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 1);
        let model = ModelConfig::for_spec(&spec);
        let config = StreamConfig::default();

        // A small learning rate keeps the distilled dynamics stable so the
        // comparison isolates the teacher-anchoring effect.
        let model = model.with_learning_rate(0.01);
        let drift = |lambda: f32| {
            let mut l = Lwf::new(
                &model,
                LwfConfig {
                    lambda,
                    ..LwfConfig::default()
                },
                3,
            );
            // Train one domain, snapshot teacher, then measure drift over
            // the next domain.
            for batch in scenario.domain_stream(0, &config, 3) {
                l.observe(&batch);
            }
            l.begin_domain(1);
            let p0 = l.core.head.parameters();
            for batch in scenario.domain_stream(1, &config, 4).take(20) {
                l.observe(&batch);
            }
            let p1 = l.core.head.parameters();
            p0.iter()
                .zip(&p1)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt()
        };
        let free = drift(0.0);
        let distilled = drift(5.0);
        assert!(
            distilled < free,
            "distillation drift {distilled} vs free {free}"
        );
    }

    #[test]
    fn memory_overhead_matches_table1() {
        let model = ModelConfig::for_spec(&DatasetSpec::core50());
        let l = Lwf::new(&model, LwfConfig::default(), 4);
        assert!(
            (l.memory_overhead_mb() - 12.5).abs() < 0.5,
            "{}",
            l.memory_overhead_mb()
        );
    }
}
