//! Naive single-pass finetuning (Table I lower bound).

use chameleon_stream::Batch;
use chameleon_tensor::Matrix;

use crate::baselines::LearnerCore;
use crate::{ModelConfig, StepTrace, Strategy};

/// Single-epoch finetuning with no replay — the paper's lower bound.
///
/// Each batch is trained exactly once and immediately forgotten. On
/// CORe50-style abrupt domain shifts this collapses to near-chance `Acc_all`
/// (~15–17 % in the paper's Figure 2), which is the catastrophic-forgetting
/// failure mode every other method is trying to avoid.
#[derive(Debug)]
pub struct Finetune {
    core: LearnerCore,
    trace: StepTrace,
}

impl Finetune {
    /// Creates a finetuning learner.
    pub fn new(model: &ModelConfig, seed: u64) -> Self {
        Self {
            core: LearnerCore::new(model, seed),
            trace: StepTrace::new(),
        }
    }
}

impl Strategy for Finetune {
    fn name(&self) -> &str {
        "Finetuning"
    }

    fn observe(&mut self, batch: &Batch) {
        let latents = self.core.extractor.extract_batch(&batch.raw);
        self.core.train_ce(&latents, &batch.labels);
        self.trace.inputs += batch.len() as u64;
        self.trace.trunk_passes += batch.len() as u64;
        self.trace.head_fwd_passes += batch.len() as u64;
        self.trace.head_bwd_passes += batch.len() as u64;
    }

    fn logits(&self, raw: &Matrix) -> Matrix {
        self.core.logits_raw(raw)
    }

    fn memory_overhead_mb(&self) -> f64 {
        0.0
    }

    fn trace(&self) -> StepTrace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EvalReport, Trainer};
    use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};

    #[test]
    fn finetune_learns_a_single_domain() {
        // With only one domain there is nothing to forget: accuracy on that
        // domain should be well above chance.
        let mut spec = DatasetSpec::core50_tiny();
        spec.num_domains = 1;
        let scenario = DomainIlScenario::generate(&spec, 0);
        let model = ModelConfig::for_spec(&spec);
        let mut f = Finetune::new(&model, 1);
        let report = Trainer::new(StreamConfig::default()).run(&scenario, &mut f, 1);
        assert!(
            report.acc_all > 50.0,
            "single-domain acc {}",
            report.acc_all
        );
    }

    #[test]
    fn finetune_forgets_early_domains() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 1);
        let model = ModelConfig::for_spec(&spec);
        let mut f = Finetune::new(&model, 2);
        let report = Trainer::new(StreamConfig::default()).run(&scenario, &mut f, 2);
        let eval: &EvalReport = &report;
        // The last domain (just trained) should be far better than the
        // first (long forgotten).
        let first = eval.per_domain[0];
        let last = *eval.per_domain.last().expect("domains exist");
        assert!(
            last > first + 10.0,
            "expected recency effect, first {first} vs last {last}"
        );
    }

    #[test]
    fn trace_counts_match_stream() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 2);
        let model = ModelConfig::for_spec(&spec);
        let mut f = Finetune::new(&model, 3);
        Trainer::new(StreamConfig::default()).run(&scenario, &mut f, 3);
        let t = f.trace();
        assert_eq!(t.inputs as usize, spec.train_len());
        assert_eq!(t.head_fwd_passes, t.inputs);
        assert_eq!(t.offchip_latent_reads, 0);
    }
}
