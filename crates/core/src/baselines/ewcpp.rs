//! Online Elastic Weight Consolidation (EWC++, Chaudhry et al., 2018).

use chameleon_nn::{loss, FisherDiagonal};
use chameleon_stream::Batch;
use chameleon_tensor::Matrix;

use crate::baselines::LearnerCore;
use crate::{ModelConfig, StepTrace, Strategy};

/// EWC++ hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EwcConfig {
    /// Penalty strength `λ`.
    pub lambda: f32,
    /// EMA decay `γ` of the online Fisher estimate.
    pub fisher_decay: f32,
}

impl Default for EwcConfig {
    fn default() -> Self {
        // λ is capped well below the oscillation threshold of the penalized
        // dynamics (`lr·λ·F < 1` for typical Fisher magnitudes); larger
        // values diverge rather than consolidate.
        Self {
            lambda: 2.0,
            fisher_decay: 0.95,
        }
    }
}

/// EWC++: regularization-based continual learning. An online diagonal
/// Fisher-information estimate identifies parameters important to past
/// domains; a quadratic penalty anchors them.
///
/// Memory overhead is a full model copy (the anchor `θ*`) plus the Fisher
/// diagonal — Table I charges this at 13.0 MB. The paper finds EWC++
/// largely ineffective on Domain-IL streams (23 % on CORe50), because
/// constraining weights cannot substitute for rehearsing shifted data.
#[derive(Debug)]
pub struct EwcPlusPlus {
    core: LearnerCore,
    fisher: FisherDiagonal,
    config: EwcConfig,
    shapes: chameleon_stream::shapes::NominalShapes,
    trace: StepTrace,
}

impl EwcPlusPlus {
    /// Creates an EWC++ learner.
    ///
    /// # Panics
    ///
    /// Panics if `config.lambda < 0` or `fisher_decay` is outside `[0, 1)`.
    pub fn new(model: &ModelConfig, config: EwcConfig, seed: u64) -> Self {
        assert!(config.lambda >= 0.0, "lambda must be non-negative");
        let core = LearnerCore::new(model, seed);
        let dim = core.head.parameter_count();
        let mut fisher = FisherDiagonal::new(dim, config.fisher_decay);
        fisher.update_anchor(&core.head.parameters());
        Self {
            core,
            fisher,
            config,
            shapes: model.shapes,
            trace: StepTrace::new(),
        }
    }

    /// Current EWC penalty value at the live parameters.
    pub fn penalty(&self) -> f32 {
        self.fisher
            .penalty(&self.core.head.parameters(), self.config.lambda)
    }
}

impl Strategy for EwcPlusPlus {
    fn name(&self) -> &str {
        "EWC++"
    }

    fn observe(&mut self, batch: &Batch) {
        self.trace.inputs += batch.len() as u64;
        self.trace.trunk_passes += batch.len() as u64;
        self.trace.head_fwd_passes += batch.len() as u64;
        self.trace.head_bwd_passes += batch.len() as u64;

        let latents = self.core.extractor.extract_batch(&batch.raw);
        let fwd = self.core.head.forward(&latents);
        let (_, dlogits) = loss::softmax_cross_entropy(fwd.logits(), &batch.labels);
        let grads = self.core.head.backward(&fwd, &dlogits);

        // Online Fisher update from the task gradient.
        self.fisher.observe_gradient(&grads.to_flat());

        // Apply task gradient, then the quadratic anchor penalty directly
        // on the flat parameter vector (equivalent to adding λ·F⊙(θ−θ*) to
        // the gradient).
        self.core.head.apply(&grads, &mut self.core.sgd);
        let mut params = self.core.head.parameters();
        let pgrad = self.fisher.penalty_gradient(&params, self.config.lambda);
        let lr = self.core.sgd.learning_rate();
        for (p, g) in params.iter_mut().zip(&pgrad) {
            *p -= lr * g;
        }
        self.core.head.set_parameters(&params);
    }

    fn end_domain(&mut self, _domain: usize) {
        // Re-anchor at domain boundaries (EWC++'s moving consolidation).
        self.fisher.update_anchor(&self.core.head.parameters());
    }

    fn logits(&self, raw: &Matrix) -> Matrix {
        self.core.logits_raw(raw)
    }

    fn memory_overhead_mb(&self) -> f64 {
        // Anchor copy + Fisher terms; Table I reports 13.0 MB (the anchor
        // at fp32, the Fisher diagonal compressed).
        self.shapes.model_copy_mb(1) + 0.5
    }

    fn trace(&self) -> StepTrace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trainer;
    use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};

    #[test]
    fn ewc_learns_above_chance() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 0);
        let model = ModelConfig::for_spec(&spec);
        let mut e = EwcPlusPlus::new(&model, EwcConfig::default(), 1);
        let acc = Trainer::new(StreamConfig::default())
            .run(&scenario, &mut e, 1)
            .acc_all;
        assert!(acc > 100.0 / spec.num_classes as f32, "EWC++ acc {acc}");
    }

    #[test]
    fn penalty_grows_as_parameters_move() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 1);
        let model = ModelConfig::for_spec(&spec);
        let mut e = EwcPlusPlus::new(
            &model,
            EwcConfig {
                lambda: 1.0,
                fisher_decay: 0.5,
            },
            2,
        );
        assert_eq!(e.penalty(), 0.0);
        let config = StreamConfig::default();
        for batch in scenario.domain_stream(0, &config, 2).take(5) {
            e.observe(&batch);
        }
        assert!(e.penalty() > 0.0, "penalty should grow during training");
        // Re-anchoring zeroes the penalty.
        e.end_domain(0);
        assert!(e.penalty() < 1e-6);
    }

    #[test]
    fn strong_lambda_restrains_updates() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 2);
        let model = ModelConfig::for_spec(&spec);
        let config = StreamConfig::default();

        // A small learning rate keeps the penalized dynamics stable so the
        // comparison isolates the anchoring effect.
        let model = model.with_learning_rate(0.01);
        let run = |lambda: f32| {
            let mut e = EwcPlusPlus::new(
                &model,
                EwcConfig {
                    lambda,
                    fisher_decay: 0.9,
                },
                3,
            );
            let p0 = e.core.head.parameters();
            for batch in scenario.domain_stream(0, &config, 3).take(20) {
                e.observe(&batch);
            }
            let p1 = e.core.head.parameters();
            p0.iter()
                .zip(&p1)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt()
        };
        let free = run(0.0);
        let constrained = run(50.0);
        assert!(
            constrained < free,
            "strong penalty should shrink drift: {constrained} vs {free}"
        );
    }

    #[test]
    fn memory_overhead_matches_table1() {
        let model = ModelConfig::for_spec(&DatasetSpec::core50());
        let e = EwcPlusPlus::new(&model, EwcConfig::default(), 4);
        assert!(
            (e.memory_overhead_mb() - 13.0).abs() < 0.5,
            "{}",
            e.memory_overhead_mb()
        );
    }
}
