//! Baseline continual-learning strategies from Table I.
//!
//! Every method the paper compares against, implemented from scratch on the
//! same frozen-extractor + trainable-head substrate as Chameleon:
//!
//! | Strategy | Family | Paper citation |
//! |---|---|---|
//! | [`Finetune`] | lower bound | — |
//! | [`Joint`] | upper bound (multi-epoch) | — |
//! | [`EwcPlusPlus`] | regularization | Chaudhry et al., 2018 |
//! | [`Lwf`] | regularization (distillation) | Li & Hoiem, 2018 |
//! | [`Slda`] | streaming classifier | Hayes & Kanan, 2020 |
//! | [`Gss`] | replay (gradient selection) | Aljundi et al., 2019 |
//! | [`Er`] | replay (raw) | Chaudhry et al., 2019 |
//! | [`Der`] | replay (raw + logits) | Buzzega et al., 2020 |
//! | [`LatentReplay`] | replay (latent) | Pellegrini et al., 2020 |

mod der;
mod er;
mod ewcpp;
mod finetune;
mod gss;
mod joint;
mod latent;
mod lwf;
mod slda;

pub use der::{Der, DerConfig};
pub use er::Er;
pub use ewcpp::{EwcConfig, EwcPlusPlus};
pub use finetune::Finetune;
pub use gss::{Gss, GssConfig};
pub use joint::{Joint, JointConfig};
pub use latent::LatentReplay;
pub use lwf::{Lwf, LwfConfig};
pub use slda::{Slda, SldaConfig};

use chameleon_nn::{loss, FrozenExtractor, MlpHead, Sgd};
use chameleon_tensor::Matrix;

use crate::ModelConfig;

/// Shared substrate of the gradient-based strategies: the frozen extractor,
/// the trainable head, and its optimizer.
#[derive(Debug)]
pub(crate) struct LearnerCore {
    pub extractor: FrozenExtractor,
    pub head: MlpHead,
    pub sgd: Sgd,
}

impl LearnerCore {
    pub fn new(model: &ModelConfig, seed: u64) -> Self {
        Self {
            extractor: model.build_extractor(),
            head: model.build_head(seed),
            sgd: model.build_sgd(),
        }
    }

    /// One cross-entropy SGD step on latent rows; returns the logits.
    pub fn train_ce(&mut self, latents: &Matrix, labels: &[usize]) -> Matrix {
        let fwd = self.head.forward(latents);
        let (_, dlogits) = loss::softmax_cross_entropy(fwd.logits(), labels);
        let grads = self.head.backward(&fwd, &dlogits);
        self.head.apply(&grads, &mut self.sgd);
        fwd.logits().clone()
    }

    /// Inference on raw inputs.
    pub fn logits_raw(&self, raw: &Matrix) -> Matrix {
        self.head.logits(&self.extractor.extract_batch(raw))
    }
}

/// Stacks owned latent rows into a matrix.
///
/// # Panics
///
/// Panics if rows are empty or ragged.
pub(crate) fn stack_rows(rows: &[Vec<f32>]) -> Matrix {
    Matrix::try_from_row_iter(rows.iter().map(Vec::as_slice))
        .expect("latent rows share dimensionality")
}
