//! Latent Replay (Pellegrini et al., 2020).

use chameleon_replay::{ReservoirBuffer, StorePlacement, StoredSample};
use chameleon_stream::Batch;
use chameleon_tensor::{Matrix, Prng};

use crate::baselines::{stack_rows, LearnerCore};
use crate::{ModelConfig, StepTrace, Strategy};

/// Latent Replay: a single reservoir buffer of **latent activations** from
/// the frozen trunk's output, replayed directly into the trainable head.
///
/// Compared with ER this (a) stores 32 KB instead of 48 KB per sample and
/// (b) skips re-extraction on replay — but the paper's hardware analysis
/// shows its single large buffer still lives off-chip, so every replayed
/// activation crosses the DRAM interface (44 % of FPGA latency). Chameleon's
/// dual-buffer design exists precisely to remove that traffic.
#[derive(Debug)]
pub struct LatentReplay {
    core: LearnerCore,
    buffer: ReservoirBuffer,
    replay_batch: usize,
    shapes: chameleon_stream::shapes::NominalShapes,
    rng: Prng,
    trace: StepTrace,
}

impl LatentReplay {
    /// Creates a latent-replay learner with a buffer of `capacity` latents.
    pub fn new(model: &ModelConfig, capacity: usize, seed: u64) -> Self {
        Self {
            core: LearnerCore::new(model, seed),
            buffer: ReservoirBuffer::new(capacity),
            replay_batch: 10,
            shapes: model.shapes,
            rng: Prng::new(seed ^ 0x1A7E),
            trace: StepTrace::new(),
        }
    }

    /// Current buffer occupancy.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Replay mini-batch size per incoming batch (paper's FPGA experiment
    /// uses ten replay elements per input).
    pub fn replay_batch(&self) -> usize {
        self.replay_batch
    }
}

impl Strategy for LatentReplay {
    fn name(&self) -> &str {
        "Latent Replay"
    }

    fn observe(&mut self, batch: &Batch) {
        self.trace.inputs += batch.len() as u64;
        self.trace.trunk_passes += batch.len() as u64;

        let latents = self.core.extractor.extract_batch(&batch.raw);

        // Replay latents straight from the (off-chip) buffer — no trunk.
        let replayed = self.buffer.sample_batch(self.replay_batch, &mut self.rng);
        self.trace.offchip_latent_reads += replayed.len() as u64;

        let mut rows: Vec<Vec<f32>> = latents.iter_rows().map(<[f32]>::to_vec).collect();
        let mut labels = batch.labels.clone();
        for s in &replayed {
            rows.push(s.features.clone());
            labels.push(s.label);
        }
        let x = stack_rows(&rows);
        self.core.train_ce(&x, &labels);
        self.trace.head_fwd_passes += labels.len() as u64;
        self.trace.head_bwd_passes += labels.len() as u64;

        // Reservoir insertion of incoming latents.
        for (row, &label) in latents.iter_rows().zip(&batch.labels) {
            if self
                .buffer
                .offer(StoredSample::latent(row.to_vec(), label), &mut self.rng)
            {
                self.trace.offchip_latent_writes += 1;
            }
        }
    }

    fn logits(&self, raw: &Matrix) -> Matrix {
        self.core.logits_raw(raw)
    }

    fn memory_overhead_mb(&self) -> f64 {
        self.shapes.latent_mb(self.buffer.capacity())
    }

    fn trace(&self) -> StepTrace {
        self.trace
    }

    fn visit_stores(&mut self, visit: &mut dyn FnMut(StorePlacement, &mut StoredSample)) {
        // The single large latent buffer lives off-chip (paper §IV).
        for s in self.buffer.samples_mut() {
            visit(StorePlacement::OffChipDram, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trainer;
    use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};

    #[test]
    fn latent_replay_beats_finetune() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 0);
        let model = ModelConfig::for_spec(&spec);
        let trainer = Trainer::new(StreamConfig::default());
        let mut lr = LatentReplay::new(&model, 60, 1);
        let lr_acc = trainer.run(&scenario, &mut lr, 1).acc_all;
        let mut ft = crate::Finetune::new(&model, 1);
        let ft_acc = trainer.run(&scenario, &mut ft, 1).acc_all;
        assert!(lr_acc > ft_acc + 5.0, "LR {lr_acc} vs finetune {ft_acc}");
    }

    #[test]
    fn memory_overhead_matches_table1() {
        let model = ModelConfig::for_spec(&DatasetSpec::core50());
        for (cap, mb) in [(100usize, 3.2f64), (200, 6.4), (500, 16.0), (1500, 48.0)] {
            let lr = LatentReplay::new(&model, cap, 0);
            assert!(
                (lr.memory_overhead_mb() - mb).abs() < mb * 0.05,
                "cap {cap}: {} vs paper {mb}",
                lr.memory_overhead_mb()
            );
        }
    }

    #[test]
    fn no_trunk_passes_for_replay() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 1);
        let model = ModelConfig::for_spec(&spec);
        let mut lr = LatentReplay::new(&model, 40, 2);
        Trainer::new(StreamConfig::default()).run(&scenario, &mut lr, 2);
        let t = lr.trace();
        // Latent replay never re-extracts: trunk passes equal stream inputs.
        assert_eq!(t.trunk_passes, t.inputs);
        assert!(t.offchip_latent_reads > 0);
        assert_eq!(t.offchip_raw_reads, 0);
        assert_eq!(t.onchip_sample_reads, 0, "single buffer is all off-chip");
    }

    #[test]
    fn larger_buffers_do_not_hurt() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 3);
        let model = ModelConfig::for_spec(&spec);
        let trainer = Trainer::new(StreamConfig::default());
        let mut small = LatentReplay::new(&model, 10, 5);
        let small_acc = trainer.run(&scenario, &mut small, 5).acc_all;
        let mut large = LatentReplay::new(&model, 200, 5);
        let large_acc = trainer.run(&scenario, &mut large, 5).acc_all;
        assert!(
            large_acc + 8.0 > small_acc,
            "large buffer {large_acc} much worse than small {small_acc}"
        );
    }
}
