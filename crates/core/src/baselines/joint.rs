//! Joint multi-epoch training (Table I upper bound).

use chameleon_stream::Batch;
use chameleon_tensor::{Matrix, Prng};

use crate::baselines::{stack_rows, LearnerCore};
use crate::{ModelConfig, Strategy};

/// Configuration of the joint upper bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JointConfig {
    /// Training epochs over the accumulated dataset (paper: 4).
    pub epochs: usize,
    /// Mini-batch size for offline training.
    pub batch_size: usize,
}

impl Default for JointConfig {
    fn default() -> Self {
        Self {
            epochs: 4,
            batch_size: 32,
        }
    }
}

/// The traditional offline upper bound: accumulate the entire stream, then
/// train for several epochs with shuffled mini-batches.
///
/// This is *not* a continual learner — it violates both the single-pass and
/// the bounded-memory constraints — but bounds what any online method could
/// hope to reach (Table I's JOINT row).
#[derive(Debug)]
pub struct Joint {
    core: LearnerCore,
    config: JointConfig,
    latents: Vec<Vec<f32>>,
    labels: Vec<usize>,
    rng: Prng,
}

impl Joint {
    /// Creates the joint learner.
    ///
    /// # Panics
    ///
    /// Panics if `config.epochs == 0` or `config.batch_size == 0`.
    pub fn new(model: &ModelConfig, config: JointConfig, seed: u64) -> Self {
        assert!(config.epochs > 0, "epochs must be positive");
        assert!(config.batch_size > 0, "batch size must be positive");
        Self {
            core: LearnerCore::new(model, seed),
            config,
            latents: Vec::new(),
            labels: Vec::new(),
            rng: Prng::new(seed ^ 0x101A7),
        }
    }

    /// Number of samples accumulated so far.
    pub fn stored(&self) -> usize {
        self.labels.len()
    }
}

impl Strategy for Joint {
    fn name(&self) -> &str {
        "JOINT"
    }

    fn observe(&mut self, batch: &Batch) {
        // Offline paradigm: just accumulate; all training happens at
        // finalize time.
        let latents = self.core.extractor.extract_batch(&batch.raw);
        for (row, &label) in latents.iter_rows().zip(&batch.labels) {
            self.latents.push(row.to_vec());
            self.labels.push(label);
        }
    }

    fn finalize(&mut self) {
        if self.labels.is_empty() {
            return;
        }
        let n = self.labels.len();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..self.config.epochs {
            self.rng.shuffle(&mut order);
            for chunk in order.chunks(self.config.batch_size) {
                let rows: Vec<Vec<f32>> = chunk.iter().map(|&i| self.latents[i].clone()).collect();
                let labels: Vec<usize> = chunk.iter().map(|&i| self.labels[i]).collect();
                let x = stack_rows(&rows);
                self.core.train_ce(&x, &labels);
            }
        }
    }

    fn logits(&self, raw: &Matrix) -> Matrix {
        self.core.logits_raw(raw)
    }

    fn memory_overhead_mb(&self) -> f64 {
        // The paper reports "—": joint training is outside the
        // memory-constrained regime entirely. We return the true unbounded
        // cost of what it stored so callers can see why it is infeasible.
        chameleon_stream::shapes::NominalShapes::for_classes(self.core.head.num_classes())
            .latent_mb(self.stored())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trainer;
    use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};

    #[test]
    fn joint_reaches_high_accuracy() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 0);
        let model = ModelConfig::for_spec(&spec);
        let mut j = Joint::new(&model, JointConfig::default(), 1);
        let report = Trainer::new(StreamConfig::default()).run(&scenario, &mut j, 1);
        assert!(report.acc_all > 60.0, "joint acc {}", report.acc_all);
    }

    #[test]
    fn joint_beats_finetune() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 1);
        let model = ModelConfig::for_spec(&spec);
        let trainer = Trainer::new(StreamConfig::default());
        let mut j = Joint::new(&model, JointConfig::default(), 2);
        let joint_acc = trainer.run(&scenario, &mut j, 2).acc_all;
        let mut f = crate::Finetune::new(&model, 2);
        let ft_acc = trainer.run(&scenario, &mut f, 2).acc_all;
        assert!(joint_acc > ft_acc, "joint {joint_acc} vs finetune {ft_acc}");
    }

    #[test]
    fn accumulates_entire_stream() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 2);
        let model = ModelConfig::for_spec(&spec);
        let mut j = Joint::new(&model, JointConfig::default(), 3);
        Trainer::new(StreamConfig::default()).run(&scenario, &mut j, 3);
        assert_eq!(j.stored(), spec.train_len());
        assert!(j.memory_overhead_mb() > 1.0);
    }

    #[test]
    fn finalize_without_data_is_harmless() {
        let model = ModelConfig::for_spec(&DatasetSpec::core50_tiny());
        let mut j = Joint::new(&model, JointConfig::default(), 4);
        j.finalize();
        assert_eq!(j.stored(), 0);
    }
}
