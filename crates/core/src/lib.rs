//! The Chameleon continual-learning framework and every baseline the paper
//! compares against.
//!
//! # Overview
//!
//! The paper's contribution (§III) is a dual-memory replay strategy:
//!
//! * a **short-term store** `M_s` (10 samples, on-chip) refreshed every
//!   batch by *user-aware, uncertainty-guided* sampling (Eqs. 2–4),
//! * a **long-term store** `M_l` (100–1500 samples, off-chip) refreshed
//!   every `h` batches by *class-prototype / KL-divergence* contrastive
//!   selection (Eqs. 5–6),
//!
//! both feeding latent-activation replay into a single-pass SGD learner
//! whose feature extractor is frozen.
//!
//! This crate implements [`Chameleon`] plus all baselines of Table I:
//! [`Finetune`], [`Joint`], [`EwcPlusPlus`], [`Lwf`], [`Slda`], [`Gss`],
//! [`Er`], [`Der`], and [`LatentReplay`] — behind one [`Strategy`] trait —
//! and the [`Trainer`] that runs the paper's Domain-IL protocol and reports
//! `Acc_all` (mean ± std over seeds).
//!
//! # Example
//!
//! ```
//! use chameleon_core::{Chameleon, ChameleonConfig, ModelConfig, Strategy, Trainer};
//! use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};
//!
//! let spec = DatasetSpec::core50_tiny();
//! let scenario = DomainIlScenario::generate(&spec, 1);
//! let model = ModelConfig::for_spec(&spec);
//! let mut strategy = Chameleon::new(&model, ChameleonConfig::default(), 7);
//! let report = Trainer::new(StreamConfig::default())
//!     .run(&scenario, &mut strategy, 7);
//! assert!(report.acc_all > 0.0 && report.acc_all <= 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod chameleon;
pub mod checkpoint;
mod metrics;
mod model;
mod prefs;
mod strategy;
mod trace;
mod trainer;

pub use baselines::{
    Der, DerConfig, Er, EwcConfig, EwcPlusPlus, Finetune, Gss, GssConfig, Joint, JointConfig,
    LatentReplay, Lwf, LwfConfig, Slda, SldaConfig,
};
pub use chameleon::{
    Chameleon, ChameleonConfig, ConfigError, LearnerCounters, LongTermPolicy, ResilienceReport,
    ShortTermPolicy,
};
pub use chameleon_replay::Precision;
pub use metrics::{backward_transfer, confusion_matrix, EvalReport};
pub use model::ModelConfig;
pub use prefs::PreferenceTracker;
pub use strategy::Strategy;
pub use trace::{PerInputTrace, StepTrace};
pub use trainer::{AggregateReport, Trainer};
