//! Checkpointing: save and restore a learner's state.
//!
//! On-device continual learning must survive power cycles: the trained
//! head and the replay stores *are* the accumulated knowledge, so both are
//! persisted. The format is a small self-describing little-endian binary
//! layout, written without external serialization dependencies:
//!
//! ```text
//! "CHAMLN02" | payload (sections, f32 samples)    | CRC32(payload)
//! "CHAMLN03" | precision tag | payload (packed samples) | CRC32(payload)
//! ```
//!
//! Version 3 exists only for quantized learners (`Precision::F16`/
//! `Int8`): its sample sections carry codec-packed latents (see
//! [`chameleon_replay::codec`]) behind a leading precision tag, cutting
//! the dominant section of the blob by 2–4x. A learner configured at
//! `Precision::F32` always writes the byte-identical v2 format, and a
//! quantized learner still *reads* v2 blobs (the migration path),
//! re-projecting their f32 samples onto the quantization grid.
//!
//! The CRC32 footer makes every flash/transfer corruption detectable at
//! load time; a blob cut short by power loss mid-write is reported as
//! [`LoadCheckpointError::Truncated`]. Stored samples additionally persist
//! their own integrity checksums, so replay-store corruption that happened
//! *before* a save is still quarantined after the restore.
//!
//! What is and is not persisted:
//!
//! * **persisted** — head parameters, short-term and long-term store
//!   contents (features + labels + integrity checksums), lifetime class
//!   counts,
//! * **reset on load** — RNG streams, optimizer momentum, learning-window
//!   progress: these are transient training state, and restarting them
//!   only perturbs the next few selections.

use std::io::{self, Read, Write};

use chameleon_replay::codec::{CodecError, Precision, MAX_PACKED_ELEMS};
use chameleon_replay::{crc32, StoredSample};

/// Magic bytes identifying a Chameleon checkpoint (format version 2).
pub const MAGIC: &[u8; 8] = b"CHAMLN02";

/// Magic of the version-3 format: codec-packed (quantized) samples.
pub const MAGIC_V3: &[u8; 8] = b"CHAMLN03";

/// Magic of the retired version-1 format (no integrity footer).
pub const LEGACY_MAGIC: &[u8; 8] = b"CHAMLN01";

/// Which envelope a checkpoint blob carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Version {
    /// `CHAMLN02` — f32 sample sections.
    V2,
    /// `CHAMLN03` — precision tag + codec-packed sample sections.
    V3,
}

/// Errors produced when decoding a checkpoint.
#[derive(Debug)]
pub enum LoadCheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// The stream is a checkpoint of a format version this build no longer
    /// reads.
    UnsupportedVersion,
    /// The stream ends before the declared contents (interrupted write).
    Truncated,
    /// The payload does not match its CRC32 footer (bit rot / transfer
    /// corruption).
    BadChecksum {
        /// CRC32 recomputed over the payload as read.
        found: u32,
        /// CRC32 recorded in the footer at save time.
        expected: u32,
    },
    /// A section's declared shape conflicts with the model configuration.
    ShapeMismatch {
        /// What was being decoded.
        what: &'static str,
        /// Length found in the stream.
        found: usize,
        /// Length required by the configuration.
        expected: usize,
    },
    /// A packed (quantized) latent section failed to decode.
    LatentCodec(CodecError),
}

impl std::fmt::Display for LoadCheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            Self::BadMagic => write!(f, "not a chameleon checkpoint (bad magic)"),
            Self::UnsupportedVersion => {
                write!(f, "checkpoint format version is no longer supported")
            }
            Self::Truncated => write!(f, "checkpoint is truncated"),
            Self::BadChecksum { found, expected } => write!(
                f,
                "checkpoint is corrupted: crc32 {found:#010x}, footer says {expected:#010x}"
            ),
            Self::ShapeMismatch {
                what,
                found,
                expected,
            } => write!(
                f,
                "checkpoint {what} has length {found}, model expects {expected}"
            ),
            Self::LatentCodec(e) => write!(f, "checkpoint packed latent: {e}"),
        }
    }
}

impl std::error::Error for LoadCheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadCheckpointError {
    fn from(e: io::Error) -> Self {
        // Running out of bytes mid-decode means the blob was cut short;
        // everything else is a real I/O failure.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            Self::Truncated
        } else {
            Self::Io(e)
        }
    }
}

/// Wraps a serialized payload in the v2 envelope: magic + payload + CRC32.
pub(crate) fn seal(payload: &[u8]) -> Vec<u8> {
    seal_as(MAGIC, payload)
}

/// Wraps a serialized payload in the given envelope magic + CRC32.
pub(crate) fn seal_as(magic: &[u8; 8], payload: &[u8]) -> Vec<u8> {
    let mut blob = Vec::with_capacity(payload.len() + 12);
    blob.extend_from_slice(magic);
    blob.extend_from_slice(payload);
    blob.extend_from_slice(&crc32(payload).to_le_bytes());
    blob
}

/// Verifies the envelope of `blob`, returning the payload slice and
/// which format version the magic named.
pub(crate) fn open(blob: &[u8]) -> Result<(&[u8], Version), LoadCheckpointError> {
    if blob.len() < MAGIC.len() {
        return Err(LoadCheckpointError::Truncated);
    }
    let magic = &blob[..MAGIC.len()];
    if magic == LEGACY_MAGIC {
        return Err(LoadCheckpointError::UnsupportedVersion);
    }
    let version = if magic == MAGIC {
        Version::V2
    } else if magic == MAGIC_V3 {
        Version::V3
    } else {
        return Err(LoadCheckpointError::BadMagic);
    };
    if blob.len() < MAGIC.len() + 4 {
        return Err(LoadCheckpointError::Truncated);
    }
    let payload = &blob[MAGIC.len()..blob.len() - 4];
    let footer = &blob[blob.len() - 4..];
    let expected = u32::from_le_bytes(footer.try_into().expect("footer is 4 bytes"));
    let found = crc32(payload);
    if found != expected {
        return Err(LoadCheckpointError::BadChecksum { found, expected });
    }
    Ok((payload, version))
}

/// Reads the latent precision a checkpoint blob was written at, without
/// decoding its payload. A v2 (`CHAMLN02`) blob is always f32; a v3
/// (`CHAMLN03`) blob leads its payload with the codec precision tag.
/// Callers that load a checkpoint into a freshly-built config (the CLI's
/// `evaluate --load`) use this to match the grid the samples live on —
/// a v3 blob refuses to load under any other precision.
///
/// # Errors
///
/// The same envelope errors as a full load: bad magic, truncation, CRC32
/// mismatch, or an undefined precision tag.
pub fn stored_precision(blob: &[u8]) -> Result<Precision, LoadCheckpointError> {
    let (payload, version) = open(blob)?;
    match version {
        Version::V2 => Ok(Precision::F32),
        Version::V3 => {
            let mut r = payload;
            let tag = read_u32(&mut r)?;
            u8::try_from(tag)
                .ok()
                .and_then(Precision::from_tag)
                .ok_or(LoadCheckpointError::UnsupportedVersion)
        }
    }
}

pub(crate) fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

pub(crate) fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

pub(crate) fn write_f32_slice(w: &mut impl Write, values: &[f32]) -> io::Result<()> {
    write_u32(w, values.len() as u32)?;
    for &v in values {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

pub(crate) fn read_f32_vec(r: &mut impl Read) -> io::Result<Vec<f32>> {
    let len = read_u32(r)? as usize;
    let mut out = Vec::with_capacity(len.min(1 << 24));
    let mut buf = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut buf)?;
        out.push(f32::from_le_bytes(buf));
    }
    Ok(out)
}

pub(crate) fn write_samples(w: &mut impl Write, samples: &[StoredSample]) -> io::Result<()> {
    write_u32(w, samples.len() as u32)?;
    for s in samples {
        write_u32(w, s.label as u32)?;
        write_f32_slice(w, &s.features)?;
        // The checksum recorded at insertion time, not a fresh one: a
        // sample corrupted in memory before the save stays detectable.
        write_u32(w, s.checksum())?;
    }
    Ok(())
}

pub(crate) fn read_samples(r: &mut impl Read) -> io::Result<Vec<StoredSample>> {
    let count = read_u32(r)? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let label = read_u32(r)? as usize;
        let features = read_f32_vec(r)?;
        let checksum = read_u32(r)?;
        out.push(StoredSample::from_parts(
            features, label, None, None, checksum,
        ));
    }
    Ok(out)
}

/// Largest packed-latent blob a v3 sample record may declare: the codec
/// cap at its widest (f32) encoding. Checked before allocation.
const MAX_PACKED_BLOB: usize = 13 + 4 * MAX_PACKED_ELEMS;

/// Writes a sample section with codec-packed latents (v3). An intact
/// sample serializes its insertion-time packed bytes verbatim; a
/// corrupted one is re-encoded from its damaged floats so the recorded
/// checksum still flags it after a restore (see
/// [`StoredSample::packed_for_write`]).
pub(crate) fn write_packed_samples(
    w: &mut impl Write,
    samples: &[StoredSample],
    precision: Precision,
) -> io::Result<()> {
    write_u32(w, samples.len() as u32)?;
    for s in samples {
        write_u32(w, s.label as u32)?;
        let blob = s.packed_for_write(precision);
        write_u32(w, blob.len() as u32)?;
        w.write_all(&blob)?;
        // The checksum recorded at insertion time, not a fresh one: a
        // sample corrupted in memory before the save stays detectable.
        write_u32(w, s.checksum())?;
    }
    Ok(())
}

/// Reads a v3 packed sample section, decoding latents through the codec
/// (the fused dequantize-on-read path for restored replay stores).
pub(crate) fn read_packed_samples(
    r: &mut impl Read,
) -> Result<Vec<StoredSample>, LoadCheckpointError> {
    let count = read_u32(r)? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let label = read_u32(r)? as usize;
        let len = read_u32(r)? as usize;
        if len > MAX_PACKED_BLOB {
            return Err(LoadCheckpointError::LatentCodec(CodecError::Oversized(len)));
        }
        let mut blob = vec![0u8; len];
        r.read_exact(&mut blob)?;
        let checksum = read_u32(r)?;
        out.push(
            StoredSample::from_packed_parts(blob, label, checksum)
                .map_err(LoadCheckpointError::LatentCodec)?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 0xDEAD_BEEF).expect("write");
        write_u64(&mut buf, 0x0123_4567_89AB_CDEF).expect("write");
        write_f32_slice(&mut buf, &[1.5, -2.25, 0.0]).expect("write");
        let mut r = buf.as_slice();
        assert_eq!(read_u32(&mut r).expect("read"), 0xDEAD_BEEF);
        assert_eq!(read_u64(&mut r).expect("read"), 0x0123_4567_89AB_CDEF);
        assert_eq!(read_f32_vec(&mut r).expect("read"), vec![1.5, -2.25, 0.0]);
    }

    #[test]
    fn samples_roundtrip_with_integrity() {
        let samples = vec![
            StoredSample::latent(vec![1.0, 2.0], 3),
            StoredSample::latent(vec![-0.5], 7),
        ];
        let mut buf = Vec::new();
        write_samples(&mut buf, &samples).expect("write");
        let back = read_samples(&mut buf.as_slice()).expect("read");
        assert_eq!(back, samples);
        assert!(back.iter().all(StoredSample::integrity_ok));
    }

    #[test]
    fn corrupted_samples_stay_detectable_across_roundtrip() {
        let mut s = StoredSample::latent(vec![1.0, 2.0], 0);
        s.features[0] = 9.0; // upset before the save; no reseal
        let mut buf = Vec::new();
        write_samples(&mut buf, &[s]).expect("write");
        let back = read_samples(&mut buf.as_slice()).expect("read");
        assert!(!back[0].integrity_ok());
    }

    #[test]
    fn truncated_stream_errors() {
        let mut buf = Vec::new();
        write_f32_slice(&mut buf, &[1.0, 2.0, 3.0]).expect("write");
        buf.truncate(buf.len() - 2);
        assert!(read_f32_vec(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn seal_open_roundtrip() {
        let payload = b"section data".to_vec();
        let blob = seal(&payload);
        assert_eq!(
            open(&blob).expect("valid"),
            (payload.as_slice(), Version::V2)
        );
        let v3 = seal_as(MAGIC_V3, &payload);
        assert_eq!(open(&v3).expect("valid"), (payload.as_slice(), Version::V3));
    }

    #[test]
    fn packed_samples_roundtrip_with_integrity() {
        let wide = |offset: f32| (0..64).map(|i| (i as f32) * 0.31 + offset).collect();
        let samples = vec![
            StoredSample::latent_quantized(wide(0.2), 3, Precision::Int8),
            StoredSample::latent_quantized(wide(-4.5), 7, Precision::Int8),
        ];
        let mut buf = Vec::new();
        write_packed_samples(&mut buf, &samples, Precision::Int8).expect("write");
        assert!(
            buf.len() < {
                let mut f32_buf = Vec::new();
                write_samples(&mut f32_buf, &samples).expect("write");
                f32_buf.len()
            },
            "packed section must be smaller than the f32 section"
        );
        let back = read_packed_samples(&mut buf.as_slice()).expect("read");
        assert_eq!(back, samples);
        assert!(back.iter().all(StoredSample::integrity_ok));
    }

    #[test]
    fn corrupted_packed_samples_stay_detectable_across_roundtrip() {
        let mut s = StoredSample::latent_quantized(vec![1.0, 2.0], 0, Precision::F16);
        s.features[0] = 9.0; // upset before the save; no reseal
        let mut buf = Vec::new();
        write_packed_samples(&mut buf, &[s], Precision::F16).expect("write");
        let back = read_packed_samples(&mut buf.as_slice()).expect("read");
        assert!(!back[0].integrity_ok());
    }

    #[test]
    fn packed_section_rejects_oversized_and_garbage_blobs() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 1).expect("count");
        write_u32(&mut buf, 0).expect("label");
        write_u32(&mut buf, u32::MAX).expect("blob len");
        assert!(matches!(
            read_packed_samples(&mut buf.as_slice()),
            Err(LoadCheckpointError::LatentCodec(CodecError::Oversized(_)))
        ));
        let mut garbage = Vec::new();
        write_u32(&mut garbage, 1).expect("count");
        write_u32(&mut garbage, 0).expect("label");
        write_u32(&mut garbage, 3).expect("blob len");
        garbage.extend_from_slice(&[0xFF, 0xFF, 0xFF]);
        write_u32(&mut garbage, 0).expect("checksum");
        assert!(matches!(
            read_packed_samples(&mut garbage.as_slice()),
            Err(LoadCheckpointError::LatentCodec(_))
        ));
    }

    #[test]
    fn open_rejects_every_single_byte_corruption() {
        let blob = seal(b"0123456789abcdef");
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 0x40;
            assert!(open(&bad).is_err(), "corruption at byte {i} accepted");
        }
    }

    #[test]
    fn open_rejects_every_truncation() {
        let blob = seal(&[7u8; 40]);
        for keep in 0..blob.len() {
            let err = open(&blob[..keep]).expect_err("truncated blob accepted");
            assert!(
                matches!(
                    err,
                    LoadCheckpointError::Truncated | LoadCheckpointError::BadChecksum { .. }
                ),
                "unexpected error at {keep}: {err}"
            );
        }
    }

    #[test]
    fn open_identifies_legacy_version() {
        let mut blob = seal(b"payload");
        blob[..8].copy_from_slice(LEGACY_MAGIC);
        assert!(matches!(
            open(&blob),
            Err(LoadCheckpointError::UnsupportedVersion)
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = LoadCheckpointError::ShapeMismatch {
            what: "head",
            found: 3,
            expected: 5,
        };
        assert!(e.to_string().contains("head"));
        assert!(LoadCheckpointError::BadMagic.to_string().contains("magic"));
        assert!(LoadCheckpointError::Truncated
            .to_string()
            .contains("truncated"));
        let c = LoadCheckpointError::BadChecksum {
            found: 1,
            expected: 2,
        };
        assert!(c.to_string().contains("corrupted"));
    }
}
