//! Checkpointing: save and restore a learner's state.
//!
//! On-device continual learning must survive power cycles: the trained
//! head and the replay stores *are* the accumulated knowledge, so both are
//! persisted. The format is a small self-describing little-endian binary
//! layout (magic + version + sections), written without external
//! serialization dependencies.
//!
//! What is and is not persisted:
//!
//! * **persisted** — head parameters, short-term and long-term store
//!   contents (features + labels), lifetime class counts,
//! * **reset on load** — RNG streams, optimizer momentum, learning-window
//!   progress: these are transient training state, and restarting them
//!   only perturbs the next few selections.

use std::io::{self, Read, Write};

use chameleon_replay::StoredSample;

/// Magic bytes identifying a Chameleon checkpoint.
pub const MAGIC: &[u8; 8] = b"CHAMLN01";

/// Errors produced when decoding a checkpoint.
#[derive(Debug)]
pub enum LoadCheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// A section's declared shape conflicts with the model configuration.
    ShapeMismatch {
        /// What was being decoded.
        what: &'static str,
        /// Length found in the stream.
        found: usize,
        /// Length required by the configuration.
        expected: usize,
    },
}

impl std::fmt::Display for LoadCheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            Self::BadMagic => write!(f, "not a chameleon checkpoint (bad magic)"),
            Self::ShapeMismatch {
                what,
                found,
                expected,
            } => write!(
                f,
                "checkpoint {what} has length {found}, model expects {expected}"
            ),
        }
    }
}

impl std::error::Error for LoadCheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadCheckpointError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

pub(crate) fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

pub(crate) fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

pub(crate) fn write_f32_slice(w: &mut impl Write, values: &[f32]) -> io::Result<()> {
    write_u32(w, values.len() as u32)?;
    for &v in values {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

pub(crate) fn read_f32_vec(r: &mut impl Read) -> io::Result<Vec<f32>> {
    let len = read_u32(r)? as usize;
    let mut out = Vec::with_capacity(len.min(1 << 24));
    let mut buf = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut buf)?;
        out.push(f32::from_le_bytes(buf));
    }
    Ok(out)
}

pub(crate) fn write_samples(w: &mut impl Write, samples: &[StoredSample]) -> io::Result<()> {
    write_u32(w, samples.len() as u32)?;
    for s in samples {
        write_u32(w, s.label as u32)?;
        write_f32_slice(w, &s.features)?;
    }
    Ok(())
}

pub(crate) fn read_samples(r: &mut impl Read) -> io::Result<Vec<StoredSample>> {
    let count = read_u32(r)? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let label = read_u32(r)? as usize;
        let features = read_f32_vec(r)?;
        out.push(StoredSample::latent(features, label));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 0xDEAD_BEEF).expect("write");
        write_u64(&mut buf, 0x0123_4567_89AB_CDEF).expect("write");
        write_f32_slice(&mut buf, &[1.5, -2.25, 0.0]).expect("write");
        let mut r = buf.as_slice();
        assert_eq!(read_u32(&mut r).expect("read"), 0xDEAD_BEEF);
        assert_eq!(read_u64(&mut r).expect("read"), 0x0123_4567_89AB_CDEF);
        assert_eq!(read_f32_vec(&mut r).expect("read"), vec![1.5, -2.25, 0.0]);
    }

    #[test]
    fn samples_roundtrip() {
        let samples = vec![
            StoredSample::latent(vec![1.0, 2.0], 3),
            StoredSample::latent(vec![-0.5], 7),
        ];
        let mut buf = Vec::new();
        write_samples(&mut buf, &samples).expect("write");
        let back = read_samples(&mut buf.as_slice()).expect("read");
        assert_eq!(back, samples);
    }

    #[test]
    fn truncated_stream_errors() {
        let mut buf = Vec::new();
        write_f32_slice(&mut buf, &[1.0, 2.0, 3.0]).expect("write");
        buf.truncate(buf.len() - 2);
        assert!(read_f32_vec(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let e = LoadCheckpointError::ShapeMismatch {
            what: "head",
            found: 3,
            expected: 5,
        };
        assert!(e.to_string().contains("head"));
        assert!(LoadCheckpointError::BadMagic.to_string().contains("magic"));
    }
}
