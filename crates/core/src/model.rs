//! Shared model configuration for all strategies.

use chameleon_nn::{FrozenExtractor, MlpHead, Sgd};
use chameleon_stream::shapes::NominalShapes;
use chameleon_stream::DatasetSpec;
use chameleon_tensor::Prng;

/// Architecture and optimizer settings shared by every strategy, mirroring
/// the paper's experimental setup (§IV-A): MobileNetV1 frozen up to layer
/// 21, SGD with lr = 0.001, batch size 10, single pass.
///
/// In the simulation the frozen trunk is a [`FrozenExtractor`] and the
/// trainable tail an [`MlpHead`]; nominal MobileNetV1 shapes are kept in
/// [`NominalShapes`] for memory/compute accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelConfig {
    /// Raw input dimensionality (must match the dataset spec).
    pub raw_dim: usize,
    /// Latent dimensionality produced by the frozen extractor.
    pub latent_dim: usize,
    /// Hidden widths of intermediate *frozen* extractor stages (empty =
    /// single-stage extractor). Together with `hidden` this moves the
    /// frozen/trainable boundary — the paper's latent-layer choice
    /// (§IV-A, layer 21 of 27).
    pub extractor_hidden: Vec<usize>,
    /// Hidden-layer widths of the trainable head (empty = linear head).
    pub hidden: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
    /// SGD learning rate (paper: 0.001; the synthetic task trains the small
    /// head with a proportionally larger rate).
    pub learning_rate: f32,
    /// L2 weight decay on the head. In the real system, forgetting is
    /// driven by representation drift inside the deep network; a frozen
    /// feature extractor plus convex head lacks that channel, so decay
    /// models the gradual erosion of unrehearsed evidence (see DESIGN.md,
    /// "Substitutions"). Replay counteracts it by re-presenting old data.
    pub weight_decay: f32,
    /// Nominal shapes used for memory accounting.
    pub shapes: NominalShapes,
}

impl ModelConfig {
    /// Builds the configuration matching a dataset specification.
    pub fn for_spec(spec: &DatasetSpec) -> Self {
        Self {
            raw_dim: spec.raw_dim,
            latent_dim: 64,
            extractor_hidden: Vec::new(),
            hidden: Vec::new(),
            num_classes: spec.num_classes,
            learning_rate: 0.3,
            weight_decay: 0.004,
            shapes: NominalShapes::for_classes(spec.num_classes),
        }
    }

    /// Builder: overrides the weight decay.
    ///
    /// # Panics
    ///
    /// Panics if `weight_decay < 0`.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = weight_decay;
        self
    }

    /// Builder: overrides the learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn with_learning_rate(mut self, lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        self.learning_rate = lr;
        self
    }

    /// Builder: overrides the latent dimension.
    ///
    /// # Panics
    ///
    /// Panics if `latent_dim == 0`.
    pub fn with_latent_dim(mut self, latent_dim: usize) -> Self {
        assert!(latent_dim > 0, "latent dim must be positive");
        self.latent_dim = latent_dim;
        self
    }

    /// Builder: uses a deeper trainable head.
    pub fn with_hidden(mut self, hidden: Vec<usize>) -> Self {
        self.hidden = hidden;
        self
    }

    /// Builder: inserts frozen intermediate extractor stages (moves the
    /// frozen/trainable cut deeper into the network).
    pub fn with_extractor_hidden(mut self, extractor_hidden: Vec<usize>) -> Self {
        self.extractor_hidden = extractor_hidden;
        self
    }

    /// Instantiates the frozen extractor. The extractor seed is decoupled
    /// from the run seed: the "pre-trained" trunk is the same across
    /// repetitions, as it is in the paper.
    pub fn build_extractor(&self) -> FrozenExtractor {
        let mut rng = Prng::new(0xF0_7A_E0);
        let mut dims = Vec::with_capacity(self.extractor_hidden.len() + 2);
        dims.push(self.raw_dim);
        dims.extend_from_slice(&self.extractor_hidden);
        dims.push(self.latent_dim);
        FrozenExtractor::deep(&dims, &mut rng)
    }

    /// Instantiates a fresh trainable head from a run seed.
    pub fn build_head(&self, seed: u64) -> MlpHead {
        let mut dims = Vec::with_capacity(self.hidden.len() + 2);
        dims.push(self.latent_dim);
        dims.extend_from_slice(&self.hidden);
        dims.push(self.num_classes);
        MlpHead::new(&dims, &mut Prng::new(seed ^ 0x4EAD))
    }

    /// Instantiates the paper's optimizer.
    pub fn build_sgd(&self) -> Sgd {
        Sgd::new(self.learning_rate).with_weight_decay(self.weight_decay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_spec_matches_dataset() {
        let spec = DatasetSpec::core50_tiny();
        let m = ModelConfig::for_spec(&spec);
        assert_eq!(m.raw_dim, spec.raw_dim);
        assert_eq!(m.num_classes, spec.num_classes);
    }

    #[test]
    fn extractor_is_shared_across_seeds() {
        let m = ModelConfig::for_spec(&DatasetSpec::core50_tiny());
        let a = m.build_extractor();
        let b = m.build_extractor();
        let raw = vec![0.3; m.raw_dim];
        assert_eq!(a.extract(&raw), b.extract(&raw));
    }

    #[test]
    fn heads_differ_across_seeds() {
        let m = ModelConfig::for_spec(&DatasetSpec::core50_tiny());
        assert_ne!(m.build_head(1).parameters(), m.build_head(2).parameters());
    }

    #[test]
    fn head_respects_hidden_layers() {
        let m = ModelConfig::for_spec(&DatasetSpec::core50_tiny()).with_hidden(vec![32]);
        let head = m.build_head(0);
        assert_eq!(head.num_layers(), 2);
        assert_eq!(head.in_features(), m.latent_dim);
        assert_eq!(head.num_classes(), m.num_classes);
    }

    #[test]
    fn builders_validate() {
        let m = ModelConfig::for_spec(&DatasetSpec::core50_tiny())
            .with_learning_rate(0.01)
            .with_latent_dim(32);
        assert_eq!(m.learning_rate, 0.01);
        assert_eq!(m.latent_dim, 32);
    }
}
