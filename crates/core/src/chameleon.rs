//! The Chameleon dual-memory replay strategy (paper §III, Algorithm 1).

use chameleon_nn::{loss, FrozenExtractor, Kernel, MlpHead, Sgd};
use chameleon_replay::{
    AccessStats, ClassBalancedBuffer, Precision, RingBuffer, StorePlacement, StoredSample,
};
use chameleon_stream::Batch;
use chameleon_tensor::{ops, Matrix, Prng};

use crate::{ModelConfig, PreferenceTracker, StepTrace, Strategy};

/// Hyperparameters of the Chameleon strategy.
#[derive(Clone, Debug, PartialEq)]
pub struct ChameleonConfig {
    /// Short-term store capacity `|M_s|` (paper: 10 samples, on-chip).
    pub short_term_capacity: usize,
    /// Long-term store capacity `|M_l|` (paper: 100–1500 samples, off-chip).
    pub long_term_capacity: usize,
    /// Long-term access period `h`, in *stream samples* (cycles): `M_l` is
    /// read and updated once every `h` samples. At the paper's hardware
    /// batch size of one this is exactly "every ten batches" (§IV-A); at
    /// batch size ten it amounts to one long-term access per batch while
    /// preserving the same per-image off-chip traffic.
    pub long_term_period: usize,
    /// Samples drawn from `M_l` on each periodic access.
    pub long_term_batch: usize,
    /// Number of user-preferred classes `k` tracked (paper: 5).
    pub top_k: usize,
    /// Learning-window length in samples (paper: ~1500 images; scaled to
    /// the synthetic stream length).
    pub learning_window: usize,
    /// Allocation exponent `ρ ∈ [0, 1]` of Eq. 2.
    pub rho: f32,
    /// Weight `α` of the user-affinity term in Eq. 4.
    pub alpha: f32,
    /// Weight `β` of the uncertainty term in Eq. 4.
    pub beta: f32,
    /// Whether corrupted replay samples (failed integrity checksums) are
    /// detected and evicted before training on them.
    pub quarantine: bool,
    /// Long-term integrity fraction below which a quarantine sweep also
    /// rebuilds the long-term store from the (verified) short-term store —
    /// after catastrophic corruption the surviving prototypes are too
    /// sparse to select against, so the store is reseeded from trusted
    /// on-chip data.
    pub rebuild_integrity_floor: f32,
    /// Storage precision for replay latents. At the default
    /// [`Precision::F32`] every byte this learner produces (checkpoints,
    /// fleet records, wire specs) is identical to pre-codec builds. The
    /// quantized modes project each latent onto the codec grid at
    /// short-term insertion (training reads the dequantized values, so
    /// what is learned is exactly what survives an evict/restore),
    /// serialize packed sample sections (`CHAMLN03`), and switch the
    /// head's forward matmuls to the chunked SIMD-friendly kernels.
    pub precision: Precision,
}

impl Default for ChameleonConfig {
    fn default() -> Self {
        Self {
            short_term_capacity: 10,
            long_term_capacity: 100,
            long_term_period: 10,
            long_term_batch: 10,
            top_k: 5,
            learning_window: 400,
            rho: 1.0,
            alpha: 0.3,
            beta: 0.7,
            quarantine: true,
            rebuild_integrity_floor: 0.5,
            precision: Precision::F32,
        }
    }
}

/// A [`ChameleonConfig`] field rejected by
/// [`ChameleonConfig::validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending field (or field combination).
    pub field: &'static str,
    /// What the field must satisfy.
    pub requirement: &'static str,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.field, self.requirement)
    }
}

impl std::error::Error for ConfigError {}

impl ChameleonConfig {
    /// Validates the configuration, returning the first violated
    /// constraint.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field when a value is
    /// out of range. (NaN fails every range check.)
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |field, requirement| Err(ConfigError { field, requirement });
        if self.short_term_capacity == 0 {
            return err("short-term capacity", "must be positive");
        }
        if self.long_term_capacity == 0 {
            return err("long-term capacity", "must be positive");
        }
        if self.long_term_period == 0 {
            return err("long-term period", "must be positive");
        }
        if self.long_term_batch == 0 {
            return err("long-term batch", "must be positive");
        }
        if self.top_k == 0 {
            return err("top-k", "must be positive");
        }
        if self.learning_window == 0 {
            return err("learning window", "must be positive");
        }
        if !(0.0..=1.0).contains(&self.rho) {
            return err("rho", "must be in [0,1]");
        }
        if !(self.alpha >= 0.0 && self.beta >= 0.0) {
            return err("alpha/beta weights", "must be non-negative");
        }
        // NaN weights were rejected by the non-negativity check above, so
        // the sum is totally ordered here.
        if self.alpha + self.beta <= 0.0 {
            return err("alpha + beta", "must be positive");
        }
        if !(0.0..=1.0).contains(&self.rebuild_integrity_floor) {
            return err("rebuild integrity floor", "must be in [0,1]");
        }
        Ok(())
    }

    /// Panicking wrapper around [`ChameleonConfig::validate`] for internal
    /// construction paths.
    ///
    /// # Panics
    ///
    /// Panics with the violated constraint when a field is out of range.
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("invalid Chameleon config: {e}");
        }
    }
}

/// Selection policies for the two stores — the full paper rules by default,
/// with degraded variants for the ablation benches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShortTermPolicy {
    /// Full Eq. 4: α·user-affinity + β·uncertainty.
    UserAwareUncertainty,
    /// Uncertainty term only (α = 0).
    UncertaintyOnly,
    /// User-affinity term only (β = 0).
    PreferenceOnly,
    /// Uniform random selection from the batch.
    Random,
}

/// Long-term insertion policies (ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LongTermPolicy {
    /// Full Eq. 5/6: class-prototype KL contrastive selection.
    PrototypeKl,
    /// Uniform random promotion from the short-term store.
    Random,
}

/// The Chameleon strategy: dual replay buffers mapped to the memory
/// hierarchy, trained single-pass (paper Algorithm 1).
///
/// Per incoming batch `B_t`:
///
/// 1. update running class statistics / user preferences (`n_c`, Eq. 2),
/// 2. extract latent activations `Z_t = f_θ(X_t)`,
/// 3. train `g_φ` on `Z_t ∪ M_s ∪ m̂_l` where `m̂_l` is drawn from the
///    long-term store every `h` batches,
/// 4. pick one element of `B_t` by the user-aware uncertainty distribution
///    (Eqs. 3–4) and swap it into `M_s` at a random slot,
/// 5. every `h` batches, promote the short-term sample with the highest
///    prototype-KL score (Eqs. 5–6) into the class-balanced `M_l`.
#[derive(Debug)]
pub struct Chameleon {
    extractor: FrozenExtractor,
    head: MlpHead,
    sgd: Sgd,
    short_term: RingBuffer,
    long_term: ClassBalancedBuffer,
    prefs: PreferenceTracker,
    config: ChameleonConfig,
    st_policy: ShortTermPolicy,
    lt_policy: LongTermPolicy,
    shapes: chameleon_stream::shapes::NominalShapes,
    rng: Prng,
    samples_seen: u64,
    trace: StepTrace,
    prototype_rebuilds: u64,
}

/// Resilience counters of a [`Chameleon`] learner: what its integrity
/// machinery detected and repaired so far.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResilienceReport {
    /// Corrupted samples evicted from the short-term store.
    pub short_term_evictions: u64,
    /// Corrupted samples evicted from the long-term store.
    pub long_term_evictions: u64,
    /// SGD updates rejected because gradients contained NaN/Inf.
    pub skipped_updates: u64,
    /// Times catastrophic long-term corruption triggered a rebuild from
    /// the short-term store.
    pub prototype_rebuilds: u64,
    /// Current fraction of long-term samples passing their checksum.
    pub long_term_integrity: f64,
}

/// Lifetime counters of a [`Chameleon`] learner that the checkpoint format
/// does *not* persist: operation traces and store access/quarantine
/// statistics. Session managers (the fleet engine) snapshot these via
/// [`Chameleon::counters`] alongside a checkpoint and re-apply them with
/// [`Chameleon::restore_counters`], so an evicted-then-restored session
/// reports the same quarantine history and hardware-priceable trace as one
/// that never left memory.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LearnerCounters {
    /// Accumulated operation/traffic trace ([`Chameleon::trace`]).
    pub trace: StepTrace,
    /// Short-term store access counters (reads/writes/corrupt evictions).
    pub short_term_stats: AccessStats,
    /// Long-term store access counters (reads/writes/corrupt evictions).
    pub long_term_stats: AccessStats,
    /// SGD updates rejected for non-finite gradients.
    pub skipped_updates: u64,
    /// Catastrophic long-term rebuilds performed.
    pub prototype_rebuilds: u64,
}

impl Chameleon {
    /// Creates a Chameleon learner with the paper's default policies.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`ChameleonConfig::validate`] (see [`ChameleonConfig::assert_valid`]).
    pub fn new(model: &ModelConfig, config: ChameleonConfig, seed: u64) -> Self {
        Self::with_policies(
            model,
            config,
            ShortTermPolicy::UserAwareUncertainty,
            LongTermPolicy::PrototypeKl,
            seed,
        )
    }

    /// Creates a Chameleon learner with explicit store policies (used by
    /// the sampling-rule ablation).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`ChameleonConfig::validate`] (see [`ChameleonConfig::assert_valid`]).
    pub fn with_policies(
        model: &ModelConfig,
        config: ChameleonConfig,
        st_policy: ShortTermPolicy,
        lt_policy: LongTermPolicy,
        seed: u64,
    ) -> Self {
        config.assert_valid();
        let mut head = model.build_head(seed);
        if config.precision != Precision::F32 {
            // The chunked kernels reassociate float reductions, so they
            // ride with the quantized modes where every run being
            // compared (solo vs fleet, run vs replay) selects them too.
            head.set_kernel(Kernel::Chunked);
        }
        Self {
            extractor: model.build_extractor(),
            head,
            sgd: model.build_sgd(),
            short_term: RingBuffer::new(config.short_term_capacity),
            long_term: ClassBalancedBuffer::new(config.long_term_capacity),
            prefs: PreferenceTracker::new(
                model.num_classes,
                config.top_k.min(model.num_classes),
                config.learning_window,
                config.rho,
            ),
            config,
            st_policy,
            lt_policy,
            shapes: model.shapes,
            rng: Prng::new(seed ^ 0xC4A3_31E0),
            samples_seen: 0,
            trace: StepTrace::new(),
            prototype_rebuilds: 0,
        }
    }

    /// Nominal replay-store footprint in MB if the latents were stored
    /// at `precision` — the repricing hook behind
    /// [`Strategy::memory_overhead_mb`] and the fleet's bytes-saved
    /// gauges. The nominal latent (`NominalShapes`) is priced at the
    /// paper's fp16 storage assumption, so `F32` and `F16` both
    /// reproduce the paper's Table I numbers; `Int8` halves them
    /// (1 byte/element + an 8-byte per-tensor affine header).
    pub fn memory_overhead_mb_at(&self, precision: Precision) -> f64 {
        let price = |n: usize| match precision {
            Precision::F32 | Precision::F16 => self.shapes.latent_mb(n),
            Precision::Int8 => self.shapes.latent_packed_mb(n, 1, 8),
        };
        price(self.config.short_term_capacity) + price(self.config.long_term_capacity)
    }

    /// Resilience counters: quarantine evictions, rejected updates, and
    /// long-term rebuilds so far.
    pub fn resilience(&self) -> ResilienceReport {
        ResilienceReport {
            short_term_evictions: self.short_term.stats().corrupt_evictions,
            long_term_evictions: self.long_term.stats().corrupt_evictions,
            skipped_updates: self.sgd.skipped_updates(),
            prototype_rebuilds: self.prototype_rebuilds,
            long_term_integrity: self.long_term.integrity_fraction(),
        }
    }

    /// Snapshot of the lifetime counters the checkpoint format does not
    /// persist (trace, store access stats, skipped updates, rebuilds).
    pub fn counters(&self) -> LearnerCounters {
        LearnerCounters {
            trace: self.trace,
            short_term_stats: self.short_term.stats(),
            long_term_stats: self.long_term.stats(),
            skipped_updates: self.sgd.skipped_updates(),
            prototype_rebuilds: self.prototype_rebuilds,
        }
    }

    /// Re-applies counters captured by [`Chameleon::counters`] onto a
    /// learner reloaded from a checkpoint, so eviction + restore preserves
    /// quarantine history and the hardware-priceable operation trace.
    pub fn restore_counters(&mut self, counters: &LearnerCounters) {
        self.trace = counters.trace;
        self.short_term.restore_stats(counters.short_term_stats);
        self.long_term.restore_stats(counters.long_term_stats);
        self.sgd.restore_skipped_updates(counters.skipped_updates);
        self.prototype_rebuilds = counters.prototype_rebuilds;
    }

    /// The current preference tracker (for inspection in examples).
    pub fn preferences(&self) -> &PreferenceTracker {
        &self.prefs
    }

    /// Current short-term store occupancy.
    pub fn short_term_len(&self) -> usize {
        self.short_term.len()
    }

    /// Current long-term store occupancy.
    pub fn long_term_len(&self) -> usize {
        self.long_term.len()
    }

    /// Configuration in use.
    pub fn config(&self) -> &ChameleonConfig {
        &self.config
    }

    /// Class prototype `P_c` (Eq. 5): the mean latent of class `c` currently
    /// stored in the long-term memory; `None` if the class is absent.
    pub fn class_prototype(&self, class: usize) -> Option<Vec<f32>> {
        let samples = self.long_term.samples_of_class(class);
        if samples.is_empty() {
            return None;
        }
        let dim = samples[0].dim();
        let mut proto = vec![0.0f32; dim];
        for s in samples {
            for (p, &v) in proto.iter_mut().zip(&s.features) {
                *p += v;
            }
        }
        let n = samples.len() as f32;
        for p in &mut proto {
            *p /= n;
        }
        Some(proto)
    }

    /// Eq. 4's selection distribution over the incoming batch, exposed for
    /// tests and the sampling microbench. `latents` and `labels` describe
    /// the batch; `logits` are the model's current outputs for it.
    fn selection_distribution(&self, labels: &[usize], logits: &Matrix) -> Vec<f32> {
        let n = labels.len();
        // Uncertainty term: U_i = |logit of true class| (Eq. 3); retain
        // high U_i^{-1} = low margin.
        let inv_u: Vec<f32> = (0..n)
            .map(|i| {
                let u = ops::logit_margin_uncertainty(logits.row(i), labels[i]);
                1.0 / u.max(1e-6)
            })
            .collect();
        // Affinity term: Δ_k for preferred classes, 1−Δ_k otherwise,
        // normalized over the batch exactly as in Eq. 4's denominator.
        let alloc: Vec<f32> = labels
            .iter()
            .map(|&c| self.prefs.allocation_weight(c))
            .collect();
        let alloc_norm: f32 = alloc.iter().sum();
        let inv_u_norm: f32 = inv_u.iter().sum();

        let (alpha, beta) = match self.st_policy {
            ShortTermPolicy::UserAwareUncertainty => (self.config.alpha, self.config.beta),
            ShortTermPolicy::UncertaintyOnly => (0.0, 1.0),
            ShortTermPolicy::PreferenceOnly => (1.0, 0.0),
            ShortTermPolicy::Random => return vec![1.0; n],
        };
        (0..n)
            .map(|i| {
                let a = if alloc_norm > 0.0 {
                    alloc[i] / alloc_norm
                } else {
                    0.0
                };
                // Both terms are normalized to probability simplices so α/β
                // mix comparable scales (implementation note in DESIGN.md).
                let b = if inv_u_norm > 0.0 {
                    inv_u[i] / inv_u_norm
                } else {
                    0.0
                };
                alpha * a + beta * b
            })
            .collect()
    }

    /// One combined SGD step over `Ẑ_t = Z_t ∪ M_s ∪ m̂_l` (Algorithm 1
    /// lines 5–7). The complete short-term store is swept on every update
    /// — at the paper's hardware batch size of one this is exactly "sweeps
    /// through the complete short-term memory for each new sample"; the
    /// periodic long-term draw is concatenated into the same mini-batch
    /// ("iterative mini-batch concatenation", §IV-A). Returns the logits of
    /// the incoming samples for the Eq. 3 uncertainty scores.
    fn train_step(&mut self, incoming: &Matrix, labels: &[usize], lt_due: bool) -> Matrix {
        let n_in = labels.len();
        let mut rows: Vec<Vec<f32>> = incoming.iter_rows().map(<[f32]>::to_vec).collect();
        let mut all_labels = labels.to_vec();

        // Full short-term sweep (on-chip reads), quarantining corrupted
        // slots first when enabled.
        let st_items = if self.config.quarantine {
            self.short_term.read_all_verified()
        } else {
            self.short_term.read_all()
        };
        self.trace.onchip_sample_reads += st_items.len() as u64;
        for s in st_items {
            rows.push(s.features.clone());
            all_labels.push(s.label);
        }

        // Periodic long-term access (off-chip reads). A quarantine sweep
        // precedes the draw; if it reveals catastrophic corruption, the
        // store is rebuilt from the just-verified short-term data.
        if lt_due && self.config.quarantine && !self.long_term.is_empty() {
            let integrity = self.long_term.integrity_fraction();
            let evicted = self.long_term.purge_corrupt();
            if evicted > 0 && integrity < f64::from(self.config.rebuild_integrity_floor) {
                self.rebuild_long_term_from_short_term();
            }
        }
        if lt_due && !self.long_term.is_empty() {
            let lt = self
                .long_term
                .sample_batch(self.config.long_term_batch, &mut self.rng);
            self.trace.offchip_latent_reads += lt.len() as u64;
            for s in lt {
                rows.push(s.features.clone());
                all_labels.push(s.label);
            }
        }

        let x = Matrix::try_from_row_iter(rows.iter().map(Vec::as_slice))
            .expect("latent rows share dimensionality");
        let fwd = self.head.forward(&x);
        let (_, dlogits) = loss::softmax_cross_entropy(fwd.logits(), &all_labels);
        let grads = self.head.backward(&fwd, &dlogits);
        self.head.apply(&grads, &mut self.sgd);
        self.trace.head_fwd_passes += all_labels.len() as u64;
        self.trace.head_bwd_passes += all_labels.len() as u64;

        let mut out = Matrix::zeros(n_in, fwd.logits().cols());
        for r in 0..n_in {
            out.row_mut(r).copy_from_slice(fwd.logits().row(r));
        }
        out
    }

    /// Step 5: promote the best short-term sample into the long-term store
    /// using the prototype-KL score (Eq. 6).
    fn update_long_term(&mut self) {
        if self.short_term.is_empty() {
            return;
        }
        let candidates = self.short_term.items().to_vec();
        let chosen = match self.lt_policy {
            LongTermPolicy::Random => self.rng.below(candidates.len()),
            LongTermPolicy::PrototypeKl => {
                // Greedy argmax of Eq. 6. The ordering uses the raw KL
                // value: tanh is monotone, but it saturates in f32 well
                // before the KL does, which would reduce the argmax to
                // arbitrary tie-breaking among all strongly-contrastive
                // candidates.
                let mut best = 0usize;
                let mut best_score = f32::NEG_INFINITY;
                for (j, s) in candidates.iter().enumerate() {
                    // No prototype yet for this class: treat as maximally
                    // informative so new classes reach the LT store fast.
                    let score = self.prototype_kl_raw(s).unwrap_or(f32::MAX);
                    if score > best_score {
                        best_score = score;
                        best = j;
                    }
                }
                best
            }
        };
        let sample = candidates[chosen].clone();
        self.long_term.insert(sample, &mut self.rng);
        self.trace.offchip_latent_writes += 1;
    }

    /// Reseeds a catastrophically corrupted long-term store from the
    /// verified short-term store. Prototypes are derived state (means over
    /// long-term samples), so repopulating the store *is* the prototype
    /// rebuild: subsequent Eq. 5/6 selections score against trusted data
    /// again instead of a nearly-empty survivor set.
    fn rebuild_long_term_from_short_term(&mut self) {
        let survivors = self.short_term.items().to_vec();
        for s in survivors {
            if s.integrity_ok() {
                self.long_term.insert(s, &mut self.rng);
                self.trace.offchip_latent_writes += 1;
            }
        }
        self.prototype_rebuilds += 1;
    }

    /// Raw `KL(p(y|st_j) ‖ p(y|P_c))` underlying Eq. 6; `None` when the
    /// class has no long-term prototype yet.
    fn prototype_kl_raw(&self, sample: &StoredSample) -> Option<f32> {
        let proto = self.class_prototype(sample.label)?;
        let x = Matrix::try_from_row_iter([sample.features.as_slice(), proto.as_slice()])
            .expect("equal latent dims");
        let logits = self.head.logits(&x);
        let p_sample = ops::softmax(logits.row(0));
        let p_proto = ops::softmax(logits.row(1));
        Some(ops::kl_divergence(&p_sample, &p_proto))
    }

    /// `S_j = tanh(KL(p(y|st_j) ‖ p(y|P_c)))` (Eq. 6); `None` when the
    /// class has no long-term prototype yet.
    pub fn prototype_kl_score(&self, sample: &StoredSample) -> Option<f32> {
        Some(self.prototype_kl_raw(sample)?.tanh())
    }

    /// Serializes the learner's persistent state (head parameters, both
    /// replay stores, lifetime class counts) — see
    /// [`checkpoint`](crate::checkpoint) for what is and is not persisted.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save_checkpoint<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        use crate::checkpoint as ck;
        let precision = self.config.precision;
        let mut payload = Vec::new();
        if precision != Precision::F32 {
            // v3 leads with the precision tag so a loader knows how to
            // interpret the packed sample sections before reading them.
            ck::write_u32(&mut payload, u32::from(precision.tag()))?;
        }
        ck::write_f32_slice(&mut payload, &self.head.parameters())?;
        let lt: Vec<StoredSample> = self.long_term.iter().cloned().collect();
        if precision == Precision::F32 {
            ck::write_samples(&mut payload, self.short_term.items())?;
            ck::write_samples(&mut payload, &lt)?;
        } else {
            ck::write_packed_samples(&mut payload, self.short_term.items(), precision)?;
            ck::write_packed_samples(&mut payload, &lt, precision)?;
        }
        let counts = self.prefs.total_counts();
        ck::write_u32(&mut payload, counts.len() as u32)?;
        for &c in counts {
            ck::write_u64(&mut payload, c)?;
        }
        ck::write_u64(&mut payload, self.samples_seen)?;
        let blob = if precision == Precision::F32 {
            ck::seal(&payload)
        } else {
            ck::seal_as(ck::MAGIC_V3, &payload)
        };
        w.write_all(&blob)
    }

    /// Restores a learner from a checkpoint written by
    /// [`Self::save_checkpoint`]. The `model`, `config`, and `seed` must
    /// describe the same architecture; RNG/optimizer state restarts from
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`LoadCheckpointError`](crate::checkpoint::LoadCheckpointError)
    /// on I/O failure, bad magic, truncation, a CRC32 footer mismatch, or a
    /// shape mismatch with `model`/`config`. Decoding never panics on
    /// arbitrary input.
    pub fn load_checkpoint<R: std::io::Read>(
        model: &ModelConfig,
        config: ChameleonConfig,
        seed: u64,
        mut r: R,
    ) -> Result<Self, crate::checkpoint::LoadCheckpointError> {
        use crate::checkpoint as ck;
        use crate::checkpoint::LoadCheckpointError as E;

        let mut blob = Vec::new();
        r.read_to_end(&mut blob)?;
        // Verify the envelope (magic + CRC32 footer) before touching any
        // section; decode then proceeds over the validated payload slice.
        let (payload, version) = ck::open(&blob)?;
        let mut r = payload;
        let precision = config.precision;
        let mut learner = Self::new(model, config, seed);

        let packed = match version {
            ck::Version::V2 => false,
            ck::Version::V3 => {
                // v3 records which grid its packed samples live on; a
                // learner configured at a different precision would
                // train on a different grid than it restores, so the
                // mismatch is rejected up front.
                let tag = ck::read_u32(&mut r)?;
                let found = u8::try_from(tag)
                    .ok()
                    .and_then(Precision::from_tag)
                    .ok_or(E::UnsupportedVersion)?;
                if found != precision {
                    return Err(E::ShapeMismatch {
                        what: "latent precision tag",
                        found: usize::from(found.tag()),
                        expected: usize::from(precision.tag()),
                    });
                }
                true
            }
        };

        let params = ck::read_f32_vec(&mut r)?;
        if params.len() != learner.head.parameter_count() {
            return Err(E::ShapeMismatch {
                what: "head parameters",
                found: params.len(),
                expected: learner.head.parameter_count(),
            });
        }
        learner.head.set_parameters(&params);

        let read_section = |r: &mut &[u8]| -> Result<Vec<StoredSample>, E> {
            if packed {
                ck::read_packed_samples(r)
            } else {
                Ok(ck::read_samples(r)?)
            }
        };
        for mut s in read_section(&mut r)? {
            if s.dim() != model.latent_dim {
                return Err(E::ShapeMismatch {
                    what: "short-term sample",
                    found: s.dim(),
                    expected: model.latent_dim,
                });
            }
            if !packed {
                // v2→v3 migration: project pre-codec f32 samples onto
                // the configured grid (no-op at F32, skips corrupt ones).
                s.requantize(precision);
            }
            learner.short_term.push(s);
        }
        for mut s in read_section(&mut r)? {
            if s.dim() != model.latent_dim {
                return Err(E::ShapeMismatch {
                    what: "long-term sample",
                    found: s.dim(),
                    expected: model.latent_dim,
                });
            }
            if !packed {
                s.requantize(precision);
            }
            learner.long_term.insert(s, &mut learner.rng);
        }

        let count_len = ck::read_u32(&mut r)? as usize;
        if count_len != model.num_classes {
            return Err(E::ShapeMismatch {
                what: "class counts",
                found: count_len,
                expected: model.num_classes,
            });
        }
        let mut counts = Vec::with_capacity(count_len);
        for _ in 0..count_len {
            counts.push(ck::read_u64(&mut r)?);
        }
        learner.prefs.restore_counts(&counts);
        learner.samples_seen = ck::read_u64(&mut r)?;
        Ok(learner)
    }

    /// Restores a learner from a checkpoint, falling back to a freshly
    /// initialized one when the blob is missing, truncated, or corrupted.
    /// This is the recovery path an edge deployment takes after power loss
    /// mid-write: training resumes from scratch rather than crashing. The
    /// returned error (if any) says why the checkpoint was rejected.
    pub fn load_or_fresh<R: std::io::Read>(
        model: &ModelConfig,
        config: ChameleonConfig,
        seed: u64,
        r: R,
    ) -> (Self, Option<crate::checkpoint::LoadCheckpointError>) {
        match Self::load_checkpoint(model, config.clone(), seed, r) {
            Ok(learner) => (learner, None),
            Err(e) => (Self::new(model, config, seed), Some(e)),
        }
    }
}

impl Strategy for Chameleon {
    fn name(&self) -> &str {
        "Chameleon"
    }

    fn observe(&mut self, batch: &Batch) {
        // The long-term store is touched once every `h` stream samples.
        let before = self.samples_seen / self.config.long_term_period as u64;
        self.samples_seen += batch.len() as u64;
        let lt_due = self.samples_seen / self.config.long_term_period as u64 > before;

        self.trace.inputs += batch.len() as u64;
        self.trace.trunk_passes += batch.len() as u64;

        // Step 1: running class statistics / preference estimation.
        for &label in &batch.labels {
            self.prefs.observe(label);
        }

        // Step 2: latent extraction.
        let latents = self.extractor.extract_batch(&batch.raw);

        // Step 3: weight update on Z_t ∪ M_s ∪ m̂_l.
        let incoming_logits = self.train_step(&latents, &batch.labels, lt_due);

        // Step 4: user-aware uncertainty-guided short-term update — select
        // one element b_t by Eq. 4, replace a random short-term slot.
        let weights = self.selection_distribution(&batch.labels, &incoming_logits);
        let pick = self.rng.weighted_choice(&weights);
        // At quantized precisions the latent is projected onto the codec
        // grid here, at insertion: the stored floats are the *decoded*
        // values, so replay trains on exactly what a checkpoint restore
        // will reproduce (dequantize-on-read semantics with no drift).
        let sample = StoredSample::latent_quantized(
            latents.row(pick).to_vec(),
            batch.labels[pick],
            self.config.precision,
        );
        self.short_term.replace_random(sample, &mut self.rng);
        self.trace.onchip_sample_writes += 1;

        // Step 5: periodic long-term update via prototype-KL selection.
        if lt_due {
            self.update_long_term();
        }
    }

    fn logits(&self, raw: &Matrix) -> Matrix {
        self.head.logits(&self.extractor.extract_batch(raw))
    }

    fn memory_overhead_mb(&self) -> f64 {
        self.memory_overhead_mb_at(self.config.precision)
    }

    fn trace(&self) -> StepTrace {
        self.trace
    }

    fn visit_stores(&mut self, visit: &mut dyn FnMut(StorePlacement, &mut StoredSample)) {
        for s in self.short_term.samples_mut() {
            visit(StorePlacement::OnChipSram, s);
        }
        for s in self.long_term.samples_mut() {
            visit(StorePlacement::OffChipDram, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};

    fn setup() -> (DomainIlScenario, ModelConfig) {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 3);
        let model = ModelConfig::for_spec(&spec);
        (scenario, model)
    }

    fn run_domains(strategy: &mut Chameleon, scenario: &DomainIlScenario, domains: usize) {
        let config = StreamConfig::default();
        for d in 0..domains {
            for batch in scenario.domain_stream(d, &config, 17 + d as u64) {
                strategy.observe(&batch);
            }
        }
    }

    #[test]
    fn buffers_fill_and_stay_bounded() {
        let (scenario, model) = setup();
        let mut c = Chameleon::new(&model, ChameleonConfig::default(), 1);
        run_domains(&mut c, &scenario, 2);
        assert_eq!(c.short_term_len(), 10);
        assert!(c.long_term_len() <= c.config().long_term_capacity);
        assert!(c.long_term_len() > 0, "long-term store never populated");
    }

    #[test]
    fn long_term_updates_fire_exactly_at_the_h_sample_boundary() {
        let (scenario, model) = setup();
        // Batch sizes that divide `h` exactly, overshoot it mid-batch,
        // and equal it: the long-term store must first be touched on
        // precisely the batch where `samples_seen` crosses `h`.
        for (batch_size, h) in [(4usize, 12usize), (5, 12), (10, 10)] {
            let config = ChameleonConfig {
                long_term_period: h,
                ..ChameleonConfig::default()
            };
            let mut c = Chameleon::new(&model, config, 5);
            let stream = StreamConfig {
                batch_size,
                ..StreamConfig::default()
            };
            let mut seen = 0u64;
            let mut crossed = false;
            for batch in scenario.domain_stream(0, &stream, 23) {
                let before = seen / h as u64;
                seen += batch.len() as u64;
                let due = seen / h as u64 > before;
                c.observe(&batch);
                if due {
                    assert!(
                        c.long_term_len() > 0,
                        "LT skipped at the boundary (h={h}, b={batch_size}, seen={seen})"
                    );
                    crossed = true;
                    break;
                }
                assert_eq!(
                    c.long_term_len(),
                    0,
                    "LT touched early (h={h}, b={batch_size}, seen={seen})"
                );
            }
            assert!(crossed, "stream never reached the h-boundary");
        }
    }

    #[test]
    fn learning_beats_chance() {
        let (scenario, model) = setup();
        let mut c = Chameleon::new(&model, ChameleonConfig::default(), 2);
        run_domains(&mut c, &scenario, scenario.spec().num_domains);
        let (x, y) = scenario.test_set();
        let acc = chameleon_nn::loss::accuracy(&c.logits(x), y);
        assert!(acc > 0.3, "Chameleon accuracy only {acc}");
    }

    #[test]
    fn prototypes_average_long_term_latents() {
        let (_, model) = setup();
        let mut c = Chameleon::new(&model, ChameleonConfig::default(), 3);
        assert!(c.class_prototype(0).is_none());
        // Manually fill the long-term buffer with two class-0 latents.
        let mut rng = Prng::new(0);
        c.long_term.insert(
            StoredSample::latent(vec![1.0; model.latent_dim], 0),
            &mut rng,
        );
        c.long_term.insert(
            StoredSample::latent(vec![3.0; model.latent_dim], 0),
            &mut rng,
        );
        let proto = c.class_prototype(0).expect("class present");
        assert!(proto.iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn selection_prefers_uncertain_samples() {
        let (_, model) = setup();
        let c = Chameleon::new(&model, ChameleonConfig::default(), 4);
        // Two samples of class 0: one with a large true-class margin, one
        // near the boundary. Uncertainty term should upweight the second.
        let logits = Matrix::from_rows(&[
            &[8.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[0.05, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        ]);
        let w = c.selection_distribution(&[0, 0], &logits);
        assert!(w[1] > w[0] * 5.0, "weights {w:?}");
    }

    #[test]
    fn selection_prefers_preferred_classes_when_certain() {
        let (_, model) = setup();
        let config = ChameleonConfig {
            learning_window: 10,
            top_k: 1,
            rho: 1.0,
            alpha: 1.0,
            beta: 0.0,
            ..ChameleonConfig::default()
        };
        let mut c = Chameleon::with_policies(
            &model,
            config,
            ShortTermPolicy::PreferenceOnly,
            LongTermPolicy::PrototypeKl,
            5,
        );
        // Make class 1 strongly preferred.
        for _ in 0..9 {
            c.prefs.observe(1);
        }
        c.prefs.observe(2);
        let logits = Matrix::from_rows(&[
            &[0.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        ]);
        let w = c.selection_distribution(&[1, 2], &logits);
        assert!(w[0] > w[1] * 3.0, "weights {w:?}");
    }

    #[test]
    fn random_policy_is_uniform() {
        let (_, model) = setup();
        let c = Chameleon::with_policies(
            &model,
            ChameleonConfig::default(),
            ShortTermPolicy::Random,
            LongTermPolicy::Random,
            6,
        );
        let logits = Matrix::zeros(3, 10);
        assert_eq!(c.selection_distribution(&[0, 1, 2], &logits), vec![1.0; 3]);
    }

    #[test]
    fn memory_overhead_matches_table1_row() {
        let (_, model) = setup();
        let c = Chameleon::new(
            &model,
            ChameleonConfig {
                long_term_capacity: 100,
                ..ChameleonConfig::default()
            },
            7,
        );
        // Table I: M_s = 0.3 MB, M_l = 3.2 MB.
        assert!(
            (c.memory_overhead_mb() - 3.5).abs() < 0.2,
            "{}",
            c.memory_overhead_mb()
        );
    }

    #[test]
    fn trace_counts_accumulate() {
        let (scenario, model) = setup();
        let mut c = Chameleon::new(&model, ChameleonConfig::default(), 8);
        run_domains(&mut c, &scenario, 1);
        let t = c.trace();
        assert!(t.inputs > 0);
        assert_eq!(t.trunk_passes, t.inputs);
        assert!(t.head_fwd_passes >= t.inputs);
        assert!(t.onchip_sample_reads > 0);
        assert!(t.onchip_sample_writes > 0);
        // The long-term store starts empty and is only touched every `h`
        // samples, so off-chip reads never exceed the per-batch short-term
        // sweep. (The Table II configuration — batch size one — drives the
        // 10:1 on-/off-chip disparity; see the hw crate's tests.)
        assert!(t.offchip_latent_reads <= t.onchip_sample_reads);
        assert!(t.offchip_latent_reads > 0);
    }

    #[test]
    fn long_term_stays_class_balanced_under_skew() {
        let (scenario, model) = setup();
        let mut c = Chameleon::new(
            &model,
            ChameleonConfig {
                long_term_capacity: 20,
                ..ChameleonConfig::default()
            },
            9,
        );
        let config = StreamConfig {
            preference: chameleon_stream::PreferenceProfile::Skewed {
                preferred: vec![0, 1],
                boost: 10.0,
            },
            ..StreamConfig::default()
        };
        for d in 0..scenario.spec().num_domains {
            for batch in scenario.domain_stream(d, &config, 31 + d as u64) {
                c.observe(&batch);
            }
        }
        // Even with a heavily skewed stream, no class should monopolize the
        // class-balanced long-term store.
        let max_share = (0..10)
            .map(|class| c.long_term.samples_of_class(class).len())
            .max()
            .unwrap_or(0);
        assert!(max_share <= 8, "one class holds {max_share}/20 LT slots");
    }

    #[test]
    #[should_panic(expected = "alpha + beta")]
    fn invalid_config_panics() {
        let (_, model) = setup();
        let config = ChameleonConfig {
            alpha: 0.0,
            beta: 0.0,
            ..ChameleonConfig::default()
        };
        let _ = Chameleon::new(&model, config, 0);
    }

    #[test]
    fn validate_reports_field_and_requirement() {
        let config = ChameleonConfig {
            short_term_capacity: 0,
            ..ChameleonConfig::default()
        };
        let err = config.validate().expect_err("zero capacity must fail");
        assert_eq!(err.field, "short-term capacity");
        assert!(err.to_string().contains("short-term capacity"));
        assert!(ChameleonConfig::default().validate().is_ok());
    }

    /// Corrupts one stored feature in every sample the closure selects,
    /// without resealing — exactly what a memory fault looks like.
    fn corrupt_stores(c: &mut Chameleon, placement: StorePlacement) {
        c.visit_stores(&mut |p, s| {
            if p == placement {
                s.features[0] += 1.0e3;
            }
        });
    }

    #[test]
    fn quarantine_evicts_corrupted_short_term_samples() {
        let (scenario, model) = setup();
        let mut c = Chameleon::new(&model, ChameleonConfig::default(), 11);
        run_domains(&mut c, &scenario, 1);
        assert_eq!(c.short_term_len(), 10);
        corrupt_stores(&mut c, StorePlacement::OnChipSram);
        run_domains(&mut c, &scenario, 1);
        let r = c.resilience();
        assert!(
            r.short_term_evictions >= 10,
            "corrupted ST samples not quarantined: {r:?}"
        );
    }

    #[test]
    fn quarantine_off_trains_on_corrupted_samples() {
        let (scenario, model) = setup();
        let config = ChameleonConfig {
            quarantine: false,
            ..ChameleonConfig::default()
        };
        let mut c = Chameleon::new(&model, config, 11);
        run_domains(&mut c, &scenario, 1);
        corrupt_stores(&mut c, StorePlacement::OnChipSram);
        run_domains(&mut c, &scenario, 1);
        let r = c.resilience();
        assert_eq!(r.short_term_evictions, 0);
        assert_eq!(r.long_term_evictions, 0);
    }

    #[test]
    fn catastrophic_long_term_corruption_triggers_rebuild() {
        let (scenario, model) = setup();
        let mut c = Chameleon::new(&model, ChameleonConfig::default(), 12);
        run_domains(&mut c, &scenario, 2);
        assert!(c.long_term_len() > 0);
        // Damage every long-term resident: integrity drops to 0, far below
        // the rebuild floor, so the next periodic access reseeds from the
        // (intact) short-term store.
        corrupt_stores(&mut c, StorePlacement::OffChipDram);
        assert_eq!(c.resilience().long_term_integrity, 0.0);
        run_domains(&mut c, &scenario, 1);
        let r = c.resilience();
        assert!(r.long_term_evictions > 0, "{r:?}");
        assert!(r.prototype_rebuilds >= 1, "{r:?}");
        assert!(c.long_term_len() > 0, "long-term store left empty");
        assert_eq!(r.long_term_integrity, 1.0, "rebuilt store not clean");
    }

    #[test]
    fn light_long_term_corruption_purges_without_rebuild() {
        let (scenario, model) = setup();
        let mut c = Chameleon::new(&model, ChameleonConfig::default(), 13);
        run_domains(&mut c, &scenario, 2);
        let lt = c.long_term_len();
        assert!(lt >= 4, "need a populated store, got {lt}");
        // Damage a single resident: integrity stays above the 0.5 floor.
        let mut hit = false;
        c.visit_stores(&mut |p, s| {
            if p == StorePlacement::OffChipDram && !hit {
                s.features[0] += 1.0e3;
                hit = true;
            }
        });
        run_domains(&mut c, &scenario, 1);
        let r = c.resilience();
        assert_eq!(r.long_term_evictions, 1, "{r:?}");
        assert_eq!(r.prototype_rebuilds, 0, "{r:?}");
    }

    #[test]
    fn visit_stores_tags_each_store_with_its_placement() {
        let (scenario, model) = setup();
        let mut c = Chameleon::new(&model, ChameleonConfig::default(), 14);
        run_domains(&mut c, &scenario, 2);
        let (mut sram, mut dram) = (0, 0);
        c.visit_stores(&mut |p, _| match p {
            StorePlacement::OnChipSram => sram += 1,
            StorePlacement::OffChipDram => dram += 1,
        });
        assert_eq!(sram, c.short_term_len());
        assert_eq!(dram, c.long_term_len());
        assert!(sram > 0 && dram > 0);
    }
}
