//! Evaluation reports.

use chameleon_nn::loss;
use chameleon_stream::DomainIlScenario;
use chameleon_tensor::ops;

use crate::Strategy;

/// Evaluation of one trained strategy on the all-domain test set.
///
/// `acc_all` is the paper's headline metric (final accuracy over all
/// classes and domains, in percent); the per-domain and per-class
/// breakdowns support the forgetting analyses and user-centric extensions.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalReport {
    /// Final accuracy over the full test set, in percent (`Acc_all`).
    pub acc_all: f32,
    /// Accuracy per domain, in percent — low values on early domains mean
    /// catastrophic forgetting.
    pub per_domain: Vec<f32>,
    /// Accuracy per class, in percent.
    pub per_class: Vec<f32>,
    /// Nominal memory overhead of the strategy in MB (Table I column).
    pub memory_overhead_mb: f64,
}

impl EvalReport {
    /// Evaluates `strategy` on the scenario's test set.
    pub fn evaluate<S: Strategy + ?Sized>(scenario: &DomainIlScenario, strategy: &S) -> Self {
        let (x, y) = scenario.test_set();
        let logits = strategy.logits(x);
        let acc_all = 100.0 * loss::accuracy(&logits, y);

        let num_domains = scenario.spec().num_domains;
        let num_classes = scenario.spec().num_classes;
        let domains = scenario.test_domains();

        let mut domain_correct = vec![0usize; num_domains];
        let mut domain_total = vec![0usize; num_domains];
        let mut class_correct = vec![0usize; num_classes];
        let mut class_total = vec![0usize; num_classes];
        for (row, (&label, &domain)) in y.iter().zip(domains).enumerate() {
            let correct = ops::argmax(logits.row(row)) == label;
            domain_total[domain] += 1;
            class_total[label] += 1;
            if correct {
                domain_correct[domain] += 1;
                class_correct[label] += 1;
            }
        }
        let pct = |correct: usize, total: usize| {
            if total == 0 {
                0.0
            } else {
                100.0 * correct as f32 / total as f32
            }
        };
        Self {
            acc_all,
            per_domain: domain_correct
                .iter()
                .zip(&domain_total)
                .map(|(&c, &t)| pct(c, t))
                .collect(),
            per_class: class_correct
                .iter()
                .zip(&class_total)
                .map(|(&c, &t)| pct(c, t))
                .collect(),
            memory_overhead_mb: strategy.memory_overhead_mb(),
        }
    }

    /// Mean accuracy over a subset of classes (e.g. the user's preferred
    /// classes — the personalization objective of §III).
    ///
    /// Returns 0.0 for an empty subset.
    pub fn class_subset_accuracy(&self, classes: &[usize]) -> f32 {
        if classes.is_empty() {
            return 0.0;
        }
        let valid: Vec<f32> = classes
            .iter()
            .filter_map(|&c| self.per_class.get(c).copied())
            .collect();
        if valid.is_empty() {
            return 0.0;
        }
        valid.iter().sum::<f32>() / valid.len() as f32
    }

    /// Forgetting proxy: accuracy on the first domain minus accuracy on the
    /// last (positive values mean early domains were retained *better*).
    pub fn first_vs_last_domain(&self) -> f32 {
        match (self.per_domain.first(), self.per_domain.last()) {
            (Some(&f), Some(&l)) => f - l,
            _ => 0.0,
        }
    }
}

/// Class-confusion counts on the scenario's test set:
/// `matrix[true][predicted]`.
pub fn confusion_matrix<S: Strategy + ?Sized>(
    scenario: &DomainIlScenario,
    strategy: &S,
) -> Vec<Vec<u32>> {
    let num_classes = scenario.spec().num_classes;
    let (x, y) = scenario.test_set();
    let logits = strategy.logits(x);
    let mut matrix = vec![vec![0u32; num_classes]; num_classes];
    for (row, &label) in y.iter().enumerate() {
        matrix[label][ops::argmax(logits.row(row))] += 1;
    }
    matrix
}

/// Backward transfer (BWT, Lopez-Paz & Ranzato 2017) from per-domain
/// evaluation snapshots: the mean change in each domain's accuracy between
/// the moment it was learned and the end of training. Strongly negative
/// BWT is catastrophic forgetting; ≈ 0 means retention.
///
/// `snapshots[d]` must be the evaluation taken right after training domain
/// `d` — the output of
/// [`Trainer::run_with_domain_evals`](crate::Trainer::run_with_domain_evals).
///
/// Returns 0.0 with fewer than two snapshots.
pub fn backward_transfer(snapshots: &[EvalReport]) -> f32 {
    if snapshots.len() < 2 {
        return 0.0;
    }
    let last = snapshots.last().expect("non-empty");
    let mut total = 0.0;
    let mut count = 0;
    for (domain, snapshot) in snapshots.iter().enumerate().take(snapshots.len() - 1) {
        if let (Some(&at_learning), Some(&at_end)) =
            (snapshot.per_domain.get(domain), last.per_domain.get(domain))
        {
            total += at_end - at_learning;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_stream::{Batch, DatasetSpec};
    use chameleon_tensor::Matrix;

    /// A fake strategy that always predicts a fixed class.
    struct ConstantPredictor {
        class: usize,
        num_classes: usize,
    }

    impl Strategy for ConstantPredictor {
        fn name(&self) -> &str {
            "Constant"
        }
        fn observe(&mut self, _batch: &Batch) {}
        fn logits(&self, raw: &Matrix) -> Matrix {
            let mut out = Matrix::zeros(raw.rows(), self.num_classes);
            for r in 0..raw.rows() {
                out.set(r, self.class, 1.0);
            }
            out
        }
        fn memory_overhead_mb(&self) -> f64 {
            0.0
        }
    }

    #[test]
    fn constant_predictor_scores_one_over_c() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 0);
        let strategy = ConstantPredictor {
            class: 0,
            num_classes: spec.num_classes,
        };
        let report = EvalReport::evaluate(&scenario, &strategy);
        let expected = 100.0 / spec.num_classes as f32;
        assert!(
            (report.acc_all - expected).abs() < 1.0,
            "{}",
            report.acc_all
        );
        assert!((report.per_class[0] - 100.0).abs() < 1e-4);
        assert!(report.per_class[1..].iter().all(|&a| a == 0.0));
        assert_eq!(report.per_domain.len(), spec.num_domains);
    }

    #[test]
    fn subset_accuracy_averages_selected_classes() {
        let report = EvalReport {
            acc_all: 0.0,
            per_domain: vec![],
            per_class: vec![100.0, 0.0, 50.0],
            memory_overhead_mb: 0.0,
        };
        assert!((report.class_subset_accuracy(&[0, 2]) - 75.0).abs() < 1e-4);
        assert_eq!(report.class_subset_accuracy(&[]), 0.0);
        assert_eq!(report.class_subset_accuracy(&[99]), 0.0);
    }

    #[test]
    fn first_vs_last_domain_diff() {
        let report = EvalReport {
            acc_all: 0.0,
            per_domain: vec![20.0, 50.0, 80.0],
            per_class: vec![],
            memory_overhead_mb: 0.0,
        };
        assert!((report.first_vs_last_domain() + 60.0).abs() < 1e-4);
    }

    fn snapshot(per_domain: Vec<f32>) -> EvalReport {
        EvalReport {
            acc_all: 0.0,
            per_domain,
            per_class: vec![],
            memory_overhead_mb: 0.0,
        }
    }

    #[test]
    fn backward_transfer_measures_forgetting() {
        // Domain 0 learned at 90, ends at 30; domain 1 learned at 80,
        // ends at 60 ⇒ BWT = ((30−90) + (60−80)) / 2 = −40.
        let snapshots = vec![
            snapshot(vec![90.0, 10.0, 10.0]),
            snapshot(vec![50.0, 80.0, 10.0]),
            snapshot(vec![30.0, 60.0, 85.0]),
        ];
        assert!((backward_transfer(&snapshots) + 40.0).abs() < 1e-4);
    }

    #[test]
    fn backward_transfer_is_zero_for_perfect_retention() {
        let snapshots = vec![snapshot(vec![90.0, 10.0]), snapshot(vec![90.0, 85.0])];
        assert!(backward_transfer(&snapshots).abs() < 1e-4);
        assert_eq!(backward_transfer(&snapshots[..1]), 0.0);
        assert_eq!(backward_transfer(&[]), 0.0);
    }

    #[test]
    fn confusion_matrix_of_constant_predictor_is_one_column() {
        let spec = DatasetSpec::core50_tiny();
        let scenario = DomainIlScenario::generate(&spec, 1);
        let strategy = ConstantPredictor {
            class: 2,
            num_classes: spec.num_classes,
        };
        let matrix = confusion_matrix(&scenario, &strategy);
        for (label, row) in matrix.iter().enumerate() {
            for (predicted, &count) in row.iter().enumerate() {
                if predicted == 2 {
                    assert_eq!(
                        count as usize,
                        spec.test_len() / spec.num_classes,
                        "{label}"
                    );
                } else {
                    assert_eq!(count, 0);
                }
            }
        }
        let total: u32 = matrix.iter().flatten().sum();
        assert_eq!(total as usize, spec.test_len());
    }
}
