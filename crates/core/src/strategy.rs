//! The common interface of all continual-learning strategies.

use chameleon_replay::{StorePlacement, StoredSample};
use chameleon_stream::Batch;
use chameleon_tensor::Matrix;

use crate::StepTrace;

/// A continual-learning strategy: observes an online stream of labeled
/// batches (each seen exactly once) and keeps a classifier up to date.
///
/// The trait mirrors the paper's evaluation protocol:
///
/// * [`Strategy::observe`] — one online step on an incoming mini-batch,
/// * [`Strategy::begin_domain`] / [`Strategy::end_domain`] — domain
///   boundaries of the Domain-IL scenario (LwF snapshots its teacher here;
///   EWC++ re-anchors),
/// * [`Strategy::finalize`] — called once after the stream ends (the Joint
///   upper bound does its multi-epoch training here),
/// * [`Strategy::logits`] — inference on raw inputs for evaluation,
/// * [`Strategy::memory_overhead_mb`] — the nominal replay-memory overhead
///   reported in Table I's MB column,
/// * [`Strategy::trace`] — accumulated operation/traffic counts priced by
///   the hardware models of Table II.
///
/// `Send` is a supertrait: a deployed learner is owned by one user session,
/// and the fleet engine moves sessions onto shard worker threads. Every
/// strategy in this crate is plain owned data (no `Rc`, no raw pointers),
/// so the bound costs nothing; the compile-time checks in this module's
/// tests keep it that way.
pub trait Strategy: Send {
    /// Human-readable method name as it appears in the paper's tables.
    fn name(&self) -> &str;

    /// Performs one online learning step on a mini-batch.
    fn observe(&mut self, batch: &Batch);

    /// Hook invoked when a new domain's stream begins.
    fn begin_domain(&mut self, _domain: usize) {}

    /// Hook invoked when a domain's stream is exhausted.
    fn end_domain(&mut self, _domain: usize) {}

    /// Hook invoked once after the entire stream has been consumed.
    fn finalize(&mut self) {}

    /// Classifies raw inputs, returning one logit row per input.
    fn logits(&self, raw: &Matrix) -> Matrix;

    /// Nominal memory overhead of the method's continual-learning state in
    /// MB (Table I).
    fn memory_overhead_mb(&self) -> f64;

    /// Accumulated operation/traffic counters (see [`StepTrace`]); default
    /// is an empty trace for strategies outside the hardware study.
    fn trace(&self) -> StepTrace {
        StepTrace::new()
    }

    /// Visits every replay sample the strategy holds, tagged with the
    /// memory level the store resides in. Fault injection uses this to
    /// apply placement-scaled bit upsets to resident data; the visitor
    /// deliberately does *not* reseal checksums, so corruption it inflicts
    /// is later detectable. Strategies without replay stores (Finetune,
    /// EWC++, LwF, SLDA) keep the empty default.
    fn visit_stores(&mut self, _visit: &mut dyn FnMut(StorePlacement, &mut StoredSample)) {}
}

/// Blanket impl so `Box<dyn Strategy>` composes with the trainer.
impl Strategy for Box<dyn Strategy> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }
    fn observe(&mut self, batch: &Batch) {
        self.as_mut().observe(batch);
    }
    fn begin_domain(&mut self, domain: usize) {
        self.as_mut().begin_domain(domain);
    }
    fn end_domain(&mut self, domain: usize) {
        self.as_mut().end_domain(domain);
    }
    fn finalize(&mut self) {
        self.as_mut().finalize();
    }
    fn logits(&self, raw: &Matrix) -> Matrix {
        self.as_ref().logits(raw)
    }
    fn memory_overhead_mb(&self) -> f64 {
        self.as_ref().memory_overhead_mb()
    }
    fn trace(&self) -> StepTrace {
        self.as_ref().trace()
    }
    fn visit_stores(&mut self, visit: &mut dyn FnMut(StorePlacement, &mut StoredSample)) {
        self.as_mut().visit_stores(visit);
    }
}

#[cfg(test)]
mod tests {
    use super::Strategy;

    fn assert_send<T: Send>() {}

    /// Compile-time check: every strategy, and the boxed trait object, can
    /// be moved onto a shard worker thread.
    #[test]
    fn all_strategies_are_send() {
        assert_send::<crate::Chameleon>();
        assert_send::<crate::Er>();
        assert_send::<crate::Der>();
        assert_send::<crate::Gss>();
        assert_send::<crate::LatentReplay>();
        assert_send::<crate::Finetune>();
        assert_send::<crate::Joint>();
        assert_send::<crate::EwcPlusPlus>();
        assert_send::<crate::Lwf>();
        assert_send::<crate::Slda>();
        assert_send::<Box<dyn Strategy>>();
    }
}
