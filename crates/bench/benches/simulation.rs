//! Benchmarks of the simulation substrates themselves: stream generation,
//! latent extraction, the cycle-level systolic scheduler, and the DRAM
//! timing model — the costs a user pays per simulated experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chameleon_core::ModelConfig;
use chameleon_hw::memsim::{AccessPattern, MemoryHierarchy};
use chameleon_hw::sim::{gemm_stream, mobilenet_v1_workload, Gemm, SystolicSim, SystolicSimConfig};
use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};

fn bench_stream_generation(c: &mut Criterion) {
    let spec = DatasetSpec::core50();
    let scenario = DomainIlScenario::generate(&spec, 3);
    let config = StreamConfig::default();
    c.bench_function("stream/one_batch_of_10", |b| {
        let mut stream = scenario.domain_stream(0, &config, 1);
        b.iter(|| match stream.next() {
            Some(batch) => black_box(batch.len()),
            None => {
                stream = scenario.domain_stream(0, &config, 1);
                0
            }
        });
    });
    c.bench_function("stream/scenario_generate_tiny", |b| {
        b.iter(|| black_box(DomainIlScenario::generate(&DatasetSpec::core50_tiny(), 4)));
    });
}

fn bench_extractor(c: &mut Criterion) {
    let spec = DatasetSpec::core50();
    let scenario = DomainIlScenario::generate(&spec, 5);
    let model = ModelConfig::for_spec(&spec);
    let extractor = model.build_extractor();
    let batch = scenario
        .domain_stream(0, &StreamConfig::default(), 6)
        .next()
        .expect("non-empty domain");
    c.bench_function("extractor/batch_of_10", |b| {
        b.iter(|| black_box(extractor.extract_batch(&batch.raw)));
    });
}

fn bench_cycle_sim(c: &mut Criterion) {
    let sim = SystolicSim::new(SystolicSimConfig::edge_tpu());
    let (trunk, _) = mobilenet_v1_workload(128, 1, 11);
    let stream = gemm_stream(&trunk);
    c.bench_function("cycle_sim/mobilenet_trunk", |b| {
        b.iter(|| black_box(sim.run(&stream)));
    });
    c.bench_function("cycle_sim/single_gemm", |b| {
        b.iter(|| black_box(sim.gemm(&Gemm::new(256, 1024, 1024))));
    });
}

fn bench_memsim(c: &mut Criterion) {
    c.bench_function("memsim/scattered_replay_x10", |b| {
        b.iter(|| {
            let mut h = MemoryHierarchy::zcu102();
            black_box(h.replay_fetch(10, 32 * 1024, AccessPattern::Scattered { seed: 1 }))
        });
    });
}

criterion_group!(
    benches,
    bench_stream_generation,
    bench_extractor,
    bench_cycle_sim,
    bench_memsim
);
criterion_main!(benches);
