//! Benchmarks the analytical device models and the Eq. 2/4 selection math
//! (the per-batch decision path that runs on-device).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chameleon_core::{PreferenceTracker, StepTrace};
use chameleon_hw::{Device, JetsonNano, NominalModel, SystolicAccelerator, Workload, Zcu102};
use chameleon_tensor::Prng;

fn chameleon_workload() -> Workload {
    let t = StepTrace {
        inputs: 10,
        trunk_passes: 10,
        head_fwd_passes: 120,
        head_bwd_passes: 120,
        onchip_sample_reads: 100,
        onchip_sample_writes: 10,
        offchip_latent_reads: 10,
        offchip_latent_writes: 1,
        ..StepTrace::new()
    };
    Workload::from_trace(
        &t.per_input().expect("inputs"),
        &NominalModel::mobilenet_v1(),
    )
}

fn bench_device_models(c: &mut Criterion) {
    let w = chameleon_workload();
    let jetson = JetsonNano::new();
    let fpga = Zcu102::new();
    let tpu = SystolicAccelerator::new();
    c.bench_function("device/jetson_cost", |b| {
        b.iter(|| black_box(jetson.cost(&w)))
    });
    c.bench_function("device/fpga_cost", |b| b.iter(|| black_box(fpga.cost(&w))));
    c.bench_function("device/systolic_cost", |b| {
        b.iter(|| black_box(tpu.cost(&w)))
    });
    c.bench_function("device/fpga_resources", |b| {
        b.iter(|| black_box(Zcu102::new().resources()))
    });
}

fn bench_selection_math(c: &mut Criterion) {
    c.bench_function("prefs/observe+window", |b| {
        let mut tracker = PreferenceTracker::new(50, 5, 100, 1.0);
        let mut rng = Prng::new(0);
        b.iter(|| tracker.observe(rng.below(50)));
    });
    c.bench_function("prng/weighted_choice10", |b| {
        let mut rng = Prng::new(1);
        let weights: Vec<f32> = (0..10).map(|i| 0.1 + i as f32).collect();
        b.iter(|| black_box(rng.weighted_choice(&weights)));
    });
}

criterion_group!(benches, bench_device_models, bench_selection_math);
criterion_main!(benches);
