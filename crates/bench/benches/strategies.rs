//! Benchmarks one online `observe` step of every strategy — the software
//! analogue of Table II's per-image cost, on the simulation substrate.

use criterion::{criterion_group, criterion_main, Criterion};

use chameleon_core::{
    Chameleon, ChameleonConfig, Der, DerConfig, Er, EwcConfig, EwcPlusPlus, Finetune, Gss,
    GssConfig, LatentReplay, Lwf, LwfConfig, ModelConfig, Slda, SldaConfig, Strategy,
};
use chameleon_stream::{Batch, DatasetSpec, DomainIlScenario, StreamConfig};

fn warmed<S: Strategy>(mut strategy: S, scenario: &DomainIlScenario) -> (S, Vec<Batch>) {
    let config = StreamConfig::default();
    let mut batches: Vec<Batch> = scenario.domain_stream(0, &config, 1).collect();
    for batch in &batches {
        strategy.observe(batch);
    }
    batches.truncate(16);
    (strategy, batches)
}

fn bench_observe(c: &mut Criterion) {
    let spec = DatasetSpec::core50();
    let scenario = DomainIlScenario::generate(&spec, 7);
    let model = ModelConfig::for_spec(&spec);
    let mut group = c.benchmark_group("observe_per_batch");
    group.sample_size(30);

    // Strategies are not `Clone` (they own RNG and optimizer state), so
    // each iteration keeps training the same warmed instance: state drifts
    // slightly across iterations, which matches the steady-state online
    // setting being measured.
    macro_rules! bench_observe_inplace {
        ($name:expr, $make:expr) => {
            group.bench_function($name, |b| {
                let (mut strategy, batches) = warmed($make, &scenario);
                let mut i = 0usize;
                b.iter(|| {
                    strategy.observe(&batches[i % batches.len()]);
                    i += 1;
                });
            });
        };
    }

    bench_observe_inplace!("finetune", Finetune::new(&model, 1));
    bench_observe_inplace!("er_500", Er::new(&model, 500, 1));
    bench_observe_inplace!("der_500", Der::new(&model, DerConfig::new(500), 1));
    bench_observe_inplace!("gss_500", Gss::new(&model, GssConfig::new(500), 1));
    bench_observe_inplace!("latent_replay_500", LatentReplay::new(&model, 500, 1));
    bench_observe_inplace!("lwf", Lwf::new(&model, LwfConfig::default(), 1));
    bench_observe_inplace!("ewcpp", EwcPlusPlus::new(&model, EwcConfig::default(), 1));
    bench_observe_inplace!("slda", Slda::new(&model, SldaConfig::default(), 1));
    bench_observe_inplace!(
        "chameleon",
        Chameleon::new(&model, ChameleonConfig::default(), 1)
    );
    group.finish();
}

criterion_group!(benches, bench_observe);
criterion_main!(benches);
