//! Microbenchmarks of the numeric kernels: GEMM, softmax/KL (the Eq. 3–6
//! scoring path), and the regularized inverse (SLDA's `O(N³)` bottleneck,
//! whose growth this bench makes directly visible).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chameleon_tensor::{linalg, ops, Matrix, Prng};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    let mut rng = Prng::new(0);
    for n in [32usize, 64, 128] {
        let a = Matrix::randn(n, n, &mut rng);
        let b = Matrix::randn(n, n, &mut rng);
        group.bench_function(format!("matmul/{n}"), |bench| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
        group.bench_function(format!("matmul_nt/{n}"), |bench| {
            bench.iter(|| black_box(a.matmul_nt(&b)));
        });
    }
    group.finish();
}

fn bench_softmax_kl(c: &mut Criterion) {
    let mut rng = Prng::new(1);
    let logits: Vec<f32> = (0..50).map(|_| rng.randn()).collect();
    let other: Vec<f32> = (0..50).map(|_| rng.randn()).collect();
    c.bench_function("softmax/50", |b| {
        b.iter(|| black_box(ops::softmax(&logits)))
    });
    let p = ops::softmax(&logits);
    let q = ops::softmax(&other);
    c.bench_function("kl_divergence/50", |b| {
        b.iter(|| black_box(ops::kl_divergence(&p, &q)))
    });
    c.bench_function("uncertainty_eq3/50", |b| {
        b.iter(|| black_box(ops::logit_margin_uncertainty(&logits, 7)))
    });
}

fn bench_inverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("invert_regularized");
    group.sample_size(20);
    let mut rng = Prng::new(2);
    for n in [32usize, 64, 128] {
        // SPD input: covariance-like.
        let b = Matrix::randn(n, n, &mut rng);
        let mut spd = b.matmul_nt(&b);
        for i in 0..n {
            spd.set(i, i, spd.get(i, i) + 1.0);
        }
        group.bench_function(format!("n={n}"), |bench| {
            bench.iter(|| black_box(linalg::invert_regularized(&spd, 1e-2).expect("SPD")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_softmax_kl, bench_inverse);
criterion_main!(benches);
