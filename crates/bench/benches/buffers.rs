//! Microbenchmarks of the replay-buffer primitives.
//!
//! These are the per-sample bookkeeping operations that run on-device for
//! every stream element; they must stay trivially cheap compared to the
//! network passes they accompany.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use chameleon_replay::{ClassBalancedBuffer, ReservoirBuffer, RingBuffer, StoredSample};
use chameleon_tensor::Prng;

const LATENT_DIM: usize = 64;

fn sample(rng: &mut Prng, class: usize) -> StoredSample {
    StoredSample::latent((0..LATENT_DIM).map(|_| rng.randn()).collect(), class)
}

fn filled_reservoir(capacity: usize) -> (ReservoirBuffer, Prng) {
    let mut rng = Prng::new(1);
    let mut buffer = ReservoirBuffer::new(capacity);
    for i in 0..capacity * 2 {
        let s = sample(&mut rng, i % 50);
        buffer.offer(s, &mut rng);
    }
    (buffer, rng)
}

fn bench_reservoir(c: &mut Criterion) {
    let mut group = c.benchmark_group("reservoir");
    for capacity in [100usize, 1500] {
        group.bench_function(format!("offer/{capacity}"), |b| {
            let (buffer, rng) = filled_reservoir(capacity);
            b.iter_batched(
                || (buffer.clone(), rng.clone()),
                |(mut buffer, mut rng)| {
                    let s = sample(&mut rng, 7);
                    black_box(buffer.offer(s, &mut rng));
                },
                BatchSize::SmallInput,
            );
        });
        group.bench_function(format!("sample_batch10/{capacity}"), |b| {
            let (mut buffer, mut rng) = filled_reservoir(capacity);
            b.iter(|| black_box(buffer.sample_batch(10, &mut rng)));
        });
    }
    group.finish();
}

fn bench_class_balanced(c: &mut Criterion) {
    let mut group = c.benchmark_group("class_balanced");
    for capacity in [100usize, 1500] {
        group.bench_function(format!("insert/{capacity}"), |b| {
            let mut rng = Prng::new(2);
            let mut buffer = ClassBalancedBuffer::new(capacity);
            for i in 0..capacity * 2 {
                let s = sample(&mut rng, i % 50);
                buffer.insert(s, &mut rng);
            }
            b.iter_batched(
                || (buffer.clone(), rng.clone()),
                |(mut buffer, mut rng)| {
                    let s = sample(&mut rng, 3);
                    black_box(buffer.insert(s, &mut rng));
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_ring(c: &mut Criterion) {
    c.bench_function("ring/replace_random+read_all10", |b| {
        let mut rng = Prng::new(3);
        let mut buffer = RingBuffer::new(10);
        for i in 0..10 {
            buffer.push(sample(&mut rng, i));
        }
        b.iter(|| {
            let s = sample(&mut rng, 1);
            buffer.replace_random(s, &mut rng);
            black_box(buffer.read_all())
        });
    });
}

criterion_group!(benches, bench_reservoir, bench_class_balanced, bench_ring);
criterion_main!(benches);
