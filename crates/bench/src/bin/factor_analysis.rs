//! Extension: **per-factor difficulty analysis** on the factored OpenLORIS
//! scenario — which environmental factor (illumination / occlusion /
//! clutter / pixel-size, each at levels 1–3) costs the most accuracy,
//! mirroring the difficulty analysis of the OpenLORIS-Object paper the
//! benchmark comes from.
//!
//! Usage: `cargo run --release -p chameleon-bench --bin factor_analysis
//! [--runs N]` (default 3).

use std::collections::BTreeMap;

use chameleon_bench::report::Table;
use chameleon_bench::suite::{runs_from_args, seeds};
use chameleon_core::{
    Chameleon, ChameleonConfig, ModelConfig, Slda, SldaConfig, Strategy, Trainer,
};
use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};

fn main() {
    let runs = runs_from_args(3);
    let seed_list = seeds(runs);

    let spec = DatasetSpec::openloris_factored();
    let scenario = DomainIlScenario::generate(&spec, 0xDA7A);
    let model = ModelConfig::for_spec(&spec);
    let trainer = Trainer::new(StreamConfig::default());

    println!("# Per-factor difficulty (OpenLORIS-factored, {runs} runs)\n");
    println!(
        "The twelve domains carry the real benchmark's environmental factors;\n\
         per-domain accuracy therefore *is* per-factor accuracy.\n"
    );

    let mut table = Table::new(&["Factor", "Chameleon acc", "SLDA acc"]);
    let chameleon = trainer.run_many(
        &scenario,
        |seed| -> Box<dyn Strategy> {
            Box::new(Chameleon::new(&model, ChameleonConfig::default(), seed))
        },
        &seed_list,
    );
    let slda = trainer.run_many(
        &scenario,
        |seed| -> Box<dyn Strategy> { Box::new(Slda::new(&model, SldaConfig::default(), seed)) },
        &seed_list,
    );
    let ch_domains = chameleon.mean_per_domain();
    let sl_domains = slda.mean_per_domain();

    let mut family_acc: BTreeMap<&str, (f32, f32, usize)> = BTreeMap::new();
    for (domain, factor) in spec.factors.iter().enumerate() {
        table.row_owned(vec![
            factor.to_string(),
            format!("{:.1}", ch_domains[domain]),
            format!("{:.1}", sl_domains[domain]),
        ]);
        let entry = family_acc.entry(factor.family()).or_insert((0.0, 0.0, 0));
        entry.0 += ch_domains[domain];
        entry.1 += sl_domains[domain];
        entry.2 += 1;
    }
    println!("{}", table.render());

    println!("## By factor family (mean over levels)\n");
    let mut fam = Table::new(&["Family", "Chameleon acc", "SLDA acc"]);
    for (family, (ch, sl, n)) in family_acc {
        fam.row_owned(vec![
            family.to_string(),
            format!("{:.1}", ch / n as f32),
            format!("{:.1}", sl / n as f32),
        ]);
    }
    println!("{}", fam.render());
    println!(
        "overall: Chameleon {} vs SLDA {} — in the synthetic raw space,\n\
         pixel-size (local averaging) is the hardest family: it mixes the\n\
         unordered feature coordinates and destroys the identity direction,\n\
         where a real image blur only removes high-frequency detail. Occlusion\n\
         is second (evidence removed outright); clutter and dimming are\n\
         absorbed more easily. The real benchmark orders difficulty the same\n\
         way for occlusion but finds blur milder — a raw-space artifact worth\n\
         noting when reading this table.",
        chameleon.acc_all, slda.acc_all
    );
}
