//! Ablation: the **quantized latent replay codec** (DESIGN.md §15).
//!
//! Runs Chameleon on the synthetic CORe50 benchmark with the latent
//! buffers stored at each codec precision — `f32` (the baseline, no
//! packing), `f16`, and `int8` — and reports the accuracy delta each
//! precision costs against the memory it buys. The quantized runs also
//! switch the head to the chunked SIMD-friendly kernels (the precision
//! knob selects both together), so the deltas here cover the full
//! quantized configuration a `--precision int8` deployment runs.
//!
//! Expected shape: int8 shrinks serialized latents ~4x (f16 ~2x) while
//! Acc_all stays within noise of the f32 baseline — the latent
//! activations Chameleon replays tolerate per-tensor affine int8 with
//! no measurable forgetting penalty on these benchmarks.
//!
//! Usage: `cargo run --release -p chameleon-bench --bin
//! ablation_quantized_latent [--runs N]` (default 5).

use chameleon_bench::report::Table;
use chameleon_bench::suite::{runs_from_args, seeds};
use chameleon_core::{Chameleon, ChameleonConfig, ModelConfig, Precision, Trainer};
use chameleon_stream::shapes::NominalShapes;
use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};

fn main() {
    let runs = runs_from_args(5);
    let seed_list = seeds(runs);

    let spec = DatasetSpec::core50();
    let scenario = DomainIlScenario::generate(&spec, 0xDA7A);
    let model = ModelConfig::for_spec(&spec);
    let shapes = NominalShapes::for_classes(spec.num_classes);
    let elems = shapes.latent_elems();
    let trainer = Trainer::new(StreamConfig::default());

    println!(
        "# Ablation — quantized latent replay codec ({} synthetic)\n",
        spec.name
    );
    println!(
        "{runs} runs per precision, identical seeds and stream order. 'Latent B/sample'\n\
         is the serialized codec blob for one nominal latent ({elems} elems); 'Session MB'\n\
         is the nominal resident footprint the fleet prices evictions with. Quantized\n\
         rows also run the chunked head kernels — the delta is the full `--precision`\n\
         configuration, not the codec in isolation.\n"
    );

    let mut table = Table::new(&[
        "Precision",
        "Acc_all",
        "Δ vs f32",
        "Session MB",
        "Latent B/sample",
        "Shrink",
    ]);

    let f32_blob = Precision::F32.packed_len(elems);
    let mut f32_mean = 0.0f32;
    for precision in [Precision::F32, Precision::F16, Precision::Int8] {
        let config = ChameleonConfig {
            precision,
            ..ChameleonConfig::default()
        };
        let agg = trainer.run_many(
            &scenario,
            |s| Box::new(Chameleon::new(&model, config.clone(), s)),
            &seed_list,
        );
        if precision == Precision::F32 {
            f32_mean = agg.acc_all.mean;
        }
        let blob = precision.packed_len(elems);
        table.row_owned(vec![
            precision.to_string(),
            agg.acc_all.to_string(),
            if precision == Precision::F32 {
                "—".to_string()
            } else {
                format!("{:+.2}", agg.acc_all.mean - f32_mean)
            },
            format!("{:.2}", agg.memory_overhead_mb),
            blob.to_string(),
            format!("{:.2}x", f32_blob as f64 / blob as f64),
        ]);
        eprintln!("  {precision}: {}", agg.acc_all);
    }

    println!("{}", table.render());
    println!(
        "The equivalence suite (tests/kernel_equivalence.rs) pins the kernel half\n\
         of this configuration — chunked reductions within 2 ULPs of f64 ground\n\
         truth — and tests/codec_fuzz.rs pins the codec half, so any delta above\n\
         is quantization error, not implementation drift. The accuracy bound the\n\
         suite enforces (|Δ| within noise on CORe50-tiny) lives in\n\
         tests/kernel_equivalence.rs::quantized_replay_accuracy_delta_is_bounded."
    );
}
