//! Ablation: Chameleon's short-term and long-term **selection policies**
//! (DESIGN.md, "Sampling-rule ablation").
//!
//! Crosses the Eq. 4 short-term policy {random, uncertainty-only,
//! preference-only, full} with the Eq. 6 long-term policy {random,
//! prototype-KL} on the synthetic CORe50 benchmark — both with a uniform
//! stream (the Table I setting) and with a user-skewed stream (the
//! personalization setting Chameleon is designed for).
//!
//! Usage: `cargo run --release -p chameleon-bench --bin ablation_sampling
//! [--runs N]` (default 5).

use chameleon_bench::report::Table;
use chameleon_bench::suite::{runs_from_args, seeds};
use chameleon_core::{
    Chameleon, ChameleonConfig, LongTermPolicy, ModelConfig, ShortTermPolicy, Trainer,
};
use chameleon_stream::{DatasetSpec, DomainIlScenario, PreferenceProfile, StreamConfig};

fn policy_name(st: ShortTermPolicy, lt: LongTermPolicy) -> String {
    let st = match st {
        ShortTermPolicy::UserAwareUncertainty => "full Eq.4",
        ShortTermPolicy::UncertaintyOnly => "uncertainty",
        ShortTermPolicy::PreferenceOnly => "preference",
        ShortTermPolicy::Random => "random",
    };
    let lt = match lt {
        LongTermPolicy::PrototypeKl => "proto-KL",
        LongTermPolicy::Random => "random",
    };
    format!("ST: {st:<11} / LT: {lt}")
}

fn main() {
    let runs = runs_from_args(5);
    let seed_list = seeds(runs);

    let spec = DatasetSpec::core50();
    let scenario = DomainIlScenario::generate(&spec, 0xDA7A);
    let model = ModelConfig::for_spec(&spec);

    let uniform = Trainer::new(StreamConfig::default());
    let skewed = Trainer::new(StreamConfig {
        preference: PreferenceProfile::Skewed {
            preferred: vec![0, 1, 2, 3, 4],
            boost: 8.0,
        },
        ..StreamConfig::default()
    });

    println!("# Ablation — short/long-term selection policies (CORe50 synthetic)\n");
    println!(
        "{runs} runs per cell. The skewed stream repeats classes 0–4 eight times\n\
         as often (a user's preferred objects); 'Pref acc' is accuracy on those\n\
         five classes — Chameleon's personalization objective.\n"
    );

    let mut table = Table::new(&[
        "Policy",
        "Uniform Acc_all",
        "Skewed Acc_all",
        "Skewed Pref acc",
    ]);

    let st_policies = [
        ShortTermPolicy::Random,
        ShortTermPolicy::UncertaintyOnly,
        ShortTermPolicy::PreferenceOnly,
        ShortTermPolicy::UserAwareUncertainty,
    ];
    let lt_policies = [LongTermPolicy::Random, LongTermPolicy::PrototypeKl];

    for st in st_policies {
        for lt in lt_policies {
            let build = |seed: u64| -> Box<dyn chameleon_core::Strategy> {
                Box::new(Chameleon::with_policies(
                    &model,
                    ChameleonConfig::default(),
                    st,
                    lt,
                    seed,
                ))
            };
            let uni = uniform.run_many(&scenario, build, &seed_list);
            let skw = skewed.run_many(&scenario, build, &seed_list);
            let pref_acc: f32 = skw
                .runs
                .iter()
                .map(|r| r.class_subset_accuracy(&[0, 1, 2, 3, 4]))
                .sum::<f32>()
                / skw.runs.len() as f32;
            table.row_owned(vec![
                policy_name(st, lt),
                uni.acc_all.to_string(),
                skw.acc_all.to_string(),
                format!("{pref_acc:.2}"),
            ]);
            eprintln!("  {} done", policy_name(st, lt));
        }
    }

    println!("{}", table.render());
    println!(
        "Expected shape: uncertainty-guided ST selection helps Acc_all; the\n\
         preference term trades a little Acc_all on uniform streams for higher\n\
         preferred-class accuracy on skewed streams (the paper's user-centric\n\
         objective, §III-C)."
    );
}
