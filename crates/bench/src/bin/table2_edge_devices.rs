//! Regenerates **Table II**: per-image training latency and energy of
//! Chameleon, SLDA, and Latent Replay on the three edge-device models.
//!
//! The strategies run at the paper's hardware configuration — batch size
//! one, ten replay elements per incoming input — on a shortened stream to
//! collect their operation/traffic traces; the traces are then priced by
//! the analytical device models (`chameleon-hw`).
//!
//! Usage: `cargo run --release -p chameleon-bench --bin table2_edge_devices`.

use chameleon_bench::report::{fmt_or_dash, Table};
use chameleon_core::{
    Chameleon, ChameleonConfig, LatentReplay, ModelConfig, Slda, SldaConfig, Strategy,
};
use chameleon_hw::{Device, JetsonNano, NominalModel, SystolicAccelerator, Workload, Zcu102};
use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};

/// Paper values: (jetson ms, jetson J, fpga ms, fpga J, edgetpu ms);
/// NaN where the paper has no measurement.
fn paper(method: &str) -> (f64, f64, f64, f64, f64) {
    match method {
        "Latent Replay" => (115.0, 1.14, 2788.0, 8.62, f64::NAN),
        "SLDA" => (69.0, 0.68, f64::NAN, f64::NAN, 554.0),
        "Chameleon" => (33.0, 0.31, 413.0, 1.22, 47.0),
        _ => (f64::NAN, f64::NAN, f64::NAN, f64::NAN, f64::NAN),
    }
}

fn collect_workload(mut strategy: Box<dyn Strategy>, scenario: &DomainIlScenario) -> Workload {
    // Paper hardware setup: batch size 1, run enough stream to reach
    // steady-state buffer behaviour.
    let config = StreamConfig {
        batch_size: 1,
        ..StreamConfig::default()
    };
    for domain in 0..2 {
        for batch in scenario.domain_stream(domain, &config, 7 + domain as u64) {
            strategy.observe(&batch);
        }
    }
    let per = strategy
        .trace()
        .per_input()
        .expect("strategy observed inputs");
    Workload::from_trace(&per, &NominalModel::mobilenet_v1())
}

fn main() {
    let spec = DatasetSpec::core50();
    let scenario = DomainIlScenario::generate(&spec, 0xDA7A);
    let model = ModelConfig::for_spec(&spec);

    let strategies: Vec<(&str, Box<dyn Strategy>)> = vec![
        (
            "Latent Replay",
            Box::new(LatentReplay::new(&model, 1500, 1)),
        ),
        (
            "SLDA",
            Box::new(Slda::new(&model, SldaConfig::default(), 1)),
        ),
        (
            "Chameleon",
            Box::new(Chameleon::new(&model, ChameleonConfig::default(), 1)),
        ),
    ];

    let jetson = JetsonNano::new();
    let fpga = Zcu102::new();
    let tpu = SystolicAccelerator::new();

    println!("# Table II — per-image training cost on edge-device models\n");
    println!("Batch size 1, ten replay elements per input (paper §IV-C).\n");

    let mut table = Table::new(&[
        "Method",
        "Jetson ms (paper)",
        "Jetson J (paper)",
        "FPGA ms (paper)",
        "FPGA J (paper)",
        "EdgeTPU ms (paper)",
    ]);

    let mut breakdowns = Vec::new();
    for (name, strategy) in strategies {
        let workload = collect_workload(strategy, &scenario);
        let j = jetson.cost(&workload);
        let f = fpga.cost(&workload);
        let t = tpu.cost(&workload);
        let (pj_ms, pj_j, pf_ms, pf_j, pt_ms) = paper(name);
        table.row_owned(vec![
            name.to_string(),
            format!("{:.0} ({})", j.latency_ms, fmt_or_dash(pj_ms, 0)),
            format!("{:.2} ({})", j.energy_j, fmt_or_dash(pj_j, 2)),
            format!("{:.0} ({})", f.latency_ms, fmt_or_dash(pf_ms, 0)),
            format!("{:.2} ({})", f.energy_j, fmt_or_dash(pf_j, 2)),
            format!("{:.0} ({})", t.latency_ms, fmt_or_dash(pt_ms, 0)),
        ]);
        breakdowns.push((name, f));
    }
    println!("{}", table.render());

    println!("## FPGA latency breakdown (§IV-C)\n");
    let mut bd = Table::new(&[
        "Method",
        "Compute ms",
        "Weight stream ms",
        "Replay traffic ms",
        "Replay share",
    ]);
    for (name, f) in &breakdowns {
        bd.row_owned(vec![
            name.to_string(),
            format!("{:.0}", f.compute_ms),
            format!("{:.0}", f.weight_stream_ms),
            format!("{:.0}", f.replay_traffic_ms),
            format!("{:.0} %", 100.0 * f.replay_traffic_fraction()),
        ]);
    }
    println!("{}", bd.render());
    println!(
        "Paper reference: Latent Replay spends 44 % of FPGA latency moving latent\n\
         activations off-chip; Chameleon removes that traffic via the on-chip\n\
         short-term store (6.75× latency / 7× energy in the paper's measurement)."
    );
}
