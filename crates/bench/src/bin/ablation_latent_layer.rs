//! Ablation: **where to cut the frozen trunk** — the paper's latent-layer
//! choice (§IV-A: "We experiment with the last few layers as the latent
//! layer to keep the training overhead minimal … we choose layer 21").
//!
//! A fixed network chain `96 → 88 → 80 → 72 → [64 → classes]` is split at
//! different depths: everything before the cut is frozen (the extractor),
//! everything after trains online. Earlier cuts mean larger latents to
//! store and more parameters to train per step; later cuts shrink both but
//! limit adaptability.
//!
//! Usage: `cargo run --release -p chameleon-bench --bin
//! ablation_latent_layer [--runs N]` (default 3).

use chameleon_bench::report::Table;
use chameleon_bench::suite::{runs_from_args, seeds};
use chameleon_core::{Chameleon, ChameleonConfig, ModelConfig, Strategy, Trainer};
use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};

fn main() {
    let runs = runs_from_args(3);
    let seed_list = seeds(runs);

    let spec = DatasetSpec::core50();
    let scenario = DomainIlScenario::generate(&spec, 0xDA7A);
    let trainer = Trainer::new(StreamConfig::default());

    // The full chain after the raw input; the cut index chooses how many
    // stages stay frozen.
    const CHAIN: [usize; 4] = [88, 80, 72, 64];

    println!("# Ablation — frozen/trainable cut depth (CORe50 synthetic)\n");
    println!(
        "{runs} runs per row. 'Head params' is the per-step training cost; \n\
         'latent floats' the per-sample replay storage at that cut.\n"
    );

    let mut table = Table::new(&[
        "Cut (frozen stages)",
        "Latent floats",
        "Head params",
        "Acc_all",
    ]);

    for cut in 1..=CHAIN.len() {
        let latent_dim = CHAIN[cut - 1];
        let extractor_hidden: Vec<usize> = CHAIN[..cut - 1].to_vec();
        let head_hidden: Vec<usize> = CHAIN[cut..].to_vec();
        let model = ModelConfig::for_spec(&spec)
            .with_latent_dim(latent_dim)
            .with_extractor_hidden(extractor_hidden)
            .with_hidden(head_hidden.clone());
        let head_params = model.build_head(0).parameter_count();

        let agg = trainer.run_many(
            &scenario,
            |seed| -> Box<dyn Strategy> {
                Box::new(Chameleon::new(&model, ChameleonConfig::default(), seed))
            },
            &seed_list,
        );
        table.row_owned(vec![
            format!("{cut} of {}", CHAIN.len()),
            latent_dim.to_string(),
            head_params.to_string(),
            agg.acc_all.to_string(),
        ]);
        eprintln!("  cut {cut} done");
    }

    println!("{}", table.render());
    println!(
        "Training overhead and replay storage fall with cut depth, while\n\
         accuracy falls too — each extra *frozen random* stage loses class\n\
         information that the trainable part can no longer recover. The paper\n\
         faces the same trade with a gentler slope (its trunk is pretrained,\n\
         so deeper features stay discriminative) and picks the deepest cut\n\
         whose accuracy is not yet degraded: layer 21 of 27."
    );
}
