//! Extension: **memory-fault robustness** — how gracefully each replay
//! method degrades as bit upsets accumulate in its resident stores.
//!
//! Sweeps a DRAM bit-flip rate (SRAM derived via the fixed hierarchy
//! ratio) across Chameleon (quarantine on and off), ER, and Latent Replay,
//! and emits the accuracy-degradation curves as JSON to
//! `results/robustness_report.json` alongside a markdown summary on
//! stdout.
//!
//! Usage: `cargo run --release -p chameleon-bench --bin robustness_report
//! [--runs N]` (default 2 seeds per point).

use std::fmt::Write as _;

use chameleon_bench::report::Table;
use chameleon_bench::suite::runs_from_args;
use chameleon_core::{Chameleon, ChameleonConfig, Er, LatentReplay, ModelConfig, Trainer};
use chameleon_faults::{FaultInjector, FaultPlan};
use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};
use chameleon_tensor::stats::MeanStd;

/// DRAM bit-flip rates swept, in flips per stored bit per stream sample.
/// Zero anchors the clean baseline; the nonzero points trace the curve.
const RATES: [f64; 4] = [0.0, 1e-6, 1e-5, 1e-4];

const BUFFER: usize = 100;

struct Point {
    dram_rate: f64,
    acc: MeanStd,
    bits_flipped: u64,
    evictions: u64,
    rebuilds: u64,
}

struct Curve {
    method: &'static str,
    quarantine: Option<bool>,
    points: Vec<Point>,
}

fn chameleon_variant(model: &ModelConfig, quarantine: bool, seed: u64) -> Chameleon {
    let config = ChameleonConfig {
        long_term_capacity: BUFFER,
        quarantine,
        ..ChameleonConfig::default()
    };
    Chameleon::new(model, config, seed)
}

fn main() {
    let seeds = runs_from_args(2) as u64;
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 0xDA7A);
    let model = ModelConfig::for_spec(&spec);
    let trainer = Trainer::new(StreamConfig::default());

    println!(
        "# Memory-fault robustness ({} synthetic, {seeds} seeds per point)\n",
        spec.name
    );

    let variants: [(&'static str, Option<bool>); 4] = [
        ("Chameleon", Some(true)),
        ("Chameleon", Some(false)),
        ("ER", None),
        ("Latent Replay", None),
    ];

    let mut curves = Vec::new();
    for (method, quarantine) in variants {
        let mut points = Vec::new();
        for &rate in &RATES {
            let mut accs = Vec::new();
            let mut bits_flipped = 0;
            let mut evictions = 0;
            let mut rebuilds = 0;
            for seed in 1..=seeds {
                let mut injector = FaultInjector::new(FaultPlan::bit_flips(seed * 31 + 7, rate));
                let acc = match (method, quarantine) {
                    ("Chameleon", Some(q)) => {
                        let mut c = chameleon_variant(&model, q, seed);
                        let report =
                            trainer.run_with_faults(&scenario, &mut c, seed, &mut injector);
                        let r = c.resilience();
                        evictions += r.short_term_evictions + r.long_term_evictions;
                        rebuilds += r.prototype_rebuilds;
                        report.acc_all
                    }
                    ("ER", _) => {
                        let mut er = Er::new(&model, BUFFER, seed);
                        trainer
                            .run_with_faults(&scenario, &mut er, seed, &mut injector)
                            .acc_all
                    }
                    _ => {
                        let mut lr = LatentReplay::new(&model, BUFFER, seed);
                        trainer
                            .run_with_faults(&scenario, &mut lr, seed, &mut injector)
                            .acc_all
                    }
                };
                accs.push(acc);
                bits_flipped += injector.stats().bits_flipped;
            }
            points.push(Point {
                dram_rate: rate,
                acc: MeanStd::from_samples(&accs),
                bits_flipped,
                evictions,
                rebuilds,
            });
        }
        let label = match quarantine {
            Some(true) => format!("{method} (quarantine)"),
            Some(false) => format!("{method} (no quarantine)"),
            None => method.to_string(),
        };
        eprintln!("  {label} done");
        curves.push(Curve {
            method,
            quarantine,
            points,
        });
    }

    let mut table = Table::new(&["Method", "clean", "1e-6", "1e-5", "1e-4", "drop @1e-4"]);
    for curve in &curves {
        let label = match curve.quarantine {
            Some(true) => format!("{} (quarantine)", curve.method),
            Some(false) => format!("{} (no quarantine)", curve.method),
            None => curve.method.to_string(),
        };
        let clean = curve.points[0].acc.mean;
        let mut cells = vec![label];
        for p in &curve.points {
            cells.push(format!("{:.1}", p.acc.mean));
        }
        cells.push(format!(
            "{:.1}",
            clean - curve.points.last().expect("nonempty").acc.mean
        ));
        table.row_owned(cells);
    }
    println!("{}", table.render());
    println!(
        "Degradation = clean accuracy minus accuracy at the given DRAM\n\
         bit-flip rate (SRAM rate 16× lower). Quarantine evicts samples whose\n\
         checksums fail before training on them; without it, corrupted\n\
         latents feed the head directly."
    );

    let json = render_json(spec.name, seeds, &curves);
    let path = "results/robustness_report.json";
    if let Err(e) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json)) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("  wrote {path}");
}

fn render_json(dataset: &str, seeds: u64, curves: &[Curve]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"dataset\": \"{dataset}\",");
    let _ = writeln!(out, "  \"seeds\": {seeds},");
    let _ = writeln!(
        out,
        "  \"dram_to_sram_ratio\": {},",
        chameleon_faults::DRAM_TO_SRAM_RATIO
    );
    let _ = writeln!(out, "  \"curves\": [");
    for (i, curve) in curves.iter().enumerate() {
        let clean = curve.points[0].acc.mean;
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"method\": \"{}\",", curve.method);
        let _ = match curve.quarantine {
            Some(q) => writeln!(out, "      \"quarantine\": {q},"),
            None => writeln!(out, "      \"quarantine\": null,"),
        };
        let _ = writeln!(out, "      \"points\": [");
        for (j, p) in curve.points.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{\"dram_rate\": {:e}, \"acc_all_mean\": {:.4}, \"acc_all_std\": {:.4}, \
                 \"degradation\": {:.4}, \"bits_flipped\": {}, \"corrupt_evictions\": {}, \
                 \"prototype_rebuilds\": {}}}{}",
                p.dram_rate,
                p.acc.mean,
                p.acc.std,
                clean - p.acc.mean,
                p.bits_flipped,
                p.evictions,
                p.rebuilds,
                if j + 1 < curve.points.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "      ]");
        let _ = writeln!(out, "    }}{}", if i + 1 < curves.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}
