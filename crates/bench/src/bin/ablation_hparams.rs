//! Ablation: Chameleon's hyperparameters — the allocation exponent `ρ`
//! (Eq. 2), the α/β mixture (Eq. 4), the long-term access period `h`, and
//! the learning-window length (DESIGN.md, "Hyperparameters").
//!
//! Usage: `cargo run --release -p chameleon-bench --bin ablation_hparams
//! [--runs N]` (default 5).

use chameleon_bench::report::Table;
use chameleon_bench::suite::{runs_from_args, seeds};
use chameleon_core::{Chameleon, ChameleonConfig, ModelConfig, Strategy, Trainer};
use chameleon_stream::{DatasetSpec, DomainIlScenario, PreferenceProfile, StreamConfig};

fn main() {
    let runs = runs_from_args(5);
    let seed_list = seeds(runs);

    let spec = DatasetSpec::core50();
    let scenario = DomainIlScenario::generate(&spec, 0xDA7A);
    let model = ModelConfig::for_spec(&spec);
    // Hyperparameters of the user-affinity path only matter on a skewed
    // stream, so the whole sweep runs in the personalization setting.
    let trainer = Trainer::new(StreamConfig {
        preference: PreferenceProfile::Skewed {
            preferred: vec![0, 1, 2, 3, 4],
            boost: 8.0,
        },
        ..StreamConfig::default()
    });

    let evaluate = |label: String, config: ChameleonConfig, table: &mut Table| {
        let agg = trainer.run_many(
            &scenario,
            |seed| -> Box<dyn Strategy> { Box::new(Chameleon::new(&model, config.clone(), seed)) },
            &seed_list,
        );
        let pref: f32 = agg
            .runs
            .iter()
            .map(|r| r.class_subset_accuracy(&[0, 1, 2, 3, 4]))
            .sum::<f32>()
            / agg.runs.len() as f32;
        table.row_owned(vec![
            label.clone(),
            agg.acc_all.to_string(),
            format!("{pref:.2}"),
        ]);
        eprintln!("  {label} done");
    };

    println!("# Ablation — Chameleon hyperparameters (CORe50 synthetic, skewed stream)\n");
    println!("{runs} runs per cell.\n");

    println!("## Allocation exponent ρ (Eq. 2)\n");
    let mut t = Table::new(&["rho", "Acc_all", "Pref acc"]);
    for rho in [0.0, 0.25, 0.5, 0.75, 1.0] {
        evaluate(
            format!("{rho:.2}"),
            ChameleonConfig {
                rho,
                ..ChameleonConfig::default()
            },
            &mut t,
        );
    }
    println!("{}", t.render());

    println!("## α/β mixture (Eq. 4)\n");
    let mut t = Table::new(&["alpha/beta", "Acc_all", "Pref acc"]);
    for (alpha, beta) in [(1.0, 0.0), (0.7, 0.3), (0.5, 0.5), (0.3, 0.7), (0.0, 1.0)] {
        evaluate(
            format!("{alpha:.1}/{beta:.1}"),
            ChameleonConfig {
                alpha,
                beta,
                ..ChameleonConfig::default()
            },
            &mut t,
        );
    }
    println!("{}", t.render());

    println!("## Long-term access period h (samples)\n");
    let mut t = Table::new(&["h", "Acc_all", "Pref acc"]);
    for h in [10usize, 20, 50, 100] {
        evaluate(
            h.to_string(),
            ChameleonConfig {
                long_term_period: h,
                ..ChameleonConfig::default()
            },
            &mut t,
        );
    }
    println!("{}", t.render());
    println!(
        "h trades accuracy against off-chip traffic: every halving of h doubles\n\
         DRAM accesses (Table II's energy column). The paper fixes h at ten.\n\
         (Values of h below the stream batch size are indistinguishable: the\n\
         long-term store is touched at most once per observed batch.)\n"
    );

    println!("## Learning-window length (samples)\n");
    let mut t = Table::new(&["window", "Acc_all", "Pref acc"]);
    for window in [100usize, 400, 1500, 6000] {
        evaluate(
            window.to_string(),
            ChameleonConfig {
                learning_window: window,
                ..ChameleonConfig::default()
            },
            &mut t,
        );
    }
    println!("{}", t.render());
    println!(
        "Short windows recalibrate user preferences quickly (paper: ~1500 images)\n\
         but estimate Δ_k from fewer samples."
    );
}
