//! Regenerates **Table I**: `Acc_all` (mean ± std over repeated runs) and
//! memory overhead for every method × buffer size on the synthetic
//! OpenLORIS and CORe50 benchmarks.
//!
//! Usage: `cargo run --release -p chameleon-bench --bin table1_accuracy
//! [--runs N]` (default 10 runs, matching the paper).

use std::collections::BTreeMap;
use std::time::Instant;

use chameleon_bench::report::Table;
use chameleon_bench::suite::{runs_from_args, seeds, table1_methods};
use chameleon_core::{ModelConfig, Trainer};
use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};

/// Paper reference values (OpenLORIS, CORe50) for context in the output.
fn paper_reference() -> BTreeMap<&'static str, (f64, f64)> {
    BTreeMap::from([
        ("JOINT", (97.14, 81.48)),
        ("Finetuning", (65.97, 16.86)),
        ("EWC++", (61.89, 23.22)),
        ("LwF", (72.57, 27.91)),
        ("SLDA", (90.17, 77.20)),
        ("GSS (100)", (91.20, 43.51)),
        ("GSS (200)", (92.00, 47.47)),
        ("GSS (500)", (91.99, 48.57)),
        ("GSS (1500)", (95.50, 53.19)),
        ("ER (100)", (90.45, 32.61)),
        ("ER (200)", (90.68, 36.07)),
        ("ER (500)", (93.72, 62.31)),
        ("ER (1500)", (95.50, 63.33)),
        ("DER (100)", (90.33, 58.72)),
        ("DER (200)", (92.12, 62.15)),
        ("DER (500)", (94.37, 67.35)),
        ("DER (1500)", (95.50, 68.73)),
        ("Latent Replay (100)", (90.57, 71.89)),
        ("Latent Replay (200)", (92.32, 72.87)),
        ("Latent Replay (500)", (94.89, 75.43)),
        ("Latent Replay (1500)", (95.50, 79.07)),
        ("Chameleon (Ms=10, Ml=100)", (96.10, 79.48)),
        ("Chameleon (Ms=10, Ml=200)", (96.43, 79.56)),
        ("Chameleon (Ms=10, Ml=500)", (96.70, 79.86)),
        ("Chameleon (Ms=10, Ml=1500)", (97.10, 79.92)),
    ])
}

fn main() {
    let runs = runs_from_args(10);
    let seed_list = seeds(runs);
    let reference = paper_reference();

    println!("# Table I — Chameleon vs baselines (synthetic benchmarks)\n");
    println!("{runs} runs per cell; mean ± std of Acc_all (%).\n");

    let mut table = Table::new(&[
        "Method",
        "Memory (MB)",
        "OpenLORIS Acc_all",
        "OpenLORIS (paper)",
        "CORe50 Acc_all",
        "CORe50 (paper)",
    ]);

    let specs = [DatasetSpec::openloris(), DatasetSpec::core50()];
    let scenarios: Vec<DomainIlScenario> = specs
        .iter()
        .map(|spec| DomainIlScenario::generate(spec, 0xDA7A))
        .collect();
    let models: Vec<ModelConfig> = specs.iter().map(ModelConfig::for_spec).collect();
    let trainer = Trainer::new(StreamConfig::default());

    for method in table1_methods() {
        let started = Instant::now();
        let mut cells: Vec<String> = vec![method.label.clone()];
        let mut memory = None;
        let mut accs = Vec::new();
        for (scenario, model) in scenarios.iter().zip(&models) {
            let agg = trainer.run_many(scenario, |seed| method.build(model, seed), &seed_list);
            memory.get_or_insert(agg.memory_overhead_mb);
            accs.push(agg.acc_all);
        }
        let mem = memory.expect("two datasets evaluated");
        let mem_str = match method.kind {
            chameleon_bench::suite::MethodKind::Joint
            | chameleon_bench::suite::MethodKind::Finetune => "—".to_string(),
            _ => format!("{mem:.1}"),
        };
        let (p_ol, p_c50) = reference
            .get(method.label.as_str())
            .copied()
            .unwrap_or((f64::NAN, f64::NAN));
        cells.push(mem_str);
        cells.push(accs[0].to_string());
        cells.push(format!("{p_ol:.2}"));
        cells.push(accs[1].to_string());
        cells.push(format!("{p_c50:.2}"));
        table.row_owned(cells);
        eprintln!(
            "  {} done in {:.1}s",
            method.label,
            started.elapsed().as_secs_f32()
        );
    }

    println!("{}", table.render());
    println!("Paper columns reproduced from Aggarwal et al., DATE 2023, Table I.");
}
