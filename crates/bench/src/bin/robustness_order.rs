//! Extension: **domain-order robustness** — Table I is measured with one
//! canonical domain sequence; a continual learner should not depend on a
//! lucky ordering. This study repeats CORe50 with shuffled domain orders
//! and reports the spread.
//!
//! Usage: `cargo run --release -p chameleon-bench --bin robustness_order
//! [--runs N]` (default 6 orders).

use chameleon_bench::report::Table;
use chameleon_bench::suite::runs_from_args;
use chameleon_core::{
    Chameleon, ChameleonConfig, Finetune, LatentReplay, ModelConfig, Slda, SldaConfig, Strategy,
    Trainer,
};
use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};
use chameleon_tensor::stats::MeanStd;
use chameleon_tensor::Prng;

type StrategyBuilder<'a> = Box<dyn Fn(u64) -> Box<dyn Strategy> + 'a>;

fn main() {
    let orders = runs_from_args(6);
    let spec = DatasetSpec::core50();
    let scenario = DomainIlScenario::generate(&spec, 0xDA7A);
    let model = ModelConfig::for_spec(&spec);
    let trainer = Trainer::new(StreamConfig::default());

    println!("# Domain-order robustness (CORe50 synthetic, {orders} shuffled orders)\n");

    let mut table = Table::new(&["Method", "Acc_all over orders", "min", "max"]);
    let builders: Vec<(&str, StrategyBuilder)> = vec![
        (
            "Finetuning",
            Box::new(|s| Box::new(Finetune::new(&model, s))),
        ),
        (
            "SLDA",
            Box::new(|s| Box::new(Slda::new(&model, SldaConfig::default(), s))),
        ),
        (
            "Latent Replay (500)",
            Box::new(|s| Box::new(LatentReplay::new(&model, 500, s))),
        ),
        (
            "Chameleon (10+100)",
            Box::new(|s| Box::new(Chameleon::new(&model, ChameleonConfig::default(), s))),
        ),
    ];

    for (name, build) in builders {
        let mut accs = Vec::with_capacity(orders);
        for trial in 0..orders as u64 {
            let mut order: Vec<usize> = (0..spec.num_domains).collect();
            Prng::new(100 + trial).shuffle(&mut order);
            let mut strategy = build(trial + 1);
            let report = trainer.run_ordered(&scenario, strategy.as_mut(), &order, trial + 1);
            accs.push(report.acc_all);
        }
        let summary = MeanStd::from_samples(&accs);
        let min = accs.iter().copied().fold(f32::INFINITY, f32::min);
        let max = accs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        table.row_owned(vec![
            name.to_string(),
            summary.to_string(),
            format!("{min:.1}"),
            format!("{max:.1}"),
        ]);
        eprintln!("  {name} done");
    }

    println!("{}", table.render());
    println!(
        "A robust method shows a small min–max spread: its final model should\n\
         not care which context arrived last. Recency-biased finetuning is the\n\
         expected outlier; replay and SLDA should be order-stable."
    );
}
