//! Regenerates **Figure 2**: accuracy of each continual-learning method as
//! a function of its replay-memory budget (MB) on the synthetic CORe50-NI
//! benchmark.
//!
//! Usage: `cargo run --release -p chameleon-bench --bin
//! fig2_accuracy_vs_memory [--runs N]` (default 5).

use chameleon_bench::report::Table;
use chameleon_bench::suite::{runs_from_args, seeds, MethodKind, MethodSpec, BUFFER_SIZES};
use chameleon_core::{ModelConfig, Trainer};
use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};

/// Renders an ASCII scatter of accuracy (y) vs log-memory (x), one glyph
/// per method — the figure itself, readable in a terminal.
fn ascii_plot(points: &[(char, f64, f32)]) -> String {
    const WIDTH: usize = 64;
    const HEIGHT: usize = 20;
    let (min_mb, max_mb) = (0.5f64, 1000.0f64);
    let mut grid = vec![vec![' '; WIDTH]; HEIGHT];
    for &(glyph, mb, acc) in points {
        let x = ((mb.max(min_mb).log10() - min_mb.log10()) / (max_mb.log10() - min_mb.log10())
            * (WIDTH - 1) as f64)
            .round()
            .clamp(0.0, (WIDTH - 1) as f64) as usize;
        let y = ((acc as f64 / 100.0) * (HEIGHT - 1) as f64)
            .round()
            .clamp(0.0, (HEIGHT - 1) as f64) as usize;
        grid[HEIGHT - 1 - y][x] = glyph;
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let acc_label = 100 - i * 100 / (HEIGHT - 1);
        out.push_str(&format!("{acc_label:>3} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("    +");
    out.push_str(&"-".repeat(WIDTH));
    out.push_str("\n     0.5 MB");
    out.push_str(&" ".repeat(WIDTH - 24));
    out.push_str("1000 MB (log)\n");
    out
}

fn main() {
    let runs = runs_from_args(5);
    let seed_list = seeds(runs);

    let spec = DatasetSpec::core50();
    let scenario = DomainIlScenario::generate(&spec, 0xDA7A);
    let model = ModelConfig::for_spec(&spec);
    let trainer = Trainer::new(StreamConfig::default());

    println!("# Figure 2 — Accuracy vs memory budget (CORe50-NI synthetic)\n");
    println!("{runs} runs per point. Figure series: one row per (method, budget).\n");

    let mut table = Table::new(&["Method", "Buffer (samples)", "Memory (MB)", "Acc_all (%)"]);
    let mut points: Vec<(char, f64, f32)> = Vec::new();

    // Bufferless references first: finetune's collapse is the floor the
    // figure motivates; SLDA is the strong low-memory baseline.
    for (kind, label) in [
        (MethodKind::Finetune, "Finetuning"),
        (MethodKind::Slda, "SLDA"),
    ] {
        let method = MethodSpec {
            label: label.into(),
            buffer: None,
            kind,
        };
        let agg = trainer.run_many(&scenario, |seed| method.build(&model, seed), &seed_list);
        table.row_owned(vec![
            label.to_string(),
            "—".into(),
            format!("{:.1}", agg.memory_overhead_mb),
            agg.acc_all.to_string(),
        ]);
        points.push((
            label.chars().next().expect("non-empty"),
            agg.memory_overhead_mb,
            agg.acc_all.mean,
        ));
        eprintln!("  {label} done");
    }

    for (kind, name) in [
        (MethodKind::Er, "ER"),
        (MethodKind::Der, "DER"),
        (MethodKind::Gss, "GSS"),
        (MethodKind::LatentReplay, "Latent Replay"),
        (MethodKind::Chameleon, "Chameleon"),
    ] {
        for size in BUFFER_SIZES {
            let method = MethodSpec {
                label: format!("{name} ({size})"),
                buffer: Some(size),
                kind,
            };
            let agg = trainer.run_many(&scenario, |seed| method.build(&model, seed), &seed_list);
            table.row_owned(vec![
                name.to_string(),
                size.to_string(),
                format!("{:.1}", agg.memory_overhead_mb),
                agg.acc_all.to_string(),
            ]);
            let glyph = match kind {
                MethodKind::Er => 'E',
                MethodKind::Der => 'D',
                MethodKind::Gss => 'G',
                MethodKind::LatentReplay => 'L',
                _ => 'C',
            };
            points.push((glyph, agg.memory_overhead_mb, agg.acc_all.mean));
            eprintln!("  {name} ({size}) done");
        }
    }

    println!("{}", table.render());
    println!("Acc_all (%) vs replay memory (MB, log scale)");
    println!("F=Finetuning S=SLDA E=ER D=DER G=GSS L=Latent Replay C=Chameleon\n");
    println!("{}", ascii_plot(&points));
    println!(
        "Shape check vs the paper's Figure 2: finetuning collapses (~17 %), ER/DER\n\
         need large budgets, GSS pays ~10× memory for the same sample count, and\n\
         Chameleon attains the best accuracy-per-MB (paper: ~79.5 % with 0.3 MB\n\
         on-chip + 3.2 MB off-chip)."
    );
}
