//! Extension: cycle-level cross-check of the Table II EdgeTPU column with
//! the uSystolic-style simulator (`chameleon_hw::sim`) — per-layer cycle
//! breakdown of one Chameleon training step on the unary 64×64 array.
//!
//! Usage: `cargo run --release -p chameleon-bench --bin systolic_sim_report`.

use chameleon_bench::report::Table;
use chameleon_hw::sim::{
    backward_stream, gemm_stream, mobilenet_v1_workload, SystolicSim, SystolicSimConfig,
};

fn main() {
    let unary = SystolicSim::new(SystolicSimConfig::edge_tpu());
    let binary = SystolicSim::new(SystolicSimConfig::binary_parallel());

    // The paper's hardware configuration: batch size 1, the trunk frozen
    // through block 11, the tail trained on 1 incoming + 10 short-term +
    // 1 (amortized) long-term rows.
    let (trunk, _) = mobilenet_v1_workload(128, 1, 11);
    let (_, tail12) = mobilenet_v1_workload(128, 12, 11);

    println!("# EdgeTPU cycle-level cross-check (uSystolic-style simulator)\n");
    println!("One Chameleon training step at batch size 1 (12 trained rows).\n");

    let mut table = Table::new(&[
        "Phase",
        "MACs (M)",
        "Unary cycles (k)",
        "Unary ms",
        "Utilization",
        "Binary ms",
    ]);

    let phases: Vec<(&str, Vec<chameleon_hw::sim::Gemm>)> = vec![
        ("trunk forward (frozen)", gemm_stream(&trunk)),
        ("tail forward (12 rows)", gemm_stream(&tail12)),
        ("tail backward (12 rows)", backward_stream(&tail12)),
    ];

    let mut total_unary = 0.0;
    let mut total_binary = 0.0;
    for (name, gemms) in &phases {
        let u = unary.run(gemms);
        let b = binary.run(gemms);
        total_unary += u.latency_ms(400.0);
        total_binary += b.latency_ms(400.0);
        table.row_owned(vec![
            name.to_string(),
            format!("{:.1}", u.macs as f64 / 1e6),
            format!("{:.0}", u.total_cycles as f64 / 1e3),
            format!("{:.2}", u.latency_ms(400.0)),
            format!("{:.1} %", 100.0 * u.utilization_on(64, 64)),
            format!("{:.2}", b.latency_ms(400.0)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "total per image: {total_unary:.1} ms unary (paper: 47 ms measured with\n\
         uSystolic-Sim) vs {total_binary:.1} ms on an idealized binary-parallel\n\
         array — the unary datapath trades latency for its compact PEs.\n"
    );

    println!("## Per-layer hotspots (unary, trunk forward)\n");
    let mut hot = Table::new(&["Layer", "MACs (M)", "ms", "Utilization"]);
    for layer in &trunk {
        let r = unary.run(&layer.gemms);
        hot.row_owned(vec![
            layer.name.clone(),
            format!("{:.1}", r.macs as f64 / 1e6),
            format!("{:.2}", r.latency_ms(400.0)),
            format!("{:.1} %", 100.0 * r.utilization_on(64, 64)),
        ]);
    }
    println!("{}", hot.render());
    println!(
        "Depthwise layers run at a fraction of the pointwise layers' utilization\n\
         — the classic MobileNet-on-systolic pathology the simulator captures."
    );
}
