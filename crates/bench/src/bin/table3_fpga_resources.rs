//! Regenerates **Table III**: ZCU102 resource utilization of the FP16
//! training accelerator, plus a configuration sweep showing how the
//! resource model scales.
//!
//! Usage: `cargo run --release -p chameleon-bench --bin table3_fpga_resources`.

use chameleon_bench::report::Table;
use chameleon_hw::{FpgaConfig, ResourceModel, ResourceUsage, Zcu102};

fn main() {
    let usage = Zcu102::new().resources();

    println!("# Table III — ZCU102 resource utilization\n");
    let mut table = Table::new(&["", "DSP", "BRAM", "LUTs"]);
    table.row_owned(vec![
        "Available".into(),
        ResourceUsage::DSP_AVAILABLE.to_string(),
        ResourceUsage::BRAM_AVAILABLE.to_string(),
        ResourceUsage::LUT_AVAILABLE.to_string(),
    ]);
    table.row_owned(vec![
        "Utilized (model)".into(),
        usage.dsp.to_string(),
        usage.bram.to_string(),
        usage.lut.to_string(),
    ]);
    table.row_owned(vec![
        "Utilized (paper)".into(),
        "1164".into(),
        "632".into(),
        "169428".into(),
    ]);
    table.row_owned(vec![
        "Percentage (model)".into(),
        format!("{:.2} %", usage.dsp_pct()),
        format!("{:.2} %", usage.bram_pct()),
        format!("{:.2} %", usage.lut_pct()),
    ]);
    table.row_owned(vec![
        "Percentage (paper)".into(),
        "46.19 %".into(),
        "96.34 %".into(),
        "72.50 %".into(),
    ]);
    println!("{}", table.render());

    println!("## Configuration sweep (resource-model ablation)\n");
    let mut sweep = Table::new(&["MAC array", "ST buffer KB", "DSP", "BRAM", "LUTs", "Fits?"]);
    for (rows, cols) in [(16, 16), (32, 32), (48, 48), (64, 64)] {
        for st_kb in [320usize, 960] {
            let config = FpgaConfig {
                mac_rows: rows,
                mac_cols: cols,
                short_term_buffer_kb: st_kb,
                ..FpgaConfig::default()
            };
            let u = ResourceModel::new(config).utilization();
            sweep.row_owned(vec![
                format!("{rows}x{cols}"),
                st_kb.to_string(),
                u.dsp.to_string(),
                u.bram.to_string(),
                u.lut.to_string(),
                if u.fits() { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    println!("{}", sweep.render());
    println!(
        "The default 32×32 FP16 array with a 320 KB short-term store (10 latents)\n\
         reproduces the paper's utilization; the sweep shows the BRAM wall that\n\
         forces every larger replay buffer off-chip — the premise of Chameleon's\n\
         dual-memory design."
    );
}
