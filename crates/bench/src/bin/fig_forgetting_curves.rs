//! Extension figure: **forgetting curves** — `Acc_all` measured after each
//! domain, showing when each method loses earlier domains and how replay
//! arrests the decay. (The paper reports only the final `Acc_all`; this is
//! the time-resolved view of the same runs.)
//!
//! Usage: `cargo run --release -p chameleon-bench --bin
//! fig_forgetting_curves`.

use chameleon_bench::report::Table;
use chameleon_core::{
    Chameleon, ChameleonConfig, Finetune, LatentReplay, ModelConfig, Slda, SldaConfig, Strategy,
    Trainer,
};
use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};

fn main() {
    let spec = DatasetSpec::core50();
    let scenario = DomainIlScenario::generate(&spec, 0xDA7A);
    let model = ModelConfig::for_spec(&spec);
    let trainer = Trainer::new(StreamConfig::default());

    println!("# Forgetting curves — Acc_all after each domain (CORe50 synthetic)\n");

    let strategies: Vec<(&str, Box<dyn Strategy>)> = vec![
        ("Finetuning", Box::new(Finetune::new(&model, 1))),
        (
            "Latent Replay (500)",
            Box::new(LatentReplay::new(&model, 500, 1)),
        ),
        (
            "SLDA",
            Box::new(Slda::new(&model, SldaConfig::default(), 1)),
        ),
        (
            "Chameleon (10+100)",
            Box::new(Chameleon::new(&model, ChameleonConfig::default(), 1)),
        ),
    ];

    let mut headers: Vec<String> = vec!["Method".into()];
    headers.extend((0..spec.num_domains).map(|d| format!("after D{d}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let mut first_domain_rows = Vec::new();
    for (name, mut strategy) in strategies {
        let reports = trainer.run_with_domain_evals(&scenario, strategy.as_mut(), 1);
        let mut cells = vec![name.to_string()];
        cells.extend(reports.iter().map(|r| format!("{:.1}", r.acc_all)));
        table.row_owned(cells);
        // Track accuracy on domain 0's test rows over time (pure
        // forgetting signal).
        let d0: Vec<String> = reports
            .iter()
            .map(|r| format!("{:.1}", r.per_domain[0]))
            .collect();
        first_domain_rows.push((name, d0));
        eprintln!("  {name} done");
    }
    println!("{}", table.render());

    println!("## Accuracy on domain 0 only (what is being forgotten)\n");
    let mut d0_table = Table::new(&header_refs);
    for (name, cells) in first_domain_rows {
        let mut row = vec![name.to_string()];
        row.extend(cells);
        d0_table.row_owned(row);
    }
    println!("{}", d0_table.render());
    println!(
        "Finetuning's domain-0 accuracy collapses within a few domains; replay\n\
         slows the decay in proportion to its buffer (Latent Replay 500 retains\n\
         several times more of domain 0 than Chameleon's 110-sample budget),\n\
         and SLDA (no gradient updates) barely forgets by construction."
    );
}
