//! Extension: **fleet throughput** — aggregate stepping rate of the
//! sharded multi-session engine as shard count and session count scale.
//!
//! Each cell runs a fixed workload (every session's full stream, delivered
//! round-robin in small slices) on a `chameleon-fleet` engine and measures
//! wall-clock aggregate batches/sec. The per-shard session-memory budget
//! is sized to the most-loaded shard of the *widest* sharding, so the
//! 4-shard fleet keeps every session resident while the 1-shard fleet
//! hosts the same total working set over budget and thrashes its LRU
//! evict/restore path — the memory-pressure effect sharding exists to
//! relieve. On multi-core hosts, shard parallelism adds on top of this.
//!
//! Emits a markdown table on stdout and the grid as JSON to
//! `results/fleet_throughput.json`.
//!
//! Usage: `cargo run --release -p chameleon-bench --bin fleet_throughput`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use chameleon_bench::report::Table;
use chameleon_core::{ChameleonConfig, Precision};
use chameleon_fleet::{
    FleetConfig, FleetEngine, SessionCommand, SessionEventKind, SessionSpec, UserSession,
};
use chameleon_stream::shapes::NominalShapes;
use chameleon_stream::{DatasetSpec, DomainIlScenario, PreferenceProfile, StreamConfig};

const SESSION_COUNTS: [u64; 2] = [16, 64];
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
/// Long-term capacity per session — sized up so evict/restore moves a
/// meaningful amount of state.
const BUFFER: usize = 500;
/// Batches delivered per `Step` command (small slices force interleaving).
const STEP_BATCHES: usize = 1;
const ASSIGNMENT_SEED: u64 = 9;

struct Cell {
    shards: usize,
    wall_s: f64,
    batches: u64,
    evictions: u64,
    restores: u64,
}

impl Cell {
    fn steps_per_sec(&self) -> f64 {
        self.batches as f64 / self.wall_s.max(1e-9)
    }
}

struct Grid {
    sessions: u64,
    budget_sessions: u64,
    cells: Vec<Cell>,
}

fn user_spec(user: u64, num_classes: usize, precision: Precision) -> SessionSpec {
    let base = (user as usize * 3) % num_classes;
    SessionSpec {
        learner: ChameleonConfig {
            long_term_capacity: BUFFER,
            precision,
            ..ChameleonConfig::default()
        },
        stream: StreamConfig {
            preference: PreferenceProfile::Skewed {
                preferred: vec![base, (base + 1) % num_classes, (base + 2) % num_classes],
                boost: 8.0,
            },
            ..StreamConfig::default()
        },
        learner_seed: user.wrapping_mul(31) ^ 5,
        stream_seed: user.wrapping_add(0x5EED),
    }
}

/// Most sessions any single shard hosts under the widest sharding — the
/// budget is sized to exactly that, with a small margin.
fn max_shard_load(scenario: &Arc<DomainIlScenario>, sessions: u64, shards: usize) -> u64 {
    let probe = FleetEngine::new(
        Arc::clone(scenario),
        FleetConfig {
            num_shards: shards,
            assignment_seed: ASSIGNMENT_SEED,
            ..FleetConfig::default()
        },
    );
    let mut loads = vec![0u64; shards];
    for user in 0..sessions {
        loads[probe.shard_of(user)] += 1;
    }
    loads.into_iter().max().unwrap_or(0)
}

fn run_cell(
    scenario: &Arc<DomainIlScenario>,
    sessions: u64,
    shards: usize,
    budget_bytes: u64,
    precision: Precision,
) -> Cell {
    let num_classes = scenario.spec().num_classes;
    let mut engine = FleetEngine::new(
        Arc::clone(scenario),
        FleetConfig {
            num_shards: shards,
            budget_bytes,
            assignment_seed: ASSIGNMENT_SEED,
            ..FleetConfig::default()
        },
    );
    for user in 0..sessions {
        engine
            .create_blocking(user, user_spec(user, num_classes, precision))
            .expect("create session");
    }
    engine.drain_pending();

    let start = Instant::now();
    let mut live: Vec<u64> = (0..sessions).collect();
    while !live.is_empty() {
        for &user in &live {
            engine
                .command_blocking(
                    user,
                    SessionCommand::Step {
                        batches: STEP_BATCHES,
                    },
                )
                .expect("step session");
        }
        for event in engine.drain_pending() {
            match event.kind {
                SessionEventKind::Stepped { done: true, .. } => {
                    live.retain(|&u| u != event.session);
                }
                SessionEventKind::Failed(reason) => panic!("session failed: {reason}"),
                _ => {}
            }
        }
    }
    let wall_s = start.elapsed().as_secs_f64();

    let metrics = engine.metrics();
    Cell {
        shards,
        wall_s,
        batches: metrics.batches(),
        evictions: metrics.evictions(),
        restores: metrics.restores(),
    }
}

fn main() {
    let spec = DatasetSpec::core50_tiny();
    let scenario = Arc::new(DomainIlScenario::generate(&spec, 0xDA7A));

    println!(
        "# Fleet throughput ({} synthetic, buffer {BUFFER}, {STEP_BATCHES}-batch slices)\n",
        spec.name
    );

    // The full grid runs at both codec precisions: f32 is the baseline,
    // int8 shows the latent codec's bytes-per-session reduction with no
    // stepping-rate regression. Each precision's budgets are priced with
    // its *own* session footprint so both see the same eviction pressure
    // (~4x budget at 1 shard, fully resident at 4).
    let mut sweeps: Vec<(Precision, u64, Vec<Grid>)> = Vec::new();
    for precision in [Precision::F32, Precision::Int8] {
        // One session's nominal resident footprint prices the budgets.
        let session_bytes = UserSession::new(
            0,
            user_spec(0, spec.num_classes, precision),
            Arc::clone(&scenario),
            None,
        )
        .resident_bytes();

        let mut grids = Vec::new();
        for &sessions in &SESSION_COUNTS {
            let widest = *SHARD_COUNTS.iter().max().expect("nonempty");
            let budget_sessions = max_shard_load(&scenario, sessions, widest);
            let budget_bytes = session_bytes * budget_sessions + session_bytes / 2;
            let mut cells = Vec::new();
            for &shards in &SHARD_COUNTS {
                let cell = run_cell(&scenario, sessions, shards, budget_bytes, precision);
                eprintln!(
                    "  [{precision}] {sessions} sessions × {shards} shard(s): {:.0} steps/s, {} evictions",
                    cell.steps_per_sec(),
                    cell.evictions
                );
                cells.push(cell);
            }
            grids.push(Grid {
                sessions,
                budget_sessions,
                cells,
            });
        }
        sweeps.push((precision, session_bytes, grids));
    }

    for (precision, session_bytes, grids) in &sweeps {
        println!("## Precision {precision} ({session_bytes} bytes/session)\n");
        let mut table = Table::new(&[
            "Sessions",
            "Shards",
            "Wall (s)",
            "Steps/s",
            "Evictions",
            "Restores",
            "Speedup vs 1 shard",
        ]);
        for grid in grids {
            let base = grid.cells[0].steps_per_sec();
            for cell in &grid.cells {
                table.row_owned(vec![
                    grid.sessions.to_string(),
                    cell.shards.to_string(),
                    format!("{:.2}", cell.wall_s),
                    format!("{:.0}", cell.steps_per_sec()),
                    cell.evictions.to_string(),
                    cell.restores.to_string(),
                    format!("{:.2}x", cell.steps_per_sec() / base.max(1e-9)),
                ]);
            }
        }
        println!("{}", table.render());
    }
    let shapes = NominalShapes::for_classes(spec.num_classes);
    let elems = shapes.latent_elems();
    println!(
        "Budget per shard = the most-loaded shard of the 4-shard split\n\
         (+50% of one session), so 4 shards keep every session resident\n\
         while 1 shard round-robins a working set ~4x its budget through\n\
         LRU evict/restore. The speedup shown is this memory-pressure\n\
         relief; on multi-core hosts shard parallelism adds on top.\n\
         Serialized latents: {} B/sample at f32 vs {} B at int8 ({:.2}x).",
        Precision::F32.packed_len(elems),
        Precision::Int8.packed_len(elems),
        Precision::F32.packed_len(elems) as f64 / Precision::Int8.packed_len(elems) as f64
    );

    let json = render_json(spec.name, elems, &sweeps);
    let path = "results/fleet_throughput.json";
    if let Err(e) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json)) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("  wrote {path}");
}

fn render_json(
    dataset: &str,
    latent_elems: usize,
    sweeps: &[(Precision, u64, Vec<Grid>)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"dataset\": \"{dataset}\",");
    let _ = writeln!(out, "  \"buffer\": {BUFFER},");
    let _ = writeln!(out, "  \"step_batches\": {STEP_BATCHES},");
    let _ = writeln!(
        out,
        "  \"latent_bytes_per_sample_f32\": {},",
        Precision::F32.packed_len(latent_elems)
    );
    let _ = writeln!(
        out,
        "  \"latent_bytes_per_sample_int8\": {},",
        Precision::Int8.packed_len(latent_elems)
    );
    let _ = writeln!(
        out,
        "  \"latent_shrink\": {:.2},",
        Precision::F32.packed_len(latent_elems) as f64
            / Precision::Int8.packed_len(latent_elems) as f64
    );
    let _ = writeln!(
        out,
        "  \"note\": \"budget per shard = max shard load of the widest sharding; speedup is \
         LRU-churn relief and is measured on whatever host ran this, with thread parallelism \
         on top where cores allow; each precision sweep prices its budget with its own \
         session footprint so both see the same eviction pressure\","
    );
    let _ = writeln!(out, "  \"sweeps\": [");
    for (s, (precision, session_bytes, grids)) in sweeps.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"precision\": \"{precision}\",");
        let _ = writeln!(out, "      \"session_bytes\": {session_bytes},");
        render_grids(&mut out, grids);
        let _ = writeln!(out, "    }}{}", if s + 1 < sweeps.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn render_grids(out: &mut String, grids: &[Grid]) {
    let _ = writeln!(out, "      \"grids\": [");
    for (i, grid) in grids.iter().enumerate() {
        let base = grid.cells[0].steps_per_sec();
        let _ = writeln!(out, "        {{");
        let _ = writeln!(out, "          \"sessions\": {},", grid.sessions);
        let _ = writeln!(
            out,
            "          \"budget_sessions_per_shard\": {},",
            grid.budget_sessions
        );
        let _ = writeln!(out, "          \"cells\": [");
        for (j, cell) in grid.cells.iter().enumerate() {
            let _ = writeln!(
                out,
                "            {{\"shards\": {}, \"wall_s\": {:.4}, \"batches\": {}, \
                 \"steps_per_sec\": {:.2}, \"evictions\": {}, \"restores\": {}, \
                 \"speedup_vs_1_shard\": {:.3}}}{}",
                cell.shards,
                cell.wall_s,
                cell.batches,
                cell.steps_per_sec(),
                cell.evictions,
                cell.restores,
                cell.steps_per_sec() / base.max(1e-9),
                if j + 1 < grid.cells.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "          ]");
        let _ = writeln!(
            out,
            "        }}{}",
            if i + 1 < grids.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "      ]");
}
