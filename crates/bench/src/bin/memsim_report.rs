//! Extension: **DRAM-level view of the replay traffic** — prices one
//! training step's replay fetches through the open-page DRAM timing model
//! (`chameleon_hw::memsim`), showing *why* scattered reservoir reads cost
//! more per byte than streaming and why the short-term store must live
//! on-chip.
//!
//! Usage: `cargo run --release -p chameleon-bench --bin memsim_report`.

use chameleon_bench::report::Table;
use chameleon_hw::memsim::{AccessPattern, DramStats, MemoryHierarchy};

const LATENT_BYTES: usize = 32 * 1024;
const CLOCK_MHZ: f64 = 150.0;

fn us(cycles: u64) -> String {
    format!("{:.1}", cycles as f64 / CLOCK_MHZ)
}

fn main() {
    println!("# DRAM timing view of replay traffic (ZCU102 memory system)\n");
    println!(
        "Per incoming image: ten 32 KiB latent replay elements, fetched either\n\
         scattered from a 48 MB reservoir (Latent Replay), streamed (an idealized\n\
         prefetch-friendly layout), or served on-chip (Chameleon's short-term\n\
         store, zero DRAM cycles) plus one amortized off-chip long-term access.\n"
    );

    let mut table = Table::new(&[
        "Replay source",
        "DRAM cycles",
        "µs @150 MHz",
        "Exposed misses",
        "Hidden misses",
        "Hit rate",
    ]);

    let row = |name: &str, cycles: u64, stats: DramStats, table: &mut Table| {
        table.row_owned(vec![
            name.to_string(),
            cycles.to_string(),
            us(cycles),
            stats.row_misses.to_string(),
            stats.hidden_misses.to_string(),
            format!("{:.1} %", 100.0 * stats.hit_rate()),
        ]);
    };

    // Latent Replay: 10 scattered reads + 1 scattered write-back.
    let mut lr = MemoryHierarchy::zcu102();
    let mut cycles = lr.replay_fetch(11, LATENT_BYTES, AccessPattern::Scattered { seed: 7 });
    row(
        "Latent Replay (scattered ×11)",
        cycles,
        lr.dram.stats(),
        &mut table,
    );

    // The same bytes as one predictable stream.
    let mut streamed = MemoryHierarchy::zcu102();
    cycles = streamed.replay_fetch(11, LATENT_BYTES, AccessPattern::Sequential { start: 0 });
    row(
        "Same bytes, streamed",
        cycles,
        streamed.dram.stats(),
        &mut table,
    );

    // Chameleon: ST on-chip (0 DRAM cycles) + 1 amortized LT element.
    let mut chameleon = MemoryHierarchy::zcu102();
    cycles = chameleon.replay_fetch(1, LATENT_BYTES, AccessPattern::Scattered { seed: 7 });
    row(
        "Chameleon (10 on-chip + 1 off-chip)",
        cycles,
        chameleon.dram.stats(),
        &mut table,
    );

    println!("{}", table.render());

    println!("## On-chip placement (scratchpad partitions)\n");
    let mut h = MemoryHierarchy::zcu102();
    h.scratchpad
        .allocate("weight buffer", 2048 * 1024)
        .expect("fits");
    h.scratchpad
        .allocate("activation buffer", 456 * 1024)
        .expect("fits");
    let mut place = Table::new(&["Replay store", "Bytes", "Fits next to the accelerator?"]);
    for (name, samples) in [
        ("Chameleon M_s (10)", 10usize),
        ("M_l = 100", 100),
        ("M_l = 1500", 1500),
    ] {
        let bytes = samples * LATENT_BYTES;
        place.row_owned(vec![
            name.to_string(),
            bytes.to_string(),
            if h.replay_store_fits_on_chip(bytes) {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    println!("{}", place.render());
    println!(
        "Only the ten-sample short-term store fits on-chip beside the weight and\n\
         activation buffers (Table III's 96 % BRAM). Every other replay store is\n\
         forced into DRAM, where each data-dependent fetch pays an exposed\n\
         row-activate — the mechanism behind Table II's traffic costs."
    );
}
