//! Ablation: how a **fixed sample budget** should be split between the
//! on-chip short-term store and the off-chip long-term store
//! (DESIGN.md, "Memory split").
//!
//! The paper fixes `|M_s| = 10` (what fits in the accelerator's BRAM) and
//! scales `|M_l|`; this sweep asks whether that split is the right one by
//! holding `|M_s| + |M_l|` constant and moving the boundary.
//!
//! Usage: `cargo run --release -p chameleon-bench --bin
//! ablation_memory_split [--runs N]` (default 5).

use chameleon_bench::report::Table;
use chameleon_bench::suite::{runs_from_args, seeds};
use chameleon_core::{Chameleon, ChameleonConfig, ModelConfig, Strategy, Trainer};
use chameleon_hw::{FpgaConfig, ResourceModel};
use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};

fn main() {
    let runs = runs_from_args(5);
    let seed_list = seeds(runs);

    let spec = DatasetSpec::core50();
    let scenario = DomainIlScenario::generate(&spec, 0xDA7A);
    let model = ModelConfig::for_spec(&spec);
    let trainer = Trainer::new(StreamConfig::default());

    const TOTAL: usize = 110; // the paper's headline budget: 10 + 100.

    println!("# Ablation — ST/LT split at a fixed budget of {TOTAL} samples\n");
    println!("{runs} runs per row. 32 KB per latent sample (nominal).\n");

    let mut table = Table::new(&[
        "ST / LT split",
        "Acc_all",
        "On-chip KB",
        "Fits ZCU102 BRAM?",
    ]);

    for st in [1usize, 5, 10, 25, 50, 100] {
        let lt = TOTAL - st;
        let config = ChameleonConfig {
            short_term_capacity: st,
            long_term_capacity: lt,
            ..ChameleonConfig::default()
        };
        let agg = trainer.run_many(
            &scenario,
            |seed| -> Box<dyn Strategy> { Box::new(Chameleon::new(&model, config.clone(), seed)) },
            &seed_list,
        );
        let onchip_kb = st * 32;
        let fits = ResourceModel::new(FpgaConfig {
            short_term_buffer_kb: onchip_kb,
            ..FpgaConfig::default()
        })
        .utilization()
        .fits();
        table.row_owned(vec![
            format!("{st} / {lt}"),
            agg.acc_all.to_string(),
            onchip_kb.to_string(),
            if fits { "yes".into() } else { "NO".into() },
        ]);
        eprintln!("  split {st}/{lt} done");
    }

    println!("{}", table.render());
    println!(
        "The paper's 10/100 split is the largest short-term store that still\n\
         fits the ZCU102's BRAM alongside the accelerator buffers; pushing more\n\
         samples on-chip is impossible in hardware, and pushing them off-chip\n\
         (small ST) loses the free on-chip rehearsal."
    );
}
