//! Extension: **balance throughput** — does the load-aware rebalancer
//! actually pay for itself under skewed traffic?
//!
//! The workload is fixed: `DRAWS` single-batch step commands, the target
//! session of each drawn from a Zipf(1.1) popularity shape, over streams
//! long enough that no session finishes — so the skew governs the whole
//! run, not just its opening. The assignment seed is searched so the hot
//! prefix of the id space hash-clusters onto one shard — the
//! unlucky-but-inevitable placement a static hash eventually deals
//! someone — and the per-shard session budget is tight enough that a
//! clustered hot set cannot stay resident. Without a rebalancer the hot
//! shard LRU-thrashes on nearly every touch; with `--balance` the
//! policies migrate the (lowest-id, i.e. hottest) sessions toward cold
//! shards until each shard's hot working set fits its budget.
//!
//! Every cell delivers the identical batch count, so wall-clock is
//! directly comparable: the speedup is eviction-churn relief minus the
//! cost of the migrations themselves.
//!
//! Emits a markdown table on stdout and the cells as JSON to
//! `results/balance_throughput.json`.
//!
//! Usage: `cargo run --release -p chameleon-bench --bin balance_throughput`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use chameleon_balance::{BalanceConfig, TrafficShape};
use chameleon_bench::report::Table;
use chameleon_core::ChameleonConfig;
use chameleon_fleet::{
    FleetConfig, FleetEngine, SessionCommand, SessionEventKind, SessionSpec, UserSession,
};
use chameleon_stream::{DatasetSpec, DomainIlScenario, PreferenceProfile, StreamConfig};

const SESSIONS: u64 = 32;
const SHARDS: usize = 4;
/// Step commands issued per cell. The hottest session receives ~27% of
/// them, which must stay below the stream length so nobody finishes.
const DRAWS: u64 = 6000;
/// Training samples per class per domain — 40× the tiny spec, so every
/// stream is ~1920 batches and outlasts the draw budget.
const TRAIN_PER_CLASS_PER_DOMAIN: usize = 480;
/// Long-term capacity per session — sized so evict/restore moves a
/// meaningful amount of state relative to a 1-batch step.
const BUFFER: usize = 1000;
/// How many of the hottest (lowest) session ids must hash-cluster onto
/// one shard for the placement to count as adversarial.
const HOT_CLUSTER: u64 = 6;
/// Per-shard budget in sessions; the half-session margin is added below.
const BUDGET_SESSIONS: u64 = 2;
const SHAPE: &str = "zipf:1.1";
const SHAPE_SEED: u64 = 0xB417;
/// Balance policies measured against the `off` baseline.
const POLICIES: [Option<&str>; 3] = [None, Some("periodic:4"), Some("steal:4")];

struct Cell {
    policy: String,
    wall_s: f64,
    batches: u64,
    evictions: u64,
    restores: u64,
    migrations: u64,
    rebalance_ticks: u64,
}

impl Cell {
    fn steps_per_sec(&self) -> f64 {
        self.batches as f64 / self.wall_s.max(1e-9)
    }
}

fn user_spec(user: u64, num_classes: usize) -> SessionSpec {
    let base = (user as usize * 3) % num_classes;
    SessionSpec {
        learner: ChameleonConfig {
            long_term_capacity: BUFFER,
            ..ChameleonConfig::default()
        },
        stream: StreamConfig {
            preference: PreferenceProfile::Skewed {
                preferred: vec![base, (base + 1) % num_classes, (base + 2) % num_classes],
                boost: 8.0,
            },
            ..StreamConfig::default()
        },
        learner_seed: user.wrapping_mul(31) ^ 5,
        stream_seed: user.wrapping_add(0x5EED),
    }
}

/// Searches assignment seeds until the `HOT_CLUSTER` hottest ids (Zipf
/// popularity falls with the id, so ids `0..HOT_CLUSTER`) all hash to
/// one shard. Probes use the sim runtime — no threads to spawn.
fn adversarial_seed(scenario: &Arc<DomainIlScenario>) -> u64 {
    for seed in 0..1u64 << 14 {
        let probe = FleetEngine::new_sim(
            Arc::clone(scenario),
            FleetConfig {
                num_shards: SHARDS,
                assignment_seed: seed,
                ..FleetConfig::default()
            },
            0,
        );
        let hot = probe.shard_of(0);
        if (1..HOT_CLUSTER).all(|id| probe.shard_of(id) == hot) {
            return seed;
        }
    }
    panic!("no assignment seed clusters ids 0..{HOT_CLUSTER} in 2^14 probes");
}

fn run_cell(
    scenario: &Arc<DomainIlScenario>,
    assignment_seed: u64,
    budget_bytes: u64,
    balance: Option<&BalanceConfig>,
) -> Cell {
    let num_classes = scenario.spec().num_classes;
    let mut engine = FleetEngine::new(
        Arc::clone(scenario),
        FleetConfig {
            num_shards: SHARDS,
            budget_bytes,
            assignment_seed,
            ..FleetConfig::default()
        },
    );
    for user in 0..SESSIONS {
        engine
            .create_blocking(user, user_spec(user, num_classes))
            .expect("create session");
    }
    engine.drain_pending();
    let mut balancer = balance.map(BalanceConfig::build);
    let mut shape =
        TrafficShape::parse(SHAPE, SESSIONS as usize, SHAPE_SEED).expect("valid shape spec");

    let start = Instant::now();
    for _ in 0..DRAWS {
        // Streams outlast the draw budget by construction, so every draw
        // delivers exactly one real batch and all cells do equal work.
        let drawn = shape.next_session();
        engine
            .command_blocking(drawn as u64, SessionCommand::Step { batches: 1 })
            .expect("step session");
        if let Some(balancer) = balancer.as_mut() {
            balancer.on_op(&mut engine);
        }
        for event in engine.drain_pending() {
            match event.kind {
                SessionEventKind::Stepped { done: true, .. } => {
                    panic!(
                        "session {} finished; raise TRAIN_PER_CLASS_PER_DOMAIN",
                        event.session
                    )
                }
                SessionEventKind::Failed(reason) => panic!("session failed: {reason}"),
                _ => {}
            }
        }
    }
    let wall_s = start.elapsed().as_secs_f64();

    let metrics = engine.metrics();
    let counters = balancer.as_ref().map(|b| b.counters());
    Cell {
        policy: balance.map_or_else(|| "off".to_string(), |b| b.policy_name().to_string()),
        wall_s,
        batches: metrics.batches(),
        evictions: metrics.evictions(),
        restores: metrics.restores(),
        migrations: counters.as_ref().map_or(0, |c| c.migrations_total),
        rebalance_ticks: counters.as_ref().map_or(0, |c| c.rebalance_ticks),
    }
}

fn main() {
    let spec = DatasetSpec {
        name: "CORe50-tiny-long",
        train_per_class_per_domain: TRAIN_PER_CLASS_PER_DOMAIN,
        ..DatasetSpec::core50_tiny()
    };
    let scenario = Arc::new(DomainIlScenario::generate(&spec, 0xDA7A));
    let assignment_seed = adversarial_seed(&scenario);

    // One session's nominal resident footprint prices the budget.
    let session_bytes = UserSession::new(
        0,
        user_spec(0, spec.num_classes),
        Arc::clone(&scenario),
        None,
    )
    .resident_bytes();
    let budget_bytes = session_bytes * BUDGET_SESSIONS + session_bytes / 2;

    println!(
        "# Balance throughput ({} synthetic, {SESSIONS} sessions x {SHARDS} shards, \
         {DRAWS} x {SHAPE} draws, hot ids 0..{HOT_CLUSTER} clustered by seed \
         {assignment_seed})\n",
        spec.name
    );

    let mut cells = Vec::new();
    for policy in POLICIES {
        let balance = policy.map(|spec| BalanceConfig::parse(spec).expect("valid policy spec"));
        let cell = run_cell(&scenario, assignment_seed, budget_bytes, balance.as_ref());
        eprintln!(
            "  balance {:>8}: {:.0} steps/s, {} evictions, {} migrations",
            cell.policy,
            cell.steps_per_sec(),
            cell.evictions,
            cell.migrations
        );
        cells.push(cell);
    }

    let mut table = Table::new(&[
        "Balance",
        "Wall (s)",
        "Steps/s",
        "Evictions",
        "Restores",
        "Migrations",
        "Speedup vs off",
    ]);
    let base = cells[0].steps_per_sec();
    for cell in &cells {
        table.row_owned(vec![
            cell.policy.clone(),
            format!("{:.2}", cell.wall_s),
            format!("{:.0}", cell.steps_per_sec()),
            cell.evictions.to_string(),
            cell.restores.to_string(),
            cell.migrations.to_string(),
            format!("{:.2}x", cell.steps_per_sec() / base.max(1e-9)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Every cell delivers the same {DRAWS} batches; only the placement\n\
         moves. `off` hosts the whole Zipf-hot set on one shard whose budget\n\
         holds {BUDGET_SESSIONS}.5 sessions, so almost every hot touch is an LRU\n\
         evict+restore round trip. The policies migrate hot (lowest-id)\n\
         sessions toward cold shards; the speedup is that churn removed,\n\
         net of the migrations' own export/import cost."
    );

    let json = render_json(spec.name, session_bytes, assignment_seed, &cells);
    let path = "results/balance_throughput.json";
    if let Err(e) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json)) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("  wrote {path}");
}

fn render_json(dataset: &str, session_bytes: u64, assignment_seed: u64, cells: &[Cell]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"dataset\": \"{dataset}\",");
    let _ = writeln!(out, "  \"sessions\": {SESSIONS},");
    let _ = writeln!(out, "  \"shards\": {SHARDS},");
    let _ = writeln!(out, "  \"shape\": \"{SHAPE}\",");
    let _ = writeln!(out, "  \"draws\": {DRAWS},");
    let _ = writeln!(out, "  \"buffer\": {BUFFER},");
    let _ = writeln!(out, "  \"session_bytes\": {session_bytes},");
    let _ = writeln!(out, "  \"budget_sessions_per_shard\": {BUDGET_SESSIONS}.5,");
    let _ = writeln!(out, "  \"assignment_seed\": {assignment_seed},");
    let _ = writeln!(
        out,
        "  \"note\": \"identical full-stream workload per cell; hot ids hash-clustered on one \
         shard; speedup is LRU-churn relief net of migration cost, measured on whatever host \
         ran this\","
    );
    let base = cells[0].steps_per_sec();
    let _ = writeln!(out, "  \"cells\": [");
    for (i, cell) in cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"balance\": \"{}\", \"wall_s\": {:.4}, \"batches\": {}, \
             \"steps_per_sec\": {:.2}, \"evictions\": {}, \"restores\": {}, \
             \"migrations\": {}, \"rebalance_ticks\": {}, \"speedup_vs_off\": {:.3}}}{}",
            cell.policy,
            cell.wall_s,
            cell.batches,
            cell.steps_per_sec(),
            cell.evictions,
            cell.restores,
            cell.migrations,
            cell.rebalance_ticks,
            cell.steps_per_sec() / base.max(1e-9),
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}
