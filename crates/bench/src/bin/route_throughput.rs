//! Extension: **routing-tier overhead** — request rate through a
//! `chameleon-route` proxy versus the same workload sent straight at a
//! backend.
//!
//! Three cells share one fixed workload (8 sessions created, stepped to
//! stream exhaustion in 4-batch slices, then checkpointed, over 4 client
//! connections): `direct` talks to a single server, `routed x1` puts the
//! proxy in front of that same single server, and `routed x2` spreads
//! the sessions over two backends by rendezvous hash. The `direct` →
//! `routed x1` gap is the price of the tier itself — one extra socket
//! hop per request plus a shadow-checkpoint refresh (a backend-side
//! `Checkpoint` round-trip) after every mutating operation; `routed x2`
//! shows how much of that back with a second engine under the
//! proxy. Cells with decode rejects, failed requests, or failed shadow
//! refreshes abort the bench.
//!
//! Emits a markdown table on stdout and the grid as JSON to
//! `results/route_throughput.json`.
//!
//! Usage: `cargo run --release -p chameleon-bench --bin route_throughput`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use chameleon_bench::report::Table;
use chameleon_core::ChameleonConfig;
use chameleon_fleet::{FleetConfig, SessionSpec};
use chameleon_route::{RouteCounters, Router, RouterConfig};
use chameleon_serve::{Connection, ServeConfig, Server};
use chameleon_stream::{DatasetSpec, DomainIlScenario, PreferenceProfile, StreamConfig};

const SESSIONS: u64 = 8;
const CONNECTIONS: usize = 4;
const SHARDS: usize = 2;
/// Router-side connection workers.
const ROUTE_WORKERS: usize = 4;
/// Backend-side connection workers. Deliberately equal to the router's:
/// the router multiplexes every worker over ONE connection per backend
/// (correlation-tagged frames, a reader thread waking the matching
/// sender), so the old `serve workers ≥ router workers + 2` sizing rule
/// — and the silent stall an undersized backend used to cause — no
/// longer exists. The equality here is the regression check.
const SERVE_WORKERS: usize = ROUTE_WORKERS;
const STEP_BATCHES: u32 = 4;

struct Cell {
    label: &'static str,
    backends: usize,
    routed: bool,
    wall_s: f64,
    requests: u64,
    batches: u64,
    route: Option<RouteCounters>,
}

impl Cell {
    fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / self.wall_s.max(1e-9)
    }
}

fn user_spec(user: u64, num_classes: usize) -> SessionSpec {
    let base = (user as usize * 3) % num_classes;
    SessionSpec {
        learner: ChameleonConfig {
            long_term_capacity: 60,
            ..ChameleonConfig::default()
        },
        stream: StreamConfig {
            preference: PreferenceProfile::Skewed {
                preferred: vec![base, (base + 1) % num_classes, (base + 2) % num_classes],
                boost: 8.0,
            },
            ..StreamConfig::default()
        },
        learner_seed: user.wrapping_mul(31) ^ 5,
        stream_seed: user.wrapping_add(0x5EED),
    }
}

/// Drives this connection's stripe of sessions end to end (create →
/// step to exhaustion → checkpoint); returns the request count.
fn drive_stripe(addr: std::net::SocketAddr, users: Vec<u64>, num_classes: usize) -> u64 {
    let mut conn = Connection::connect(addr).expect("connect");
    let mut requests = 0u64;
    for &user in &users {
        conn.create_session(user, user_spec(user, num_classes))
            .expect("create session");
        requests += 1;
    }
    let mut live = users.clone();
    while !live.is_empty() {
        let mut still = Vec::new();
        for &user in &live {
            let (_, done) = conn.step(user, STEP_BATCHES).expect("step");
            requests += 1;
            if !done {
                still.push(user);
            }
        }
        live = still;
    }
    for &user in &users {
        conn.checkpoint(user).expect("checkpoint");
        requests += 1;
    }
    requests
}

fn run_cell(
    scenario: &Arc<DomainIlScenario>,
    label: &'static str,
    backends: usize,
    routed: bool,
) -> Cell {
    let num_classes = scenario.spec().num_classes;
    let mut servers: Vec<Server> = (0..backends)
        .map(|_| {
            Server::start(
                Arc::clone(scenario),
                FleetConfig {
                    num_shards: SHARDS,
                    ..FleetConfig::default()
                },
                ServeConfig {
                    workers: SERVE_WORKERS,
                    ..ServeConfig::default()
                },
            )
            .expect("start backend")
        })
        .collect();
    let mut router = routed.then(|| {
        Router::start(RouterConfig {
            addr: "127.0.0.1:0".into(),
            backends: servers.iter().map(|s| s.local_addr().to_string()).collect(),
            workers: ROUTE_WORKERS,
            ..RouterConfig::default()
        })
        .expect("start router")
    });
    let addr = match &router {
        Some(router) => router.local_addr(),
        None => servers[0].local_addr(),
    };

    let start = Instant::now();
    let handles: Vec<_> = (0..CONNECTIONS)
        .map(|c| {
            let users: Vec<u64> = (0..SESSIONS)
                .filter(|u| *u as usize % CONNECTIONS == c)
                .collect();
            std::thread::spawn(move || drive_stripe(addr, users, num_classes))
        })
        .collect();
    let requests: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("join client"))
        .sum();
    let wall_s = start.elapsed().as_secs_f64();

    let mut batches = 0u64;
    for server in &servers {
        let stats = Connection::connect(server.local_addr())
            .expect("connect for stats")
            .stats()
            .expect("stats");
        assert_eq!(stats.serve.decode_rejects, 0, "decode rejects during bench");
        batches += stats.batches;
    }
    let route = router.as_ref().map(|r| r.metrics());
    if let Some(route) = &route {
        assert_eq!(route.decode_rejects, 0, "router decode rejects");
        assert_eq!(route.forward_failures, 0, "router forward failures");
        assert_eq!(route.shadow_refresh_failures, 0, "shadow refresh failures");
    }
    if let Some(router) = &mut router {
        router.shutdown();
    }
    for server in &mut servers {
        server.shutdown();
    }

    Cell {
        label,
        backends,
        routed,
        wall_s,
        requests,
        batches,
        route,
    }
}

fn main() {
    let spec = DatasetSpec::core50_tiny();
    let scenario = Arc::new(DomainIlScenario::generate(&spec, 0xDA7A));

    println!(
        "# Routing-tier overhead ({} synthetic, {SESSIONS} sessions, {CONNECTIONS} \
         connections, {SHARDS} shards/backend, {STEP_BATCHES}-batch slices)\n",
        spec.name
    );

    let mut cells = Vec::new();
    for (label, backends, routed) in [
        ("direct", 1usize, false),
        ("routed x1", 1, true),
        ("routed x2", 2, true),
    ] {
        let cell = run_cell(&scenario, label, backends, routed);
        eprintln!(
            "  {label}: {:.0} req/s over {:.2}s",
            cell.requests_per_sec(),
            cell.wall_s
        );
        cells.push(cell);
    }

    // The workload is placement-independent (every session's full
    // stream), so total trained batches must not depend on the topology.
    for cell in &cells[1..] {
        assert_eq!(
            cell.batches, cells[0].batches,
            "batch count varied with topology"
        );
    }

    let base = cells[0].requests_per_sec();
    let mut table = Table::new(&[
        "Topology",
        "Backends",
        "Wall (s)",
        "Requests",
        "Req/s",
        "Shadow refreshes",
        "Relative to direct",
    ]);
    for cell in &cells {
        table.row_owned(vec![
            cell.label.to_string(),
            cell.backends.to_string(),
            format!("{:.2}", cell.wall_s),
            cell.requests.to_string(),
            format!("{:.0}", cell.requests_per_sec()),
            cell.route
                .map_or("—".to_string(), |r| r.shadow_refreshes.to_string()),
            format!("{:.2}x", cell.requests_per_sec() / base.max(1e-9)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "The router refreshes a session's shadow checkpoint after every\n\
         mutating operation — an extra backend `Checkpoint` round-trip per\n\
         step — which is what buys shadow failover when a backend dies\n\
         without exporting. That is the dominant cost of the tier; a\n\
         second backend claws throughput back by running engines in\n\
         parallel under the same proxy."
    );

    let json = render_json(spec.name, &cells);
    let path = "results/route_throughput.json";
    if let Err(e) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json)) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("  wrote {path}");
}

fn render_json(dataset: &str, cells: &[Cell]) -> String {
    let base = cells[0].requests_per_sec();
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"dataset\": \"{dataset}\",");
    let _ = writeln!(out, "  \"sessions\": {SESSIONS},");
    let _ = writeln!(out, "  \"connections\": {CONNECTIONS},");
    let _ = writeln!(out, "  \"step_batches\": {STEP_BATCHES},");
    let _ = writeln!(
        out,
        "  \"note\": \"loopback CHAMWIRE round-trips on whatever host ran this; the \
         routed cells pay one proxy hop plus a shadow-checkpoint refresh per mutation\","
    );
    let _ = writeln!(out, "  \"cells\": [");
    for (i, cell) in cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"topology\": \"{}\", \"backends\": {}, \"routed\": {}, \
             \"wall_s\": {:.4}, \"requests\": {}, \"requests_per_sec\": {:.2}, \
             \"batches\": {}, \"shadow_refreshes\": {}, \"relative_to_direct\": {:.3}}}{}",
            cell.label,
            cell.backends,
            cell.routed,
            cell.wall_s,
            cell.requests,
            cell.requests_per_sec(),
            cell.batches,
            cell.route.map_or(0, |r| r.shadow_refreshes),
            cell.requests_per_sec() / base.max(1e-9),
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}
