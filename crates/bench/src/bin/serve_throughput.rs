//! Extension: **serving throughput** — request rate of the CHAMWIRE TCP
//! layer over loopback as client connections scale.
//!
//! Each cell starts a fresh self-hosted [`chameleon_serve::Server`] (4
//! workers, 4 shards) and drives a fixed workload — 16 sessions, each
//! created, stepped to stream exhaustion in small slices, then
//! checkpointed — from N concurrent client connections, sessions striped
//! across connections. Wall clock covers the whole wire conversation, so
//! the measured rate includes framing, checksums, socket hops, and the
//! engine round-trip; the serving layer's own counters are cross-checked
//! so a cell with decode rejects or failed requests aborts the bench.
//!
//! Emits a markdown table on stdout and the grid as JSON to
//! `results/serve_throughput.json`.
//!
//! Usage: `cargo run --release -p chameleon-bench --bin serve_throughput`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use chameleon_bench::report::Table;
use chameleon_core::ChameleonConfig;
use chameleon_fleet::{FleetConfig, SessionSpec};
use chameleon_serve::wire::StatsSnapshot;
use chameleon_serve::{Connection, ServeConfig, Server};
use chameleon_stream::{DatasetSpec, DomainIlScenario, PreferenceProfile, StreamConfig};

const CONNECTION_COUNTS: [usize; 3] = [1, 2, 4];
const SESSIONS: u64 = 16;
const SHARDS: usize = 4;
const WORKERS: usize = 4;
/// Batches delivered per `Step` request (small slices stress the wire:
/// more round-trips per unit of training work).
const STEP_BATCHES: u32 = 4;

struct Cell {
    connections: usize,
    wall_s: f64,
    requests: u64,
    stats: StatsSnapshot,
}

impl Cell {
    fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / self.wall_s.max(1e-9)
    }
}

fn user_spec(user: u64, num_classes: usize) -> SessionSpec {
    let base = (user as usize * 3) % num_classes;
    SessionSpec {
        learner: ChameleonConfig {
            long_term_capacity: 60,
            ..ChameleonConfig::default()
        },
        stream: StreamConfig {
            preference: PreferenceProfile::Skewed {
                preferred: vec![base, (base + 1) % num_classes, (base + 2) % num_classes],
                boost: 8.0,
            },
            ..StreamConfig::default()
        },
        learner_seed: user.wrapping_mul(31) ^ 5,
        stream_seed: user.wrapping_add(0x5EED),
    }
}

/// Drives this connection's stripe of sessions end to end; returns the
/// number of requests issued.
fn drive_stripe(addr: std::net::SocketAddr, users: Vec<u64>, num_classes: usize) -> u64 {
    let mut conn = Connection::connect(addr).expect("connect");
    let mut requests = 0u64;
    for &user in &users {
        conn.create_session(user, user_spec(user, num_classes))
            .expect("create session");
        requests += 1;
    }
    let mut live = users;
    while !live.is_empty() {
        let mut still = Vec::new();
        for &user in &live {
            let (_, done) = conn.step(user, STEP_BATCHES).expect("step");
            requests += 1;
            if !done {
                still.push(user);
            }
        }
        live = still;
    }
    requests
}

fn run_cell(scenario: &Arc<DomainIlScenario>, connections: usize) -> Cell {
    let num_classes = scenario.spec().num_classes;
    let mut server = Server::start(
        Arc::clone(scenario),
        FleetConfig {
            num_shards: SHARDS,
            ..FleetConfig::default()
        },
        ServeConfig {
            workers: WORKERS,
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr();

    let start = Instant::now();
    let handles: Vec<_> = (0..connections)
        .map(|c| {
            let users: Vec<u64> = (0..SESSIONS)
                .filter(|u| *u as usize % connections == c)
                .collect();
            std::thread::spawn(move || drive_stripe(addr, users, num_classes))
        })
        .collect();
    let requests: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("join client"))
        .sum();
    let wall_s = start.elapsed().as_secs_f64();

    let stats = Connection::connect(addr)
        .expect("connect for stats")
        .stats()
        .expect("stats");
    assert_eq!(stats.serve.decode_rejects, 0, "decode rejects during bench");
    assert_eq!(
        stats.serve.requests_failed, 0,
        "failed requests during bench"
    );
    server.shutdown();

    Cell {
        connections,
        wall_s,
        requests,
        stats,
    }
}

fn main() {
    let spec = DatasetSpec::core50_tiny();
    let scenario = Arc::new(DomainIlScenario::generate(&spec, 0xDA7A));

    println!(
        "# Serving throughput ({} synthetic, {SESSIONS} sessions, {SHARDS} shards, \
         {WORKERS} workers, {STEP_BATCHES}-batch slices)\n",
        spec.name
    );

    let mut cells = Vec::new();
    for &connections in &CONNECTION_COUNTS {
        let cell = run_cell(&scenario, connections);
        eprintln!(
            "  {connections} connection(s): {:.0} req/s over {:.2}s",
            cell.requests_per_sec(),
            cell.wall_s
        );
        cells.push(cell);
    }

    // Every cell delivers the identical workload (each session's full
    // stream), so total batches must not depend on connection count — a
    // cheap cross-check that concurrency never drops or duplicates work.
    for cell in &cells[1..] {
        assert_eq!(
            cell.stats.batches, cells[0].stats.batches,
            "batch count varied with connection count"
        );
    }

    let base = cells[0].requests_per_sec();
    let mut table = Table::new(&[
        "Connections",
        "Wall (s)",
        "Requests",
        "Req/s",
        "Batches",
        "p99 latency (µs)",
        "Speedup vs 1 conn",
    ]);
    for cell in &cells {
        table.row_owned(vec![
            cell.connections.to_string(),
            format!("{:.2}", cell.wall_s),
            cell.requests.to_string(),
            format!("{:.0}", cell.requests_per_sec()),
            cell.stats.batches.to_string(),
            cell.stats.serve.latency.quantile_upper_us(0.99).to_string(),
            format!("{:.2}x", cell.requests_per_sec() / base.max(1e-9)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Each request is a full CHAMWIRE round-trip (frame, CRC, socket,\n\
         engine hop). One serial connection leaves the worker pool idle;\n\
         more connections overlap wire time with engine time until the\n\
         shard workers saturate."
    );

    let json = render_json(spec.name, &cells);
    let path = "results/serve_throughput.json";
    if let Err(e) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json)) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("  wrote {path}");
}

fn render_json(dataset: &str, cells: &[Cell]) -> String {
    let base = cells[0].requests_per_sec();
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"dataset\": \"{dataset}\",");
    let _ = writeln!(out, "  \"sessions\": {SESSIONS},");
    let _ = writeln!(out, "  \"shards\": {SHARDS},");
    let _ = writeln!(out, "  \"workers\": {WORKERS},");
    let _ = writeln!(out, "  \"step_batches\": {STEP_BATCHES},");
    let _ = writeln!(
        out,
        "  \"note\": \"loopback CHAMWIRE round-trips on whatever host ran this; requests \
         counted client-side, cross-checked against server counters\","
    );
    let _ = writeln!(out, "  \"cells\": [");
    for (i, cell) in cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"connections\": {}, \"wall_s\": {:.4}, \"requests\": {}, \
             \"requests_per_sec\": {:.2}, \"batches\": {}, \"frames_in\": {}, \
             \"bytes_in\": {}, \"bytes_out\": {}, \"backpressure_replies\": {}, \
             \"latency_p50_us\": {}, \"latency_p99_us\": {}, \
             \"speedup_vs_1_conn\": {:.3}}}{}",
            cell.connections,
            cell.wall_s,
            cell.requests,
            cell.requests_per_sec(),
            cell.stats.batches,
            cell.stats.serve.frames_in,
            cell.stats.serve.bytes_in,
            cell.stats.serve.bytes_out,
            cell.stats.serve.backpressure_replies,
            cell.stats.serve.latency.quantile_upper_us(0.50),
            cell.stats.serve.latency.quantile_upper_us(0.99),
            cell.requests_per_sec() / base.max(1e-9),
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}
