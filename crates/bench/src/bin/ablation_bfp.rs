//! Ablation: **block-floating-point training** (paper §IV-C: "We leverage
//! Block Floating Point (BFP) datatype to compute the forward and backward
//! pass").
//!
//! Trains Chameleon with fake-quantized latents and weights at several
//! mantissa widths and reports the accuracy cost of the narrower datapath,
//! plus the storage/bandwidth saving each width buys on the EdgeTPU model.
//!
//! Usage: `cargo run --release -p chameleon-bench --bin ablation_bfp
//! [--runs N]` (default 3).

use chameleon_bench::report::Table;
use chameleon_bench::suite::{runs_from_args, seeds};
use chameleon_core::{Chameleon, ChameleonConfig, EvalReport, ModelConfig, Strategy, Trainer};
use chameleon_hw::BfpFormat;
use chameleon_stream::{Batch, DatasetSpec, DomainIlScenario, StreamConfig};
use chameleon_tensor::Matrix;

/// Wraps a strategy, fake-quantizing its inputs and (after every step) its
/// observable behaviour through a BFP datapath. Weight quantization is
/// approximated by quantizing the raw inputs and latent path — the
/// quantities that actually cross the array in the paper's deployment.
struct BfpTrained {
    inner: Chameleon,
    format: BfpFormat,
}

impl Strategy for BfpTrained {
    fn name(&self) -> &str {
        "Chameleon (BFP)"
    }
    fn observe(&mut self, batch: &Batch) {
        let quantized = Batch {
            raw: self.format.quantize_matrix(&batch.raw),
            labels: batch.labels.clone(),
            domain: batch.domain,
        };
        self.inner.observe(&quantized);
    }
    fn logits(&self, raw: &Matrix) -> Matrix {
        self.inner.logits(&self.format.quantize_matrix(raw))
    }
    fn memory_overhead_mb(&self) -> f64 {
        // BFP shrinks every stored latent proportionally to its width.
        self.inner.memory_overhead_mb() * self.format.bits_per_value() / 16.0
    }
}

fn main() {
    let runs = runs_from_args(3);
    let seed_list = seeds(runs);

    let spec = DatasetSpec::core50();
    let scenario = DomainIlScenario::generate(&spec, 0xDA7A);
    let model = ModelConfig::for_spec(&spec);
    let trainer = Trainer::new(StreamConfig::default());

    println!("# Ablation — BFP datapath width (CORe50 synthetic)\n");
    println!("{runs} runs per row; fp16 baseline vs fake-quantized BFP training.\n");

    let mut table = Table::new(&["Datapath", "Acc_all", "Replay memory (MB)", "Bits/value"]);

    // fp16 reference (the FPGA configuration).
    let reference = trainer.run_many(
        &scenario,
        |seed| -> Box<dyn Strategy> {
            Box::new(Chameleon::new(&model, ChameleonConfig::default(), seed))
        },
        &seed_list,
    );
    table.row_owned(vec![
        "fp16 (reference)".into(),
        reference.acc_all.to_string(),
        format!("{:.2}", reference.memory_overhead_mb),
        "16.0".into(),
    ]);

    for mantissa in [4u8, 6, 8, 12] {
        let format = BfpFormat::new(mantissa, 16);
        let agg = trainer.run_many(
            &scenario,
            |seed| -> Box<dyn Strategy> {
                Box::new(BfpTrained {
                    inner: Chameleon::new(&model, ChameleonConfig::default(), seed),
                    format,
                })
            },
            &seed_list,
        );
        let _unused: &[EvalReport] = &agg.runs;
        table.row_owned(vec![
            format!("BFP{mantissa} (block 16)"),
            agg.acc_all.to_string(),
            format!("{:.2}", agg.runs[0].memory_overhead_mb),
            format!("{:.1}", format.bits_per_value()),
        ]);
        eprintln!("  BFP{mantissa} done");
    }

    println!("{}", table.render());
    println!(
        "BFP8 — the paper's EdgeTPU operating point — tracks the fp16 reference\n\
         while roughly halving replay storage and bandwidth. Note that the\n\
         synthetic raw inputs are far more quantization-tolerant than a deep\n\
         CNN datapath (class evidence is spread over 96 well-scaled values),\n\
         so even BFP4 survives here; on the real network the paper's BFP8\n\
         choice is the operating point below which accuracy degrades."
    );
}
