//! Aligned markdown table rendering for experiment outputs.

/// A simple aligned markdown table builder.
///
/// # Example
///
/// ```
/// use chameleon_bench::report::Table;
///
/// let mut t = Table::new(&["Method", "Acc (%)"]);
/// t.row(&["Chameleon", "79.48"]);
/// let s = t.render();
/// assert!(s.contains("| Chameleon"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Self {
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows
            .push(cells.iter().map(ToString::to_string).collect());
    }

    /// Appends a row from owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned GitHub-flavoured markdown.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        let _ = cols;
        out
    }
}

/// Formats a float with the given number of decimals, or `—` when NaN.
pub fn fmt_or_dash(v: f64, decimals: usize) -> String {
    if v.is_nan() {
        "—".to_string()
    } else {
        format!("{v:.decimals$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(&["A", "Long header"]);
        t.row(&["x", "1"]);
        t.row(&["yyyy", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[1].starts_with("|--"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["A", "B"]);
        t.row(&["only one"]);
    }

    #[test]
    fn fmt_or_dash_handles_nan() {
        assert_eq!(fmt_or_dash(f64::NAN, 1), "—");
        assert_eq!(fmt_or_dash(12.3456, 2), "12.35");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(&["A"]);
        assert!(t.is_empty());
        t.row_owned(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
