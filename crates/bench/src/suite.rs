//! Strategy registry and run configuration shared by the table generators.

use chameleon_core::{
    Chameleon, ChameleonConfig, Der, DerConfig, Er, EwcConfig, EwcPlusPlus, Finetune, Gss,
    GssConfig, Joint, JointConfig, LatentReplay, Lwf, LwfConfig, ModelConfig, Slda, SldaConfig,
    Strategy,
};

/// A named strategy configuration as it appears in a table row.
#[derive(Clone, Debug, PartialEq)]
pub struct MethodSpec {
    /// Row label, e.g. `"ER (500)"`.
    pub label: String,
    /// Replay buffer size, when the method has one.
    pub buffer: Option<usize>,
    /// Which strategy to build.
    pub kind: MethodKind,
}

/// The strategy families of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MethodKind {
    /// Multi-epoch offline upper bound.
    Joint,
    /// Single-pass lower bound.
    Finetune,
    /// Online EWC.
    EwcPlusPlus,
    /// Learning without Forgetting.
    Lwf,
    /// Streaming LDA.
    Slda,
    /// Gradient-based sample selection.
    Gss,
    /// Experience replay (raw images).
    Er,
    /// Dark experience replay (raw + logits).
    Der,
    /// Latent replay.
    LatentReplay,
    /// Chameleon with the given long-term capacity.
    Chameleon,
}

impl MethodSpec {
    /// Builds the strategy for one run seed.
    pub fn build(&self, model: &ModelConfig, seed: u64) -> Box<dyn Strategy> {
        let buffer = self.buffer.unwrap_or(0);
        match self.kind {
            MethodKind::Joint => Box::new(Joint::new(model, JointConfig::default(), seed)),
            MethodKind::Finetune => Box::new(Finetune::new(model, seed)),
            MethodKind::EwcPlusPlus => {
                Box::new(EwcPlusPlus::new(model, EwcConfig::default(), seed))
            }
            MethodKind::Lwf => Box::new(Lwf::new(model, LwfConfig::default(), seed)),
            MethodKind::Slda => Box::new(Slda::new(model, SldaConfig::default(), seed)),
            MethodKind::Gss => Box::new(Gss::new(model, GssConfig::new(buffer), seed)),
            MethodKind::Er => Box::new(Er::new(model, buffer, seed)),
            MethodKind::Der => Box::new(Der::new(model, DerConfig::new(buffer), seed)),
            MethodKind::LatentReplay => Box::new(LatentReplay::new(model, buffer, seed)),
            MethodKind::Chameleon => Box::new(Chameleon::new(
                model,
                ChameleonConfig {
                    long_term_capacity: buffer,
                    ..ChameleonConfig::default()
                },
                seed,
            )),
        }
    }
}

/// The paper's buffer-size sweep (Table I).
pub const BUFFER_SIZES: [usize; 4] = [100, 200, 500, 1500];

/// The full Table I method list, in the paper's row order.
pub fn table1_methods() -> Vec<MethodSpec> {
    let mut methods = vec![
        MethodSpec {
            label: "JOINT".into(),
            buffer: None,
            kind: MethodKind::Joint,
        },
        MethodSpec {
            label: "Finetuning".into(),
            buffer: None,
            kind: MethodKind::Finetune,
        },
        MethodSpec {
            label: "EWC++".into(),
            buffer: None,
            kind: MethodKind::EwcPlusPlus,
        },
        MethodSpec {
            label: "LwF".into(),
            buffer: None,
            kind: MethodKind::Lwf,
        },
        MethodSpec {
            label: "SLDA".into(),
            buffer: None,
            kind: MethodKind::Slda,
        },
    ];
    for (kind, name) in [
        (MethodKind::Gss, "GSS"),
        (MethodKind::Er, "ER"),
        (MethodKind::Der, "DER"),
        (MethodKind::LatentReplay, "Latent Replay"),
    ] {
        for size in BUFFER_SIZES {
            methods.push(MethodSpec {
                label: format!("{name} ({size})"),
                buffer: Some(size),
                kind,
            });
        }
    }
    for size in BUFFER_SIZES {
        methods.push(MethodSpec {
            label: format!("Chameleon (Ms=10, Ml={size})"),
            buffer: Some(size),
            kind: MethodKind::Chameleon,
        });
    }
    methods
}

/// Seeds for a repeated-run experiment: `1..=runs`.
pub fn seeds(runs: usize) -> Vec<u64> {
    (1..=runs as u64).collect()
}

/// Reads the run count from the first CLI argument shaped `--runs N`
/// (default: `default`).
pub fn runs_from_args(default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_stream::DatasetSpec;

    #[test]
    fn table1_has_25_rows() {
        // 5 bufferless + 4 families × 4 sizes + Chameleon × 4 sizes.
        assert_eq!(table1_methods().len(), 25);
    }

    #[test]
    fn every_method_builds() {
        let model = ModelConfig::for_spec(&DatasetSpec::core50_tiny());
        for spec in table1_methods() {
            let s = spec.build(&model, 1);
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn seeds_are_one_based() {
        assert_eq!(seeds(3), vec![1, 2, 3]);
    }
}
