//! Support library for the table/figure generator binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation section (see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded results):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig2_accuracy_vs_memory` | Figure 2 |
//! | `table1_accuracy` | Table I |
//! | `table2_edge_devices` | Table II (+ §IV-C latency breakdown) |
//! | `table3_fpga_resources` | Table III |
//! | `ablation_sampling` | ST/LT selection-policy ablation |
//! | `ablation_hparams` | ρ, α/β, h, learning-window sweeps |
//! | `ablation_memory_split` | ST/LT capacity split at fixed budget |
//! | `ablation_bfp` | block-floating-point datapath width |
//! | `ablation_latent_layer` | frozen/trainable cut depth |
//! | `fig_forgetting_curves` | time-resolved per-domain accuracy |
//! | `factor_analysis` | OpenLORIS environmental-factor difficulty |
//! | `systolic_sim_report` | cycle-level EdgeTPU cross-check |
//! | `memsim_report` | DRAM-timing view of replay traffic |
//! | `robustness_order` | domain-order permutation robustness |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod suite;
