//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no registry access, so the real criterion
//! cannot be fetched. This crate provides the API subset the workspace's
//! benches use (`criterion_group!`/`criterion_main!`, `Criterion`,
//! benchmark groups, `iter`/`iter_batched`, `black_box`, `BatchSize`) with
//! a minimal wall-clock measurement loop: each benchmark runs for a small
//! fixed iteration budget and reports mean time per iteration. It is a
//! smoke-runner, not a statistics engine — its purpose is keeping the
//! bench targets compiling and executable offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations each benchmark routine is measured over.
const MEASURE_ITERS: u32 = 20;

/// How per-iteration setup output is batched (accepted, ignored).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
    /// Explicit batch count.
    NumBatches(u64),
    /// Explicit iteration count.
    NumIterations(u64),
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<String>,
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the statistical sample count (accepted, ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted, ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<String>,
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id.into()), &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let mean_ns = if bencher.iters == 0 {
        0.0
    } else {
        bencher.total.as_nanos() as f64 / f64::from(bencher.iters)
    };
    println!(
        "bench {id:<48} {mean_ns:>12.1} ns/iter ({} iters)",
        bencher.iters
    );
}

/// Timing harness passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Measures a routine over a fixed iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..MEASURE_ITERS {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Measures a routine whose input comes from an untimed setup closure.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// `iter_batched` variant taking the input by reference.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        for _ in 0..MEASURE_ITERS {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Collects benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::new();
            let _ = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // The libtest harness passes flags like `--bench`/`--test` when
            // invoked via cargo; a smoke-runner can ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::new();
        let mut count = 0u32;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert_eq!(count, MEASURE_ITERS);
    }

    #[test]
    fn group_runs_batched_routines() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut total = 0usize;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1usize; 4],
                |v| total += v.len(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
        assert_eq!(total, 4 * MEASURE_ITERS as usize);
    }
}
