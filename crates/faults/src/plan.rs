//! Declarative description of which faults to inject, at which rates.

use chameleon_replay::StorePlacement;

/// Relative susceptibility of off-chip DRAM vs on-chip SRAM to bit upsets.
///
/// Must match `SoftErrorModel::DRAM_TO_SRAM_RATIO` in `chameleon-hw` (the
/// crates cannot share the constant without a dependency cycle; a
/// cross-crate test in the root package keeps them in sync).
pub const DRAM_TO_SRAM_RATIO: f64 = 16.0;

/// Bit-upset rates for data resident in each memory level, in expected
/// flips per stored bit per stream tick (one tick = one streamed sample).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryFaultModel {
    /// Upset rate for on-chip SRAM residents (short-term store).
    pub sram_flips_per_bit_per_tick: f64,
    /// Upset rate for off-chip DRAM residents (long-term store, baseline
    /// replay buffers).
    pub dram_flips_per_bit_per_tick: f64,
}

impl MemoryFaultModel {
    /// No memory faults.
    pub fn disabled() -> Self {
        Self {
            sram_flips_per_bit_per_tick: 0.0,
            dram_flips_per_bit_per_tick: 0.0,
        }
    }

    /// Explicit per-level rates (e.g. copied from a hardware soft-error
    /// model).
    pub fn from_rates(sram: f64, dram: f64) -> Self {
        Self {
            sram_flips_per_bit_per_tick: sram,
            dram_flips_per_bit_per_tick: dram,
        }
    }

    /// DRAM rate with the SRAM rate derived via [`DRAM_TO_SRAM_RATIO`].
    pub fn from_dram_rate(dram: f64) -> Self {
        Self::from_rates(dram / DRAM_TO_SRAM_RATIO, dram)
    }

    /// The upset rate applying to data at `placement`.
    pub fn rate_for(&self, placement: StorePlacement) -> f64 {
        match placement {
            StorePlacement::OnChipSram => self.sram_flips_per_bit_per_tick,
            StorePlacement::OffChipDram => self.dram_flips_per_bit_per_tick,
        }
    }

    /// Whether both rates are exactly zero.
    pub fn is_zero(&self) -> bool {
        self.sram_flips_per_bit_per_tick == 0.0 && self.dram_flips_per_bit_per_tick == 0.0
    }
}

/// Damage model for serialized checkpoint blobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CheckpointFaultModel {
    /// Probability a saved blob is truncated at a random offset
    /// (interrupted write / power loss).
    pub truncate_prob: f64,
    /// Probability a saved blob has random bytes corrupted (bad flash
    /// sectors, transfer errors).
    pub corrupt_prob: f64,
    /// Upper bound on how many bytes one corruption event damages.
    pub max_corrupt_bytes: usize,
}

impl CheckpointFaultModel {
    /// No checkpoint faults.
    pub fn disabled() -> Self {
        Self {
            truncate_prob: 0.0,
            corrupt_prob: 0.0,
            max_corrupt_bytes: 0,
        }
    }

    /// Whether both damage probabilities are exactly zero.
    pub fn is_zero(&self) -> bool {
        self.truncate_prob == 0.0 && self.corrupt_prob == 0.0
    }
}

/// Perturbations of the input stream between scenario and strategy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamFaultModel {
    /// Probability an arriving batch is dropped entirely (sensor outage).
    pub drop_batch_prob: f64,
    /// Probability an arriving batch is delivered twice (retransmission).
    pub duplicate_batch_prob: f64,
    /// Per-sample probability the label is replaced by a different class
    /// (annotation/user-feedback noise). Requires `num_classes >= 2`.
    pub label_noise_prob: f64,
    /// Number of classes labels are drawn from, for noise replacement.
    pub num_classes: usize,
}

impl StreamFaultModel {
    /// No stream faults.
    pub fn disabled() -> Self {
        Self {
            drop_batch_prob: 0.0,
            duplicate_batch_prob: 0.0,
            label_noise_prob: 0.0,
            num_classes: 0,
        }
    }

    /// Whether every perturbation probability is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.drop_batch_prob == 0.0
            && self.duplicate_batch_prob == 0.0
            && self.label_noise_prob == 0.0
    }
}

/// A complete, seeded fault-injection campaign description.
///
/// The same plan always produces the same faults over the same run: the
/// seed feeds independently forked RNG streams per category (see
/// [`crate::FaultInjector`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Root seed for all fault randomness.
    pub seed: u64,
    /// Memory bit-upset rates.
    pub memory: MemoryFaultModel,
    /// Checkpoint damage model.
    pub checkpoint: CheckpointFaultModel,
    /// Stream perturbation model.
    pub stream: StreamFaultModel,
}

impl FaultPlan {
    /// A plan injecting nothing; running under it is bit-identical to not
    /// running an injector at all.
    pub fn disabled(seed: u64) -> Self {
        Self {
            seed,
            memory: MemoryFaultModel::disabled(),
            checkpoint: CheckpointFaultModel::disabled(),
            stream: StreamFaultModel::disabled(),
        }
    }

    /// A memory-faults-only plan at the given DRAM bit-flip rate, with the
    /// SRAM rate derived via the fixed DRAM:SRAM susceptibility ratio.
    pub fn bit_flips(seed: u64, dram_flips_per_bit_per_tick: f64) -> Self {
        Self {
            seed,
            memory: MemoryFaultModel::from_dram_rate(dram_flips_per_bit_per_tick),
            checkpoint: CheckpointFaultModel::disabled(),
            stream: StreamFaultModel::disabled(),
        }
    }

    /// Whether every fault category is disabled.
    pub fn is_noop(&self) -> bool {
        self.memory.is_zero() && self.checkpoint.is_zero() && self.stream.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_is_noop() {
        assert!(FaultPlan::disabled(0).is_noop());
        assert!(!FaultPlan::bit_flips(0, 1e-6).is_noop());
    }

    #[test]
    fn bit_flip_plan_keeps_hierarchy_asymmetry() {
        let plan = FaultPlan::bit_flips(0, 1.6e-5);
        assert!(
            plan.memory.rate_for(StorePlacement::OffChipDram)
                > plan.memory.rate_for(StorePlacement::OnChipSram)
        );
        assert_eq!(plan.memory.rate_for(StorePlacement::OffChipDram), 1.6e-5);
    }

    #[test]
    fn derived_sram_rate_follows_ratio() {
        let m = MemoryFaultModel::from_dram_rate(1.6e-5);
        assert_eq!(m.dram_flips_per_bit_per_tick, 1.6e-5);
        assert_eq!(m.sram_flips_per_bit_per_tick, 1.6e-5 / DRAM_TO_SRAM_RATIO);
    }
}
