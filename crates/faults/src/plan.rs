//! Declarative description of which faults to inject, at which rates.

use chameleon_replay::StorePlacement;

/// Relative susceptibility of off-chip DRAM vs on-chip SRAM to bit upsets.
///
/// Must match `SoftErrorModel::DRAM_TO_SRAM_RATIO` in `chameleon-hw` (the
/// crates cannot share the constant without a dependency cycle; a
/// cross-crate test in the root package keeps them in sync).
pub const DRAM_TO_SRAM_RATIO: f64 = 16.0;

/// Bit-upset rates for data resident in each memory level, in expected
/// flips per stored bit per stream tick (one tick = one streamed sample).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryFaultModel {
    /// Upset rate for on-chip SRAM residents (short-term store).
    pub sram_flips_per_bit_per_tick: f64,
    /// Upset rate for off-chip DRAM residents (long-term store, baseline
    /// replay buffers).
    pub dram_flips_per_bit_per_tick: f64,
}

impl MemoryFaultModel {
    /// No memory faults.
    pub fn disabled() -> Self {
        Self {
            sram_flips_per_bit_per_tick: 0.0,
            dram_flips_per_bit_per_tick: 0.0,
        }
    }

    /// Explicit per-level rates (e.g. copied from a hardware soft-error
    /// model).
    pub fn from_rates(sram: f64, dram: f64) -> Self {
        Self {
            sram_flips_per_bit_per_tick: sram,
            dram_flips_per_bit_per_tick: dram,
        }
    }

    /// DRAM rate with the SRAM rate derived via [`DRAM_TO_SRAM_RATIO`].
    pub fn from_dram_rate(dram: f64) -> Self {
        Self::from_rates(dram / DRAM_TO_SRAM_RATIO, dram)
    }

    /// The upset rate applying to data at `placement`.
    pub fn rate_for(&self, placement: StorePlacement) -> f64 {
        match placement {
            StorePlacement::OnChipSram => self.sram_flips_per_bit_per_tick,
            StorePlacement::OffChipDram => self.dram_flips_per_bit_per_tick,
        }
    }

    /// Whether both rates are exactly zero.
    pub fn is_zero(&self) -> bool {
        self.sram_flips_per_bit_per_tick == 0.0 && self.dram_flips_per_bit_per_tick == 0.0
    }
}

/// Damage model for serialized checkpoint blobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CheckpointFaultModel {
    /// Probability a saved blob is truncated at a random offset
    /// (interrupted write / power loss).
    pub truncate_prob: f64,
    /// Probability a saved blob has random bytes corrupted (bad flash
    /// sectors, transfer errors).
    pub corrupt_prob: f64,
    /// Upper bound on how many bytes one corruption event damages.
    pub max_corrupt_bytes: usize,
}

impl CheckpointFaultModel {
    /// No checkpoint faults.
    pub fn disabled() -> Self {
        Self {
            truncate_prob: 0.0,
            corrupt_prob: 0.0,
            max_corrupt_bytes: 0,
        }
    }

    /// Whether both damage probabilities are exactly zero.
    pub fn is_zero(&self) -> bool {
        self.truncate_prob == 0.0 && self.corrupt_prob == 0.0
    }
}

/// Perturbations of the input stream between scenario and strategy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamFaultModel {
    /// Probability an arriving batch is dropped entirely (sensor outage).
    pub drop_batch_prob: f64,
    /// Probability an arriving batch is delivered twice (retransmission).
    pub duplicate_batch_prob: f64,
    /// Per-sample probability the label is replaced by a different class
    /// (annotation/user-feedback noise). Requires `num_classes >= 2`.
    pub label_noise_prob: f64,
    /// Number of classes labels are drawn from, for noise replacement.
    pub num_classes: usize,
}

impl StreamFaultModel {
    /// No stream faults.
    pub fn disabled() -> Self {
        Self {
            drop_batch_prob: 0.0,
            duplicate_batch_prob: 0.0,
            label_noise_prob: 0.0,
            num_classes: 0,
        }
    }

    /// Whether every perturbation probability is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.drop_batch_prob == 0.0
            && self.duplicate_batch_prob == 0.0
            && self.label_noise_prob == 0.0
    }
}

/// Damage model for durable file I/O (the `chameleon-store` segment log).
///
/// These faults model what storage hardware does around a power cut, not
/// steady-state corruption: sealed-and-fsynced bytes are assumed stable,
/// while bytes still in the write path can be lost, partially persisted,
/// or garbled. The store's I/O seam consults the injector at three
/// points — fsync acknowledgement ([`crate::FaultInjector::partial_fsync`]),
/// reads ([`crate::FaultInjector::short_read`]), and simulated power loss
/// ([`crate::FaultInjector::crash_damage`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FileFaultModel {
    /// Probability a crash tears the un-fsynced tail of the active
    /// segment: only a prefix of the not-yet-durable suffix survives.
    pub torn_write_prob: f64,
    /// Probability an fsync "succeeds" while actually persisting only a
    /// prefix of the pending bytes (write-cache hardware lying about
    /// durability). The lost suffix disappears at the next crash.
    pub partial_fsync_prob: f64,
    /// Probability a read returns fewer bytes than requested (transient
    /// short read; the store detects and retries).
    pub short_read_prob: f64,
    /// Probability a crash flips one bit at an injector-chosen offset
    /// inside the surviving non-durable tail region.
    pub bit_flip_prob: f64,
}

impl FileFaultModel {
    /// No file faults.
    pub fn disabled() -> Self {
        Self {
            torn_write_prob: 0.0,
            partial_fsync_prob: 0.0,
            short_read_prob: 0.0,
            bit_flip_prob: 0.0,
        }
    }

    /// Whether every file-fault probability is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.torn_write_prob == 0.0
            && self.partial_fsync_prob == 0.0
            && self.short_read_prob == 0.0
            && self.bit_flip_prob == 0.0
    }
}

/// Loss model for messages crossing the network between a router and its
/// backends (or between simulated nodes).
///
/// Requests and responses are modeled separately because they fail
/// differently: a dropped *request* means the backend never saw the
/// operation, while a dropped *response* means it executed but the caller
/// cannot know — the two demand different recovery (resend vs
/// reconcile). Partition windows are schedule-level (a span of
/// operations during which one node is unreachable) and are generated by
/// the simulation schedule, not by per-message coins here.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetFaultModel {
    /// Probability a request is lost before the destination sees it.
    pub drop_request_prob: f64,
    /// Probability the destination executes but its response is lost.
    pub drop_response_prob: f64,
    /// Probability a message is delayed (delivered late, not lost).
    pub delay_prob: f64,
    /// Upper bound (exclusive) on an injected delay, in milliseconds.
    pub max_delay_millis: u64,
    /// Probability a message is delivered twice (retransmission).
    pub duplicate_prob: f64,
}

impl NetFaultModel {
    /// No network faults.
    pub fn disabled() -> Self {
        Self {
            drop_request_prob: 0.0,
            drop_response_prob: 0.0,
            delay_prob: 0.0,
            max_delay_millis: 0,
            duplicate_prob: 0.0,
        }
    }

    /// Whether every network-fault probability is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.drop_request_prob == 0.0
            && self.drop_response_prob == 0.0
            && self.delay_prob == 0.0
            && self.duplicate_prob == 0.0
    }
}

/// A complete, seeded fault-injection campaign description.
///
/// The same plan always produces the same faults over the same run: the
/// seed feeds independently forked RNG streams per category (see
/// [`crate::FaultInjector`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Root seed for all fault randomness.
    pub seed: u64,
    /// Memory bit-upset rates.
    pub memory: MemoryFaultModel,
    /// Checkpoint damage model.
    pub checkpoint: CheckpointFaultModel,
    /// Stream perturbation model.
    pub stream: StreamFaultModel,
    /// Durable file I/O damage model (session-store crash schedules).
    pub file: FileFaultModel,
    /// Network loss model (routing tier and multi-node simulation).
    pub net: NetFaultModel,
}

impl FaultPlan {
    /// A plan injecting nothing; running under it is bit-identical to not
    /// running an injector at all.
    pub fn disabled(seed: u64) -> Self {
        Self {
            seed,
            memory: MemoryFaultModel::disabled(),
            checkpoint: CheckpointFaultModel::disabled(),
            stream: StreamFaultModel::disabled(),
            file: FileFaultModel::disabled(),
            net: NetFaultModel::disabled(),
        }
    }

    /// A memory-faults-only plan at the given DRAM bit-flip rate, with the
    /// SRAM rate derived via the fixed DRAM:SRAM susceptibility ratio.
    pub fn bit_flips(seed: u64, dram_flips_per_bit_per_tick: f64) -> Self {
        Self {
            seed,
            memory: MemoryFaultModel::from_dram_rate(dram_flips_per_bit_per_tick),
            checkpoint: CheckpointFaultModel::disabled(),
            stream: StreamFaultModel::disabled(),
            file: FileFaultModel::disabled(),
            net: NetFaultModel::disabled(),
        }
    }

    /// A file-faults-only plan: crash-time tearing, lying fsyncs, short
    /// reads, and tail bit flips at the given probabilities — the model
    /// the session store's crash schedules run under.
    pub fn file_faults(seed: u64, file: FileFaultModel) -> Self {
        Self {
            seed,
            memory: MemoryFaultModel::disabled(),
            checkpoint: CheckpointFaultModel::disabled(),
            stream: StreamFaultModel::disabled(),
            file,
            net: NetFaultModel::disabled(),
        }
    }

    /// A network-faults-only plan: message loss, delay, and duplication
    /// at the given probabilities — the model the routing tier's
    /// multi-node simulation schedules run under.
    pub fn net_faults(seed: u64, net: NetFaultModel) -> Self {
        Self {
            seed,
            memory: MemoryFaultModel::disabled(),
            checkpoint: CheckpointFaultModel::disabled(),
            stream: StreamFaultModel::disabled(),
            file: FileFaultModel::disabled(),
            net,
        }
    }

    /// Whether every fault category is disabled.
    pub fn is_noop(&self) -> bool {
        self.memory.is_zero()
            && self.checkpoint.is_zero()
            && self.stream.is_zero()
            && self.file.is_zero()
            && self.net.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_is_noop() {
        assert!(FaultPlan::disabled(0).is_noop());
        assert!(!FaultPlan::bit_flips(0, 1e-6).is_noop());
        let net = NetFaultModel {
            drop_request_prob: 0.1,
            ..NetFaultModel::disabled()
        };
        assert!(!FaultPlan::net_faults(0, net).is_noop());
    }

    #[test]
    fn bit_flip_plan_keeps_hierarchy_asymmetry() {
        let plan = FaultPlan::bit_flips(0, 1.6e-5);
        assert!(
            plan.memory.rate_for(StorePlacement::OffChipDram)
                > plan.memory.rate_for(StorePlacement::OnChipSram)
        );
        assert_eq!(plan.memory.rate_for(StorePlacement::OffChipDram), 1.6e-5);
    }

    #[test]
    fn derived_sram_rate_follows_ratio() {
        let m = MemoryFaultModel::from_dram_rate(1.6e-5);
        assert_eq!(m.dram_flips_per_bit_per_tick, 1.6e-5);
        assert_eq!(m.sram_flips_per_bit_per_tick, 1.6e-5 / DRAM_TO_SRAM_RATIO);
    }
}
