//! The stateful injector that turns a [`FaultPlan`] into concrete faults.

use chameleon_replay::StorePlacement;
use chameleon_stream::Batch;
use chameleon_tensor::Prng;

use crate::plan::FaultPlan;

/// Counters of every fault actually injected so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Individual bits flipped in stored features.
    pub bits_flipped: u64,
    /// Feature vectors that received at least one flip.
    pub vectors_hit: u64,
    /// Batches removed from the stream.
    pub batches_dropped: u64,
    /// Batches delivered twice.
    pub batches_duplicated: u64,
    /// Labels replaced by a wrong class.
    pub labels_noised: u64,
    /// Checkpoint blobs truncated.
    pub checkpoints_truncated: u64,
    /// Checkpoint blobs with byte corruption.
    pub checkpoints_corrupted: u64,
    /// Total checkpoint bytes damaged by corruption events.
    pub checkpoint_bytes_damaged: u64,
    /// Fsyncs that acknowledged durability for only part of the pending
    /// bytes (lying write cache).
    pub fsyncs_partial: u64,
    /// Reads that returned fewer bytes than requested.
    pub short_reads: u64,
    /// Crash events that tore the non-durable file tail.
    pub writes_torn: u64,
    /// Bits flipped in surviving non-durable file tails at crash time.
    pub file_bits_flipped: u64,
    /// Requests lost before the destination saw them.
    pub requests_dropped: u64,
    /// Responses lost after the destination executed.
    pub responses_dropped: u64,
    /// Messages delivered late.
    pub messages_delayed: u64,
    /// Messages delivered twice.
    pub messages_duplicated: u64,
}

impl FaultStats {
    /// Whether any fault of any category has been injected.
    pub fn any(&self) -> bool {
        *self != Self::default()
    }
}

/// What [`FaultInjector::corrupt_checkpoint`] did to one blob.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointDamage {
    /// Offset the blob was truncated at, if it was.
    pub truncated_at: Option<usize>,
    /// Number of bytes XOR-corrupted (0 if none).
    pub corrupted_bytes: usize,
}

impl CheckpointDamage {
    /// Whether the blob was modified at all.
    pub fn any(&self) -> bool {
        self.truncated_at.is_some() || self.corrupted_bytes > 0
    }
}

/// What [`FaultInjector::crash_damage`] did to one file tail.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrashDamage {
    /// Bytes of the non-durable tail discarded by tearing.
    pub torn_bytes: usize,
    /// Offset within the surviving tail whose byte had a bit flipped.
    pub flipped_at: Option<usize>,
}

impl CrashDamage {
    /// Whether the tail was modified at all.
    pub fn any(&self) -> bool {
        self.torn_bytes > 0 || self.flipped_at.is_some()
    }
}

/// What the network does to one request/response exchange, decided by
/// [`FaultInjector::net_decision`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetDecision {
    /// Both directions deliver normally.
    Deliver,
    /// The request is lost: the destination never sees the operation and
    /// the caller times out — recovery must *resend*.
    DropRequest,
    /// The destination executes but its response is lost — recovery must
    /// *reconcile*, because the side effect already happened.
    DropResponse,
    /// Delivered late by `millis`; no loss.
    Delay {
        /// Injected extra latency in milliseconds.
        millis: u64,
    },
    /// The request arrives twice (retransmission); the destination must
    /// tolerate the duplicate.
    Duplicate,
}

/// Stateful fault injector.
///
/// Each fault category draws from its own RNG stream forked from the plan
/// seed, so the faults one category injects are independent of how often
/// the others are invoked — a memory-faults-only sweep stays bit-identical
/// whether or not checkpointing happens mid-run.
///
/// Determinism contract: the same [`FaultPlan`] driving the same sequence
/// of calls produces the same faults, and a category whose rates are all
/// zero never consumes randomness.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    memory_rng: Prng,
    checkpoint_rng: Prng,
    stream_rng: Prng,
    file_rng: Prng,
    net_rng: Prng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let mut root = Prng::new(plan.seed);
        Self {
            plan,
            memory_rng: root.fork(1),
            checkpoint_rng: root.fork(2),
            stream_rng: root.fork(3),
            file_rng: root.fork(4),
            net_rng: root.fork(5),
            stats: FaultStats::default(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Whether this injector can never inject anything.
    pub fn is_noop(&self) -> bool {
        self.plan.is_noop()
    }

    /// Injects bit upsets into a stored feature vector that has been
    /// resident at `placement` for `ticks` stream ticks. Returns the number
    /// of bits flipped.
    ///
    /// The expected flip count is `rate × bits × ticks`; the integer part
    /// is injected deterministically and the fractional remainder by a
    /// single biased coin, so low rates still inject occasionally instead
    /// of rounding to zero. Checksums are deliberately *not* resealed —
    /// detection is the consumer's job.
    pub fn flip_bits(
        &mut self,
        features: &mut [f32],
        ticks: u64,
        placement: StorePlacement,
    ) -> u64 {
        let rate = self.plan.memory.rate_for(placement);
        if rate <= 0.0 || ticks == 0 || features.is_empty() {
            return 0;
        }
        let bits = features.len() as f64 * 32.0;
        let expected = rate * bits * ticks as f64;
        let mut count = expected.floor() as u64;
        let fraction = (expected - expected.floor()) as f32;
        if fraction > 0.0 && self.memory_rng.coin(fraction) {
            count += 1;
        }
        for _ in 0..count {
            let word = self.memory_rng.below(features.len());
            let bit = self.memory_rng.below(32) as u32;
            features[word] = f32::from_bits(features[word].to_bits() ^ (1u32 << bit));
        }
        if count > 0 {
            self.stats.bits_flipped += count;
            self.stats.vectors_hit += 1;
        }
        count
    }

    /// Damages a serialized checkpoint blob in place per the plan's
    /// checkpoint model: possibly truncates it at a random offset, then
    /// possibly XORs a few bytes with non-zero masks (every damaged byte is
    /// guaranteed to actually change).
    pub fn corrupt_checkpoint(&mut self, blob: &mut Vec<u8>) -> CheckpointDamage {
        let model = self.plan.checkpoint;
        let mut damage = CheckpointDamage::default();
        if model.is_zero() || blob.is_empty() {
            return damage;
        }
        if model.truncate_prob > 0.0 && self.checkpoint_rng.coin(model.truncate_prob as f32) {
            let keep = self.checkpoint_rng.below(blob.len());
            blob.truncate(keep);
            damage.truncated_at = Some(keep);
            self.stats.checkpoints_truncated += 1;
        }
        if !blob.is_empty()
            && model.corrupt_prob > 0.0
            && self.checkpoint_rng.coin(model.corrupt_prob as f32)
        {
            let n = 1 + self.checkpoint_rng.below(model.max_corrupt_bytes.max(1));
            for _ in 0..n {
                let i = self.checkpoint_rng.below(blob.len());
                let mask = 1 + self.checkpoint_rng.below(255) as u8;
                blob[i] ^= mask;
            }
            damage.corrupted_bytes = n;
            self.stats.checkpoints_corrupted += 1;
            self.stats.checkpoint_bytes_damaged += n as u64;
        }
        damage
    }

    /// Applies stream faults to one arriving batch, returning what the
    /// strategy actually sees: `[]` (dropped), `[batch]` (possibly with
    /// noised labels), or `[batch, batch]` (duplicated).
    pub fn mangle_batch(&mut self, mut batch: Batch) -> Vec<Batch> {
        let model = self.plan.stream;
        if model.is_zero() {
            return vec![batch];
        }
        if model.label_noise_prob > 0.0 && model.num_classes >= 2 {
            for label in batch.labels.iter_mut() {
                if self.stream_rng.coin(model.label_noise_prob as f32) {
                    let offset = 1 + self.stream_rng.below(model.num_classes - 1);
                    *label = (*label + offset) % model.num_classes;
                    self.stats.labels_noised += 1;
                }
            }
        }
        if model.drop_batch_prob > 0.0 && self.stream_rng.coin(model.drop_batch_prob as f32) {
            self.stats.batches_dropped += 1;
            return Vec::new();
        }
        if model.duplicate_batch_prob > 0.0
            && self.stream_rng.coin(model.duplicate_batch_prob as f32)
        {
            self.stats.batches_duplicated += 1;
            return vec![batch.clone(), batch];
        }
        vec![batch]
    }

    /// Decides whether an fsync covering `pending` un-durable bytes lies:
    /// returns `Some(durable_prefix)` (strictly less than `pending`) when
    /// the hardware acknowledges durability for only a prefix, `None` when
    /// the fsync is honest. The lost suffix only matters at the next crash.
    pub fn partial_fsync(&mut self, pending: usize) -> Option<usize> {
        let model = self.plan.file;
        if model.partial_fsync_prob <= 0.0 || pending == 0 {
            return None;
        }
        if !self.file_rng.coin(model.partial_fsync_prob as f32) {
            return None;
        }
        self.stats.fsyncs_partial += 1;
        Some(self.file_rng.below(pending))
    }

    /// Decides whether a read of `requested` bytes comes up short: returns
    /// `Some(delivered)` (strictly less than `requested`) for a transient
    /// short read the caller should detect and retry, `None` for a full
    /// read.
    pub fn short_read(&mut self, requested: usize) -> Option<usize> {
        let model = self.plan.file;
        if model.short_read_prob <= 0.0 || requested == 0 {
            return None;
        }
        if !self.file_rng.coin(model.short_read_prob as f32) {
            return None;
        }
        self.stats.short_reads += 1;
        Some(self.file_rng.below(requested))
    }

    /// Decides what the network does to one request/response exchange,
    /// per the plan's net model. Categories are evaluated in a fixed
    /// order (drop-request, drop-response, delay, duplicate) with one
    /// coin each; the first that fires wins. Zero-probability categories
    /// consume no randomness.
    pub fn net_decision(&mut self) -> NetDecision {
        let model = self.plan.net;
        if model.drop_request_prob > 0.0 && self.net_rng.coin(model.drop_request_prob as f32) {
            self.stats.requests_dropped += 1;
            return NetDecision::DropRequest;
        }
        if model.drop_response_prob > 0.0 && self.net_rng.coin(model.drop_response_prob as f32) {
            self.stats.responses_dropped += 1;
            return NetDecision::DropResponse;
        }
        if model.delay_prob > 0.0 && self.net_rng.coin(model.delay_prob as f32) {
            self.stats.messages_delayed += 1;
            let millis = self.net_rng.below(model.max_delay_millis.max(1) as usize) as u64;
            return NetDecision::Delay { millis };
        }
        if model.duplicate_prob > 0.0 && self.net_rng.coin(model.duplicate_prob as f32) {
            self.stats.messages_duplicated += 1;
            return NetDecision::Duplicate;
        }
        NetDecision::Deliver
    }

    /// Damages the non-durable tail of a file at simulated power loss:
    /// possibly tears it (keeping only a prefix), then possibly flips one
    /// bit at a chosen offset in whatever survives. Durable (fsynced) bytes
    /// are never touched — that is the whole point of the fsync contract.
    pub fn crash_damage(&mut self, tail: &mut Vec<u8>) -> CrashDamage {
        let model = self.plan.file;
        let mut damage = CrashDamage::default();
        if (model.torn_write_prob <= 0.0 && model.bit_flip_prob <= 0.0) || tail.is_empty() {
            return damage;
        }
        if model.torn_write_prob > 0.0 && self.file_rng.coin(model.torn_write_prob as f32) {
            let keep = self.file_rng.below(tail.len());
            damage.torn_bytes = tail.len() - keep;
            tail.truncate(keep);
            self.stats.writes_torn += 1;
        }
        if model.bit_flip_prob > 0.0
            && !tail.is_empty()
            && self.file_rng.coin(model.bit_flip_prob as f32)
        {
            let i = self.file_rng.below(tail.len());
            let bit = self.file_rng.below(8) as u8;
            tail[i] ^= 1 << bit;
            damage.flipped_at = Some(i);
            self.stats.file_bits_flipped += 1;
        }
        damage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CheckpointFaultModel, FaultPlan, FileFaultModel, StreamFaultModel};
    use chameleon_tensor::Matrix;

    fn batch(labels: Vec<usize>) -> Batch {
        let rows = labels.len();
        Batch {
            raw: Matrix::zeros(rows, 4),
            labels,
            domain: 0,
        }
    }

    #[test]
    fn noop_injector_changes_nothing_and_draws_nothing() {
        let mut injector = FaultInjector::new(FaultPlan::disabled(3));
        let mut features = vec![1.0f32, -2.0, 3.5];
        assert_eq!(
            injector.flip_bits(&mut features, 10_000, StorePlacement::OffChipDram),
            0
        );
        assert_eq!(features, vec![1.0, -2.0, 3.5]);
        let mut blob = vec![1u8, 2, 3, 4];
        assert!(!injector.corrupt_checkpoint(&mut blob).any());
        assert_eq!(blob, vec![1, 2, 3, 4]);
        let out = injector.mangle_batch(batch(vec![0, 1]));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].labels, vec![0, 1]);
        assert!(injector.partial_fsync(4096).is_none());
        assert!(injector.short_read(4096).is_none());
        let mut tail = vec![9u8; 32];
        assert!(!injector.crash_damage(&mut tail).any());
        assert_eq!(tail, vec![9u8; 32]);
        assert_eq!(injector.net_decision(), NetDecision::Deliver);
        assert!(!injector.stats().any());
        // No randomness consumed: internal streams still match a fresh one.
        let fresh = FaultInjector::new(FaultPlan::disabled(3));
        assert_eq!(
            format!("{:?}", injector.memory_rng),
            format!("{:?}", fresh.memory_rng)
        );
        assert_eq!(
            format!("{:?}", injector.file_rng),
            format!("{:?}", fresh.file_rng)
        );
    }

    #[test]
    fn same_seed_injects_identical_faults() {
        let plan = FaultPlan::bit_flips(42, 1e-4);
        let run = |plan: FaultPlan| {
            let mut injector = FaultInjector::new(plan);
            let mut features = vec![0.25f32; 128];
            for _ in 0..50 {
                injector.flip_bits(&mut features, 100, StorePlacement::OffChipDram);
            }
            // Bit patterns, not values: flips can produce NaN.
            let bits: Vec<u32> = features.iter().map(|v| v.to_bits()).collect();
            (bits, injector.stats())
        };
        let (a, sa) = run(plan);
        let (b, sb) = run(plan);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(sa.bits_flipped > 0);
    }

    #[test]
    fn dram_residents_upset_faster_than_sram() {
        let plan = FaultPlan::bit_flips(7, 1e-5);
        let count = |placement| {
            let mut injector = FaultInjector::new(plan);
            let mut features = vec![0.5f32; 64];
            let mut flips = 0;
            for _ in 0..200 {
                flips += injector.flip_bits(&mut features, 50, placement);
            }
            flips
        };
        assert!(count(StorePlacement::OffChipDram) > count(StorePlacement::OnChipSram));
    }

    #[test]
    fn checkpoint_corruption_always_changes_the_blob() {
        let mut plan = FaultPlan::disabled(11);
        plan.checkpoint = CheckpointFaultModel {
            truncate_prob: 0.5,
            corrupt_prob: 1.0,
            max_corrupt_bytes: 8,
        };
        let mut injector = FaultInjector::new(plan);
        for trial in 0..50u8 {
            let original: Vec<u8> = (0..200).map(|i| (i as u8).wrapping_add(trial)).collect();
            let mut blob = original.clone();
            let damage = injector.corrupt_checkpoint(&mut blob);
            assert!(damage.any(), "trial {trial} left blob untouched");
            assert_ne!(blob, original);
        }
        let stats = injector.stats();
        assert!(stats.checkpoints_corrupted + stats.checkpoints_truncated >= 50);
    }

    #[test]
    fn stream_faults_drop_duplicate_and_noise() {
        let mut plan = FaultPlan::disabled(5);
        plan.stream = StreamFaultModel {
            drop_batch_prob: 0.3,
            duplicate_batch_prob: 0.3,
            label_noise_prob: 0.2,
            num_classes: 10,
        };
        let mut injector = FaultInjector::new(plan);
        let mut delivered = 0usize;
        for i in 0..300 {
            let out = injector.mangle_batch(batch(vec![i % 10, (i + 1) % 10]));
            assert!(out.len() <= 2);
            for b in &out {
                assert!(b.labels.iter().all(|&l| l < 10));
            }
            delivered += out.len();
        }
        let stats = injector.stats();
        assert!(stats.batches_dropped > 0, "no drops in 300 batches");
        assert!(stats.batches_duplicated > 0, "no duplicates in 300 batches");
        assert!(stats.labels_noised > 0, "no label noise in 600 labels");
        assert_eq!(
            delivered,
            300 - stats.batches_dropped as usize + stats.batches_duplicated as usize
        );
    }

    #[test]
    fn label_noise_never_keeps_the_original_label() {
        let mut plan = FaultPlan::disabled(9);
        plan.stream = StreamFaultModel {
            drop_batch_prob: 0.0,
            duplicate_batch_prob: 0.0,
            label_noise_prob: 1.0,
            num_classes: 4,
        };
        let mut injector = FaultInjector::new(plan);
        for _ in 0..100 {
            let out = injector.mangle_batch(batch(vec![2, 2, 2]));
            assert!(out[0].labels.iter().all(|&l| l != 2 && l < 4));
        }
    }

    #[test]
    fn file_faults_fire_and_replay_from_their_seed() {
        let model = FileFaultModel {
            torn_write_prob: 0.6,
            partial_fsync_prob: 0.4,
            short_read_prob: 0.5,
            bit_flip_prob: 0.5,
        };
        let run = || {
            let mut injector = FaultInjector::new(FaultPlan::file_faults(77, model));
            let mut outcomes = Vec::new();
            for round in 0..60usize {
                outcomes.push(injector.partial_fsync(100 + round));
                outcomes.push(injector.short_read(64));
                let mut tail: Vec<u8> = (0..40).map(|i| i as u8).collect();
                let damage = injector.crash_damage(&mut tail);
                outcomes.push(Some(damage.torn_bytes));
                outcomes.push(damage.flipped_at);
                outcomes.push(Some(tail.iter().map(|&b| b as usize).sum()));
            }
            (outcomes, injector.stats())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b, "same seed must replay identical file faults");
        assert_eq!(sa, sb);
        assert!(sa.fsyncs_partial > 0, "{sa:?}");
        assert!(sa.short_reads > 0, "{sa:?}");
        assert!(sa.writes_torn > 0, "{sa:?}");
        assert!(sa.file_bits_flipped > 0, "{sa:?}");
    }

    #[test]
    fn partial_outcomes_are_strictly_smaller_than_requested() {
        let model = FileFaultModel {
            torn_write_prob: 0.0,
            partial_fsync_prob: 1.0,
            short_read_prob: 1.0,
            bit_flip_prob: 0.0,
        };
        let mut injector = FaultInjector::new(FaultPlan::file_faults(5, model));
        for _ in 0..200 {
            let durable = injector.partial_fsync(37).expect("prob 1.0");
            assert!(durable < 37);
            let delivered = injector.short_read(12).expect("prob 1.0");
            assert!(delivered < 12);
        }
        assert!(injector.partial_fsync(0).is_none());
        assert!(injector.short_read(0).is_none());
    }

    #[test]
    fn net_decisions_fire_and_replay_from_their_seed() {
        let net = crate::plan::NetFaultModel {
            drop_request_prob: 0.2,
            drop_response_prob: 0.2,
            delay_prob: 0.2,
            max_delay_millis: 50,
            duplicate_prob: 0.2,
        };
        let run = || {
            let mut injector = FaultInjector::new(FaultPlan::net_faults(21, net));
            let decisions: Vec<NetDecision> = (0..300).map(|_| injector.net_decision()).collect();
            (decisions, injector.stats())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b, "same seed must replay identical net faults");
        assert_eq!(sa, sb);
        assert!(sa.requests_dropped > 0, "{sa:?}");
        assert!(sa.responses_dropped > 0, "{sa:?}");
        assert!(sa.messages_delayed > 0, "{sa:?}");
        assert!(sa.messages_duplicated > 0, "{sa:?}");
        assert!(a
            .iter()
            .all(|d| !matches!(d, NetDecision::Delay { millis } if *millis >= 50)));
    }

    #[test]
    fn category_streams_are_independent() {
        // Interleaving checkpoint corruption and file faults between memory
        // injections must not change which memory bits flip.
        let plan = {
            let mut p = FaultPlan::bit_flips(13, 1e-4);
            p.checkpoint = CheckpointFaultModel {
                truncate_prob: 0.5,
                corrupt_prob: 0.5,
                max_corrupt_bytes: 4,
            };
            p.file = FileFaultModel {
                torn_write_prob: 0.5,
                partial_fsync_prob: 0.5,
                short_read_prob: 0.5,
                bit_flip_prob: 0.5,
            };
            p
        };
        let run = |interleave: bool| {
            let mut injector = FaultInjector::new(plan);
            let mut features = vec![0.125f32; 64];
            for _ in 0..40 {
                injector.flip_bits(&mut features, 100, StorePlacement::OffChipDram);
                if interleave {
                    let mut blob = vec![0u8; 64];
                    injector.corrupt_checkpoint(&mut blob);
                    injector.partial_fsync(128);
                    injector.short_read(128);
                    let mut tail = vec![0u8; 32];
                    injector.crash_damage(&mut tail);
                }
            }
            // Compare bit patterns: flips can produce NaN, and NaN != NaN.
            features.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        };
        assert_eq!(run(false), run(true));
    }
}
