//! Seeded, reproducible fault injection for the Chameleon reproduction.
//!
//! An always-on edge learner keeps its replay stores resident in SRAM/DRAM
//! for the whole deployment, persists checkpoints across power cycles, and
//! consumes a sensor stream that drops, repeats, and mislabels data. This
//! crate models those three fault surfaces so the rest of the workspace can
//! measure how gracefully the dual-memory pipeline degrades:
//!
//! * **Memory faults** — bit flips in stored replay features, at per-bit
//!   rates scaled by residency time and by [`StorePlacement`]: the off-chip
//!   DRAM long-term store upsets faster than the on-chip SRAM short-term
//!   store (the same placement split `chameleon-hw`'s memory simulator
//!   prices for traffic).
//! * **Checkpoint faults** — truncation and byte corruption of serialized
//!   checkpoint blobs, exercising loader robustness and recovery.
//! * **Stream faults** — dropped batches, duplicated batches, and label
//!   noise between the scenario and the strategy.
//! * **File faults** — durable-storage failure modes around power loss
//!   (torn writes, lying partial fsyncs, short reads, tail bit flips),
//!   consumed by the `chameleon-store` segment log's I/O seam so crash
//!   schedules are seeded and replayable.
//! * **Network faults** — per-message loss, delay, and duplication
//!   between a router and its backends (request drops and response drops
//!   modeled separately, because they demand different recovery),
//!   consumed by the routing tier's multi-node simulation.
//!
//! Everything is driven by a single [`FaultPlan`] seed through
//! independently forked RNG streams per fault category, so the same plan
//! over the same run produces bit-identical faults regardless of how the
//! categories interleave. A plan with all rates zero is a *true no-op*: the
//! injector consumes no randomness and perturbs nothing, so a run under a
//! zero plan is bit-identical to a run without an injector.
//!
//! # Example
//!
//! ```
//! use chameleon_faults::{FaultInjector, FaultPlan};
//! use chameleon_replay::StorePlacement;
//!
//! let plan = FaultPlan::bit_flips(7, 1e-4);
//! let mut injector = FaultInjector::new(plan);
//! let mut features = vec![0.5f32; 256];
//! injector.flip_bits(&mut features, 1000, StorePlacement::OffChipDram);
//! assert!(injector.stats().bits_flipped > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod inject;
mod plan;

pub use inject::{CheckpointDamage, CrashDamage, FaultInjector, FaultStats, NetDecision};
pub use plan::{
    CheckpointFaultModel, FaultPlan, FileFaultModel, MemoryFaultModel, NetFaultModel,
    StreamFaultModel, DRAM_TO_SRAM_RATIO,
};

pub use chameleon_replay::StorePlacement;
