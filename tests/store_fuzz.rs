//! CHAMSEG1 record-codec fuzzer: corrupt, truncated, and oversized
//! records must produce typed [`RecordError`]s — never a panic, and
//! never an allocation sized by a hostile length prefix.
//!
//! Mirrors `tests/wire_fuzz.rs` for the durable store's on-disk framing:
//! structured single-bit/byte mutations at every offset, plus the
//! `chameleon-faults` file damage model (torn tails + tail bit flips)
//! applied to encoded records, so the segment codec is fuzzed by the
//! same machinery the store's crash schedules use.

use chameleon_faults::{FaultInjector, FaultPlan, FileFaultModel};
use chameleon_store::{
    check_segment_header, decode_record, encode_record, RecordError, MAX_RECORD_BYTES,
    RECORD_FRAME_BYTES, RECORD_HEADER_BYTES, SEGMENT_MAGIC,
};
use proptest::prelude::*;

/// A fault plan that only damages file tails (here: encoded records).
fn tail_damage_plan(seed: u64) -> FaultPlan {
    FaultPlan::file_faults(
        seed,
        FileFaultModel {
            torn_write_prob: 0.5,
            partial_fsync_prob: 0.0,
            short_read_prob: 0.0,
            bit_flip_prob: 0.8,
        },
    )
}

proptest! {
    #[test]
    fn record_roundtrip_is_identity(
        session in 0u64..u64::MAX,
        seq in 0u64..u64::MAX,
        payload in prop::collection::vec(0u8..=255, 0..256),
    ) {
        let encoded = encode_record(session, seq, &payload);
        prop_assert_eq!(
            encoded.len(),
            RECORD_FRAME_BYTES + RECORD_HEADER_BYTES + payload.len()
        );
        let (record, used) = decode_record(&encoded).expect("roundtrip");
        prop_assert_eq!(record.session, session);
        prop_assert_eq!(record.seq, seq);
        prop_assert_eq!(&record.payload, &payload);
        prop_assert_eq!(used, encoded.len());
    }

    #[test]
    fn truncation_at_every_cut_is_a_typed_error(
        session in 0u64..1_000,
        seq in 0u64..1_000,
        payload in prop::collection::vec(0u8..=255, 0..64),
    ) {
        let encoded = encode_record(session, seq, &payload);
        for cut in 0..encoded.len() {
            let err = decode_record(&encoded[..cut]).unwrap_err();
            // Every cut of an intact record means "wait for more bytes":
            // the length prefix itself is valid, so nothing but
            // Truncated may surface. Anything else would misread
            // intact bytes (and break torn-tail recovery, which leans
            // on this distinction).
            prop_assert!(matches!(err, RecordError::Truncated),
                "cut {} gave {:?}", cut, err);
        }
    }

    #[test]
    fn single_bit_flip_never_decodes_to_the_original(
        session in 0u64..1_000,
        seq in 0u64..1_000,
        payload in prop::collection::vec(0u8..=255, 0..64),
        byte_frac in 0.0f64..1.0,
        bit in 0u64..8,
    ) {
        let encoded = encode_record(session, seq, &payload);
        let index = ((byte_frac * encoded.len() as f64) as usize).min(encoded.len() - 1);
        let mut mutated = encoded.clone();
        mutated[index] ^= 1u8 << bit;
        match decode_record(&mutated) {
            // CRC32 detects all single-bit body/trailer errors; length
            // damage is caught structurally (Truncated / Oversized /
            // BadLength) or by the CRC over the re-sliced body.
            Ok((record, _)) => prop_assert!(
                record.session != session || record.seq != seq || record.payload != payload,
                "flipped record decoded to the original"
            ),
            Err(
                RecordError::Truncated
                | RecordError::Oversized { .. }
                | RecordError::BadLength { .. }
                | RecordError::BadChecksum { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation(
        len in (MAX_RECORD_BYTES as u64 + 1..=u32::MAX as u64),
        noise in prop::collection::vec(0u8..=255, 0..16),
    ) {
        // Hostile length prefix with a few noise bytes behind it. If
        // decode sized a buffer from the prefix this test would OOM
        // long before failing an assertion.
        let mut bytes = (len as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&noise);
        let err = decode_record(&bytes).unwrap_err();
        prop_assert!(matches!(err, RecordError::Oversized { .. }), "{:?}", err);
    }

    #[test]
    fn undersized_length_prefix_is_a_typed_error(
        len in 0u32..(RECORD_HEADER_BYTES as u32),
        noise in prop::collection::vec(0u8..=255, 0..64),
    ) {
        // A body shorter than the session+seq header cannot be a record.
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&noise);
        let err = decode_record(&bytes).unwrap_err();
        prop_assert!(matches!(err, RecordError::BadLength { .. }), "{:?}", err);
    }

    #[test]
    fn garbage_bytes_never_panic_the_decoder(
        bytes in prop::collection::vec(0u8..=255, 0..96),
    ) {
        // Any outcome is fine — typed error or a successful decode of
        // accidentally self-describing bytes — as long as nothing
        // panics and no attacker-sized allocation happens.
        let _ = decode_record(&bytes);
        let _ = check_segment_header(&bytes);
    }

    #[test]
    fn fault_injected_tail_damage_is_detected(
        seed in 0u64..10_000,
        session in 0u64..1_000,
        seq in 0u64..1_000,
        payload in prop::collection::vec(0u8..=255, 1..64),
    ) {
        let encoded = encode_record(session, seq, &payload);
        let mut injector = FaultInjector::new(tail_damage_plan(seed));
        let mut damaged = encoded.clone();
        let _ = injector.crash_damage(&mut damaged);

        if damaged == encoded {
            let (record, _) = decode_record(&damaged).expect("intact record");
            prop_assert_eq!(record.payload, payload);
        } else {
            // Torn or flipped: the decoder must refuse it — this is the
            // exact property the store's open-time torn-tail scan
            // relies on to find the last sealed record.
            prop_assert!(decode_record(&damaged).is_err());
        }
    }
}

/// Deterministic exhaustive sweep alongside the randomized cases: every
/// single-byte truncation and every single-bit XOR of a realistic
/// sealed record, plus the segment header gate.
#[test]
fn exhaustive_single_byte_damage_on_a_real_record() {
    let payload: Vec<u8> = (0u8..32).collect();
    let encoded = encode_record(42, 7, &payload);
    for cut in 0..encoded.len() {
        assert_eq!(
            decode_record(&encoded[..cut]).unwrap_err(),
            RecordError::Truncated,
            "cut {cut}"
        );
    }
    for index in 0..encoded.len() {
        for bit in 0..8u8 {
            let mut mutated = encoded.clone();
            mutated[index] ^= 1 << bit;
            if let Ok((record, _)) = decode_record(&mutated) {
                assert!(
                    record.session != 42 || record.seq != 7 || record.payload != payload,
                    "index {index} bit {bit} decoded to the original"
                );
            }
        }
    }

    assert!(check_segment_header(SEGMENT_MAGIC).is_ok());
    assert_eq!(
        check_segment_header(&SEGMENT_MAGIC[..7]).unwrap_err(),
        RecordError::Truncated
    );
    let mut wrong = *SEGMENT_MAGIC;
    wrong[7] ^= 1;
    assert_eq!(
        check_segment_header(&wrong).unwrap_err(),
        RecordError::BadMagic
    );
}
