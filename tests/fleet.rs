//! Fleet determinism contract: a sharded fleet run is bit-identical to
//! solo sessions, shard count does not matter, per-session fault plans are
//! interleaving-independent, and eviction preserves quarantine state.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use chameleon_core::{ChameleonConfig, EvalReport, Strategy};
use chameleon_faults::FaultPlan;
use chameleon_fleet::{
    FleetConfig, FleetEngine, SessionCheckpoint, SessionCommand, SessionEventKind, SessionId,
    SessionSpec, UserSession,
};
use chameleon_stream::{DatasetSpec, DomainIlScenario, PreferenceProfile, StreamConfig};

fn scenario() -> Arc<DomainIlScenario> {
    Arc::new(DomainIlScenario::generate(
        &DatasetSpec::core50_tiny(),
        0xF1EE7,
    ))
}

/// Per-user spec: distinct stream seed and a rotating preference skew, so
/// the sessions are genuinely different workloads.
fn user_spec(user: SessionId) -> SessionSpec {
    let classes = DatasetSpec::core50_tiny().num_classes;
    let base = (user as usize * 3) % classes;
    SessionSpec {
        learner: ChameleonConfig {
            long_term_capacity: 30,
            ..ChameleonConfig::default()
        },
        stream: StreamConfig {
            preference: PreferenceProfile::Skewed {
                preferred: vec![base, (base + 1) % classes, (base + 2) % classes],
                boost: 8.0,
            },
            ..StreamConfig::default()
        },
        learner_seed: user.wrapping_mul(31) ^ 5,
        stream_seed: user.wrapping_add(100),
    }
}

/// Runs `users` to completion on a fleet, round-robin in small step slices
/// to force interleaving, then evaluates and checkpoints every session.
fn run_fleet(
    scenario: Arc<DomainIlScenario>,
    users: &[SessionId],
    num_shards: usize,
    budget_bytes: u64,
    faults: Option<FaultPlan>,
) -> HashMap<SessionId, (EvalReport, Vec<u8>)> {
    let mut fleet = FleetEngine::new(
        scenario,
        FleetConfig {
            num_shards,
            budget_bytes,
            faults,
            ..FleetConfig::default()
        },
    );
    for &user in users {
        fleet
            .create_blocking(user, user_spec(user))
            .expect("create");
    }
    let mut live: Vec<SessionId> = users.to_vec();
    while !live.is_empty() {
        for &user in &live {
            fleet
                .command_blocking(user, SessionCommand::Step { batches: 5 })
                .expect("step");
        }
        for event in fleet.drain_pending() {
            if let SessionEventKind::Stepped { done: true, .. } = event.kind {
                live.retain(|&u| u != event.session);
            }
        }
    }
    for &user in users {
        fleet
            .command_blocking(user, SessionCommand::Evaluate)
            .expect("evaluate");
        fleet
            .command_blocking(user, SessionCommand::Checkpoint)
            .expect("checkpoint");
    }
    let mut reports = HashMap::new();
    let mut blobs = HashMap::new();
    for event in fleet.drain_pending() {
        match event.kind {
            SessionEventKind::Evaluated(report) => {
                reports.insert(event.session, *report);
            }
            SessionEventKind::Checkpointed(blob) => {
                blobs.insert(event.session, blob);
            }
            SessionEventKind::Failed(reason) => panic!("request failed: {reason}"),
            _ => {}
        }
    }
    users
        .iter()
        .map(|&u| {
            (
                u,
                (
                    reports.remove(&u).expect("report"),
                    blobs.remove(&u).expect("blob"),
                ),
            )
        })
        .collect()
}

/// Runs one user solo (no fleet), returning the same observables.
fn run_solo(
    scenario: Arc<DomainIlScenario>,
    user: SessionId,
    faults: Option<&FaultPlan>,
) -> (EvalReport, Vec<u8>) {
    let mut session = UserSession::new(user, user_spec(user), scenario, faults);
    while session.step_batch() {}
    let report = session.evaluate();
    let blob = SessionCheckpoint::capture(&session).to_bytes();
    (report, blob)
}

#[test]
fn four_shard_fleet_matches_solo_runs_bit_for_bit() {
    let scenario = scenario();
    let users = [2u64, 11, 29];
    let fleet = run_fleet(Arc::clone(&scenario), &users, 4, u64::MAX, None);
    for &user in &users {
        let (solo_report, solo_blob) = run_solo(Arc::clone(&scenario), user, None);
        let (fleet_report, fleet_blob) = &fleet[&user];
        assert_eq!(*fleet_report, solo_report, "user {user} report diverged");
        assert_eq!(*fleet_blob, solo_blob, "user {user} checkpoint diverged");
    }
}

#[test]
fn shard_count_is_invisible_even_under_faults() {
    let scenario = scenario();
    let users = [1u64, 7, 40];
    let plan = FaultPlan::bit_flips(0xBAD, 1e-4);
    let one = run_fleet(Arc::clone(&scenario), &users, 1, u64::MAX, Some(plan));
    let four = run_fleet(Arc::clone(&scenario), &users, 4, u64::MAX, Some(plan));
    for &user in &users {
        assert_eq!(
            one[&user], four[&user],
            "user {user} diverged across shard counts"
        );
        let solo = run_solo(Arc::clone(&scenario), user, Some(&plan));
        assert_eq!(one[&user].0, solo.0, "user {user} diverged from solo");
        assert_eq!(
            one[&user].1, solo.1,
            "user {user} checkpoint diverged from solo"
        );
    }
}

#[test]
fn budget_constrained_runs_are_reproducible() {
    // Eviction resets transient training state, so a thrashing run need
    // not match an unconstrained one — but the same command sequence must
    // reproduce the same eviction pattern and the same results.
    let scenario = scenario();
    let users = [3u64, 8, 21, 34];
    let budget = 1; // evict on every admit beyond the first
    let a = run_fleet(Arc::clone(&scenario), &users, 2, budget, None);
    let b = run_fleet(Arc::clone(&scenario), &users, 2, budget, None);
    assert_eq!(a, b);
}

#[test]
fn eviction_preserves_quarantine_state() {
    let scenario = scenario();
    let mut session = UserSession::new(9, user_spec(9), Arc::clone(&scenario), None);
    session.step_batches(20);

    // Upset resident samples without resealing checksums — exactly what
    // memory faults do. The corruption must survive evict/restore.
    let mut upset = 0;
    session.learner_mut().visit_stores(&mut |_, sample| {
        if upset < 4 && !sample.features.is_empty() {
            sample.features[0] += 1.0;
            upset += 1;
        }
    });
    assert_eq!(upset, 4);
    let corrupt_before = count_corrupt(&mut session);
    assert_eq!(corrupt_before, 4);
    let counters_before = session.learner().counters();

    let ck = SessionCheckpoint::capture(&session);
    let mut restored = ck.restore(Arc::clone(&scenario), None).expect("restore");
    assert_eq!(count_corrupt(&mut restored), corrupt_before);
    assert_eq!(restored.learner().counters(), counters_before);
    // Re-capturing is byte-stable: eviction is idempotent on observables.
    assert_eq!(
        SessionCheckpoint::capture(&restored).to_bytes(),
        ck.to_bytes()
    );
}

fn count_corrupt(session: &mut UserSession) -> usize {
    let mut corrupt = 0;
    session.learner_mut().visit_stores(&mut |_, sample| {
        if !sample.integrity_ok() {
            corrupt += 1;
        }
    });
    corrupt
}

#[test]
fn backpressure_rejects_then_recovers() {
    let scenario = scenario();
    let mut fleet = FleetEngine::new(
        scenario,
        FleetConfig {
            num_shards: 1,
            queue_depth: 1,
            ..FleetConfig::default()
        },
    );
    fleet.create_blocking(0, user_spec(0)).expect("create");
    assert_eq!(
        fleet.create(0, user_spec(0)),
        Err(chameleon_fleet::FleetError::DuplicateSession)
    );
    assert_eq!(
        fleet.command(99, SessionCommand::Step { batches: 1 }),
        Err(chameleon_fleet::FleetError::UnknownSession)
    );

    // Occupy the worker with a long step, then flood the depth-1 queue:
    // a rejection must surface, carrying the configured bound.
    fleet
        .command_blocking(0, SessionCommand::Step { batches: 48 })
        .expect("long step");
    let mut rejected = None;
    for _ in 0..1000 {
        match fleet.command(0, SessionCommand::Step { batches: 0 }) {
            Err(chameleon_fleet::FleetError::Rejected(bp)) => {
                rejected = Some(bp);
                break;
            }
            Ok(()) => {}
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    let bp = rejected.expect("queue depth 1 never rejected");
    assert_eq!(bp.shard, 0);
    assert_eq!(bp.queue_depth, 1);

    // The blocking path rides out the same backpressure, and every
    // accepted request is eventually acknowledged.
    fleet
        .command_blocking(0, SessionCommand::Evaluate)
        .expect("recover");
    fleet.drain_pending();
    assert_eq!(fleet.pending(), 0);
    let metrics = fleet.metrics();
    assert_eq!(metrics.queue_depth(), 0);
    assert!(metrics.batches() >= 48);
}

#[test]
fn dropping_an_engine_with_pending_work_joins_all_workers() {
    // Callers that forget `shutdown()` must still get a clean teardown:
    // `Drop` sends Shutdown to every shard and joins the threads. Shard
    // workers (and the sessions they host) hold `Arc` clones of the
    // scenario, so the strong count returning to 1 proves every worker
    // thread actually exited and released its state — not merely detached.
    let scenario = scenario();
    assert_eq!(Arc::strong_count(&scenario), 1);
    {
        let mut fleet = FleetEngine::new(
            Arc::clone(&scenario),
            FleetConfig {
                num_shards: 3,
                ..FleetConfig::default()
            },
        );
        for user in 0..6u64 {
            fleet
                .create_blocking(user, user_spec(user))
                .expect("create");
            fleet
                .command_blocking(user, SessionCommand::Step { batches: 8 })
                .expect("step");
        }
        // Deliberately no `drain_pending()` and no `shutdown()`: the
        // engine is dropped with requests still in flight.
        assert!(fleet.pending() > 0, "work should still be pending");
    }
    assert_eq!(
        Arc::strong_count(&scenario),
        1,
        "a shard worker outlived the engine drop"
    );
}

#[test]
fn assignment_spreads_sessions_and_ignores_arrival_order() {
    let scenario = scenario();
    let fleet = FleetEngine::new(
        Arc::clone(&scenario),
        FleetConfig {
            num_shards: 4,
            assignment_seed: 7,
            ..FleetConfig::default()
        },
    );
    let mut counts = [0usize; 4];
    for id in 0..64u64 {
        counts[fleet.shard_of(id)] += 1;
    }
    assert!(
        counts.iter().all(|&c| c > 0),
        "seeded hash left a shard empty: {counts:?}"
    );
    // Assignment is a pure function of (seed, id): a second engine with
    // the same seed agrees on every id.
    let again = FleetEngine::new(
        scenario,
        FleetConfig {
            num_shards: 4,
            assignment_seed: 7,
            ..FleetConfig::default()
        },
    );
    for id in 0..64u64 {
        assert_eq!(fleet.shard_of(id), again.shard_of(id));
    }
}

/// The observability contract: per-stage span totals reconcile *exactly*
/// with `ShardMetrics.*_nanos`, because the shard workers feed both from
/// one elapsed measurement. Run under simulation so the numbers are also
/// deterministic across runs.
#[test]
fn observer_span_totals_reconcile_with_shard_metrics() {
    use chameleon_obs::Stage;

    let run = |seed: u64| {
        let mut fleet = FleetEngine::new_sim(
            scenario(),
            FleetConfig {
                num_shards: 3,
                budget_bytes: 200_000, // tight enough to force evictions
                ..FleetConfig::default()
            },
            seed,
        );
        for user in 0..6u64 {
            fleet
                .create_blocking(user, user_spec(user))
                .expect("create");
        }
        for round in 0..4 {
            for user in 0..6u64 {
                fleet
                    .command_blocking(user, SessionCommand::Step { batches: 2 })
                    .expect("step");
            }
            if round == 2 {
                for user in 0..6u64 {
                    fleet
                        .command_blocking(user, SessionCommand::Evaluate)
                        .expect("evaluate");
                    fleet
                        .command_blocking(user, SessionCommand::Checkpoint)
                        .expect("checkpoint");
                }
            }
        }
        fleet.drain_pending();
        let metrics = fleet.metrics();
        let observer = fleet.observer();
        (metrics, observer)
    };

    let (metrics, observer) = run(0xC0FFEE);
    for (stage, expected) in [
        (Stage::Step, metrics.step_nanos()),
        (Stage::Eval, metrics.eval_nanos()),
        (Stage::Checkpoint, metrics.checkpoint_nanos()),
        (Stage::Restore, metrics.restore_nanos()),
    ] {
        let stats = observer.stage_stats(stage);
        assert_eq!(
            stats.total_nanos, expected,
            "{stage} span total must reconcile with ShardMetrics"
        );
        assert!(
            stats.count > 0 || expected == 0,
            "{stage} count/total mismatch"
        );
        assert!(stats.max_nanos <= stats.total_nanos);
    }
    assert!(
        observer.stage_stats(Stage::Step).count > 0,
        "no step spans recorded"
    );
    assert!(
        observer.stage_stats(Stage::Checkpoint).count > 0,
        "evictions/checkpoints recorded no spans"
    );

    // Deterministic: the same seed reproduces every aggregate bit for bit.
    let (_, again) = run(0xC0FFEE);
    assert_eq!(observer.snapshot_spans(), again.snapshot_spans());
}

/// Runs one session on a 4-shard sim engine for `rounds` step slices,
/// invoking `action` at every slice boundary, then returns the final
/// evaluation report and `CHAMFLT1` checkpoint bytes.
fn run_with_boundary_action(
    scenario: Arc<DomainIlScenario>,
    user: SessionId,
    sim_seed: u64,
    rounds: usize,
    action: &mut dyn FnMut(&mut FleetEngine, usize),
) -> (EvalReport, Vec<u8>) {
    let mut fleet = FleetEngine::new_sim(
        scenario,
        FleetConfig {
            num_shards: 4,
            budget_bytes: u64::MAX,
            ..FleetConfig::default()
        },
        sim_seed,
    );
    fleet
        .create_blocking(user, user_spec(user))
        .expect("create");
    for round in 0..rounds {
        action(&mut fleet, round);
        fleet
            .command_blocking(user, SessionCommand::Step { batches: 4 })
            .expect("step");
    }
    fleet
        .command_blocking(user, SessionCommand::Evaluate)
        .expect("evaluate");
    fleet
        .command_blocking(user, SessionCommand::Checkpoint)
        .expect("checkpoint");
    let mut report = None;
    let mut blob = None;
    for event in fleet.drain_pending() {
        match event.kind {
            SessionEventKind::Evaluated(r) => report = Some(*r),
            SessionEventKind::Checkpointed(b) => blob = Some(b),
            SessionEventKind::Failed(reason) => panic!("request failed: {reason}"),
            _ => {}
        }
    }
    (report.expect("report"), blob.expect("blob"))
}

proptest! {
    /// The `chameleon-balance` safety contract at single-session grain:
    /// an online migration injected at *any* step boundary, to *any*
    /// other shard, yields the same evaluation report and bit-identical
    /// `CHAMFLT1` checkpoint bytes as a local `Evict` at the same
    /// boundary. Placement is a pure routing concern; the learner
    /// cannot tell a cross-shard move from a budget eviction.
    #[test]
    fn migration_at_any_step_boundary_matches_an_evict_there(
        user in 0u64..512,
        boundary in 0usize..6,
        hop in 1usize..4,
        sim_seed in 0u64..0x1_0000_0000u64,
    ) {
        let scenario = scenario();
        let migrated = run_with_boundary_action(
            Arc::clone(&scenario),
            user,
            sim_seed,
            6,
            &mut |fleet, round| {
                if round == boundary {
                    let to = (fleet.shard_of(user) + hop) % 4;
                    let moved = fleet.migrate_session(user, to).expect("migrate");
                    assert!(moved, "distinct-shard migration must perform");
                }
            },
        );
        let evicted = run_with_boundary_action(
            scenario,
            user,
            sim_seed,
            6,
            &mut |fleet, round| {
                if round == boundary {
                    fleet
                        .command_blocking(user, SessionCommand::Evict)
                        .expect("evict");
                }
            },
        );
        prop_assert_eq!(&migrated.0, &evicted.0, "report diverged");
        prop_assert_eq!(&migrated.1, &evicted.1, "checkpoint bytes diverged");
    }
}
