//! Routing-tier contract: a session driven through a `chameleon-route`
//! proxy behaves exactly like the same command sequence on a single
//! node. A handoff (administrative drain) or shadow failover (backend
//! declared dead) is observably identical to a local evict/restore at
//! the same command boundary — checkpoint restore resets transient
//! training state by design (see `chameleon-core`'s checkpoint docs), so
//! the reference for bit-identity is the single-node run with `Evict`
//! inserted at the same points, and the claim proved here is that
//! *placement is invisible*: which node a session lives on, and how many
//! times it moved, never changes a single byte of its outcome.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use chameleon_core::ChameleonConfig;
use chameleon_faults::FaultPlan;
use chameleon_fleet::{FleetConfig, SessionId, SessionSpec, FLEET_MAGIC};
use chameleon_route::{BackendState, Router, RouterConfig};
use chameleon_runtime::VirtualClock;
use chameleon_serve::wire::PredictSummary;
use chameleon_serve::{ClientError, Connection, ServeConfig, Server};
use chameleon_stream::{DatasetSpec, DomainIlScenario, PreferenceProfile, StreamConfig};

fn scenario() -> Arc<DomainIlScenario> {
    Arc::new(DomainIlScenario::generate(
        &DatasetSpec::core50_tiny(),
        0xF1EE7,
    ))
}

/// Same per-user spec construction as `tests/serve.rs`, so routed
/// sessions are comparable against the single-node suites.
fn user_spec(user: SessionId) -> SessionSpec {
    let classes = DatasetSpec::core50_tiny().num_classes;
    let base = (user as usize * 3) % classes;
    SessionSpec {
        learner: ChameleonConfig {
            long_term_capacity: 30,
            ..ChameleonConfig::default()
        },
        stream: StreamConfig {
            preference: PreferenceProfile::Skewed {
                preferred: vec![base, (base + 1) % classes, (base + 2) % classes],
                boost: 8.0,
            },
            ..StreamConfig::default()
        },
        learner_seed: user.wrapping_mul(31) ^ 5,
        stream_seed: user.wrapping_add(100),
    }
}

struct Cluster {
    backends: Vec<Server>,
    router: Router,
}

fn start_cluster(n: usize, faults: Option<FaultPlan>) -> Cluster {
    start_cluster_with(n, faults, ServeConfig::default(), |_| {})
}

fn start_cluster_with(
    n: usize,
    faults: Option<FaultPlan>,
    serve_config: ServeConfig,
    tweak: impl FnOnce(&mut RouterConfig),
) -> Cluster {
    let scenario = scenario();
    let backends: Vec<Server> = (0..n)
        .map(|_| {
            Server::start(
                Arc::clone(&scenario),
                FleetConfig {
                    num_shards: 2,
                    faults,
                    ..FleetConfig::default()
                },
                serve_config.clone(),
            )
            .expect("start backend")
        })
        .collect();
    let mut config = RouterConfig {
        addr: "127.0.0.1:0".into(),
        backends: backends
            .iter()
            .map(|s| s.local_addr().to_string())
            .collect(),
        probe_interval: Duration::from_millis(20),
        ..RouterConfig::default()
    };
    tweak(&mut config);
    let router = Router::start(config).expect("start router");
    Cluster { backends, router }
}

fn connect_to(addr: std::net::SocketAddr) -> Connection {
    let mut conn = Connection::connect(addr).expect("connect");
    conn.set_clock(VirtualClock::shared(0));
    conn
}

type Outcome = (PredictSummary, Vec<u8>);

/// The reference: the same per-session command sequence on ONE server,
/// with an `Evict` standing in for the interruption at the same boundary
/// for exactly the sessions the routed run moved.
fn run_single_node_reference(
    users: &[SessionId],
    pre_batches: u32,
    interrupted: &BTreeSet<SessionId>,
    faults: Option<FaultPlan>,
) -> Vec<Outcome> {
    let mut server = Server::start(
        scenario(),
        FleetConfig {
            num_shards: 2,
            faults,
            ..FleetConfig::default()
        },
        ServeConfig::default(),
    )
    .expect("start reference server");
    let mut conn = connect_to(server.local_addr());
    for &user in users {
        conn.create_session(user, user_spec(user)).expect("create");
        let _ = conn.step(user, pre_batches).expect("step");
        if interrupted.contains(&user) {
            conn.evict(user).expect("evict");
        }
    }
    let outcomes = users
        .iter()
        .map(|&user| {
            conn.run_to_completion(user, 7).expect("finish");
            let summary = conn.predict(user).expect("predict");
            let blob = conn.checkpoint(user).expect("checkpoint");
            (summary, blob)
        })
        .collect();
    server.shutdown();
    outcomes
}

fn assert_outcomes_match(routed: &[Outcome], reference: &[Outcome], users: &[SessionId]) {
    for ((got, want), user) in routed.iter().zip(reference).zip(users) {
        assert_eq!(&got.1[..8], &FLEET_MAGIC[..], "user {user} magic");
        assert_eq!(got.0.acc_all, want.0.acc_all, "user {user} acc");
        assert_eq!(got.0.per_domain, want.0.per_domain, "user {user} domains");
        assert_eq!(got.1, want.1, "user {user} checkpoint diverged");
    }
}

/// Drives 3 users through the router with a mid-stream administrative
/// drain of whichever backend owns the first user, then checks every
/// observable against the single-node reference with the same
/// interruption schedule.
fn assert_drain_handoff_matches_single_node(faults: Option<FaultPlan>) {
    let users: [SessionId; 3] = [2, 11, 29];
    let mut cluster = start_cluster(2, faults);
    let mut conn = connect_to(cluster.router.local_addr());

    for &user in &users {
        conn.create_session(user, user_spec(user)).expect("create");
        let _ = conn.step(user, 10).expect("step before drain");
    }

    let victim = cluster.router.owner_of(users[0]).expect("owner pinned");
    let moved: BTreeSet<SessionId> = users
        .iter()
        .copied()
        .filter(|&u| cluster.router.owner_of(u) == Some(victim))
        .collect();
    let handed_off = cluster.router.drain_backend(victim).expect("drain");
    assert_eq!(handed_off, moved.len(), "drain must move exactly its pins");
    assert_eq!(
        cluster.router.backend_states()[victim].1,
        BackendState::Draining
    );
    assert_ne!(
        cluster.router.owner_of(users[0]),
        Some(victim),
        "drained session must have a new owner"
    );

    let routed: Vec<Outcome> = users
        .iter()
        .map(|&user| {
            conn.run_to_completion(user, 7).expect("finish");
            let summary = conn.predict(user).expect("predict");
            let blob = conn.checkpoint(user).expect("checkpoint");
            (summary, blob)
        })
        .collect();

    let reference = run_single_node_reference(&users, 10, &moved, faults);
    assert_outcomes_match(&routed, &reference, &users);

    let metrics = cluster.router.metrics();
    assert_eq!(metrics.decode_rejects, 0);
    assert_eq!(metrics.sessions_handed_off, moved.len() as u64);
    for backend in &mut cluster.backends {
        backend.shutdown();
    }
}

#[test]
fn drain_handoff_mid_stream_matches_single_node_evict_restore() {
    assert_drain_handoff_matches_single_node(None);
}

#[test]
fn drain_handoff_stays_bit_identical_under_fault_plan() {
    assert_drain_handoff_matches_single_node(Some(FaultPlan::bit_flips(0xBAD, 1e-4)));
}

#[test]
fn dead_backend_failover_recovers_sessions_from_shadow_checkpoints() {
    let users: [SessionId; 3] = [2, 11, 29];
    let mut cluster = start_cluster(2, None);
    let mut conn = connect_to(cluster.router.local_addr());

    for &user in &users {
        conn.create_session(user, user_spec(user)).expect("create");
        let _ = conn.step(user, 13).expect("step before kill");
    }

    // Declare a backend dead without warning it (no export happens; the
    // router must fall back to the shadow checkpoints it refreshed after
    // the last acknowledged step).
    let victim = cluster.router.owner_of(users[0]).expect("owner pinned");
    let moved: BTreeSet<SessionId> = users
        .iter()
        .copied()
        .filter(|&u| cluster.router.owner_of(u) == Some(victim))
        .collect();
    let recovered = cluster.router.mark_dead(victim).expect("mark dead");
    assert_eq!(recovered, moved.len(), "every pinned session must re-home");
    assert_eq!(
        cluster.router.backend_states()[victim].1,
        BackendState::Dead
    );

    let routed: Vec<Outcome> = users
        .iter()
        .map(|&user| {
            conn.run_to_completion(user, 7)
                .expect("finish after failover");
            let summary = conn.predict(user).expect("predict");
            let blob = conn.checkpoint(user).expect("checkpoint");
            (summary, blob)
        })
        .collect();

    let reference = run_single_node_reference(&users, 13, &moved, None);
    assert_outcomes_match(&routed, &reference, &users);

    let metrics = cluster.router.metrics();
    assert_eq!(metrics.failovers, moved.len() as u64);
    assert_eq!(metrics.sessions_handed_off, moved.len() as u64);
    assert_eq!(metrics.decode_rejects, 0);
    for backend in &mut cluster.backends {
        backend.shutdown();
    }
}

#[test]
fn external_handoff_frames_are_refused_and_stats_aggregate() {
    let users: [SessionId; 2] = [3, 4];
    let mut cluster = start_cluster(2, None);
    let mut conn = connect_to(cluster.router.local_addr());
    conn.ping().expect("ping answered by the router itself");

    for &user in &users {
        conn.create_session(user, user_spec(user)).expect("create");
        let _ = conn.step(user, 5).expect("step");
    }

    // Handoff opcodes are router-internal: a client must not be able to
    // teleport sessions (or forge imports) through the proxy.
    let err = conn.handoff_export(users[0]).expect_err("must refuse");
    assert!(matches!(err, ClientError::Refused { .. }), "{err:?}");
    let err = conn
        .handoff_import(99, vec![1, 2, 3])
        .expect_err("must refuse");
    assert!(matches!(err, ClientError::Refused { .. }), "{err:?}");

    // A session never created through the router has no pin.
    let err = conn.step(777, 1).expect_err("unknown session");
    assert!(matches!(err, ClientError::Refused { .. }), "{err:?}");

    // Stats and probe answers are fleet-wide sums over the backends.
    let stats = conn.stats().expect("stats");
    assert_eq!(stats.sessions_created, users.len() as u64);
    let summary = conn.probe().expect("probe");
    assert_eq!(
        summary.sessions_resident + summary.sessions_cold,
        users.len() as u64
    );

    // The unified observation merges router counters with backend views.
    let observation = conn.observe().expect("observe");
    assert!(observation.counter("route.requests_in").unwrap_or(0) > 0);
    assert_eq!(observation.counter("route.decode_rejects"), Some(0));
    assert_eq!(observation.counter("route.backends_healthy"), Some(2));
    assert!(observation.counter("fleet.batches").unwrap_or(0) > 0);

    for backend in &mut cluster.backends {
        backend.shutdown();
    }
}

/// SIGKILL-the-router: shut the router down abruptly mid-run (the state
/// log even gets a torn tail, as a crashed process would leave), start a
/// fresh router over the same backends and state dir, and require it to
/// resume routing, pinning, and shadow failover exactly where the old
/// one stopped — with the placement-invisibility contract still holding
/// bit for bit.
#[test]
fn restarted_router_recovers_pins_and_shadows_from_state_log() {
    let users: [SessionId; 3] = [2, 11, 29];
    let state_dir =
        std::env::temp_dir().join(format!("chameleon-route-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);

    let mut cluster = start_cluster_with(2, None, ServeConfig::default(), |config| {
        config.state_dir = Some(state_dir.clone());
    });
    let backend_addrs: Vec<String> = cluster
        .backends
        .iter()
        .map(|s| s.local_addr().to_string())
        .collect();
    let mut conn = connect_to(cluster.router.local_addr());
    for &user in &users {
        conn.create_session(user, user_spec(user)).expect("create");
        let _ = conn.step(user, 13).expect("step before router restart");
    }
    let owners_before: Vec<Option<usize>> =
        users.iter().map(|&u| cluster.router.owner_of(u)).collect();
    drop(conn);
    cluster.router.shutdown();

    // A crashed router can die mid-append: leave a torn partial record
    // on the log's tail. Recovery must truncate it away, not refuse.
    {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(state_dir.join("ROUTER.log"))
            .expect("open state log");
        file.write_all(&[0x55; 7]).expect("append torn tail");
    }

    let router = Router::start(RouterConfig {
        addr: "127.0.0.1:0".into(),
        backends: backend_addrs,
        probe_interval: Duration::from_millis(20),
        state_dir: Some(state_dir.clone()),
        ..RouterConfig::default()
    })
    .expect("restart router over the same state dir");
    let metrics = router.metrics();
    assert_eq!(metrics.pins_recovered, users.len() as u64);
    assert!(
        metrics.shadows_recovered >= users.len() as u64,
        "every session must come back with a shadow, got {}",
        metrics.shadows_recovered
    );
    let owners_after: Vec<Option<usize>> = users.iter().map(|&u| router.owner_of(u)).collect();
    assert_eq!(
        owners_before, owners_after,
        "placement must survive restart"
    );

    // Failover must still fire from the *recovered* shadows: declare the
    // first user's backend dead on the restarted router.
    let victim = router.owner_of(users[0]).expect("owner pinned");
    let moved: BTreeSet<SessionId> = users
        .iter()
        .copied()
        .filter(|&u| router.owner_of(u) == Some(victim))
        .collect();
    let recovered = router.mark_dead(victim).expect("mark dead");
    assert_eq!(recovered, moved.len(), "recovered shadows must re-home");

    let mut conn = connect_to(router.local_addr());
    let routed: Vec<Outcome> = users
        .iter()
        .map(|&user| {
            conn.run_to_completion(user, 7).expect("finish");
            let summary = conn.predict(user).expect("predict");
            let blob = conn.checkpoint(user).expect("checkpoint");
            (summary, blob)
        })
        .collect();
    let reference = run_single_node_reference(&users, 13, &moved, None);
    assert_outcomes_match(&routed, &reference, &users);

    let metrics = router.metrics();
    assert_eq!(metrics.failovers, moved.len() as u64);
    assert_eq!(metrics.decode_rejects, 0);
    assert_eq!(metrics.state_append_failures, 0);
    for backend in &mut cluster.backends {
        backend.shutdown();
    }
    drop(router);
    let _ = std::fs::remove_dir_all(&state_dir);
}

/// A worker that panics mid-request (here: injected while holding the
/// registry lock — the worst possible poison) must cost exactly its own
/// connection. Every other worker, the prober, and the admin API keep
/// serving off the poisoned locks, and outcomes stay bit-identical.
#[test]
fn router_survives_a_worker_panic_and_keeps_serving() {
    let users: [SessionId; 3] = [2, 11, 29];
    let panicking = users[1];
    let mut cluster = start_cluster_with(2, None, ServeConfig::default(), |config| {
        config.fault_panic_session = Some(panicking);
    });
    let mut conn = connect_to(cluster.router.local_addr());
    for &user in &users {
        conn.create_session(user, user_spec(user)).expect("create");
    }
    let _ = conn.step(users[0], 10).expect("step on a healthy worker");
    // The injected fault: the worker handling this step panics while
    // holding the registry lock, before forwarding anything. The client
    // sees its connection die with no reply; the op was never applied.
    conn.step(panicking, 10)
        .expect_err("the panicking worker must drop the connection");

    // A fresh connection lands on a surviving worker; the router must
    // keep routing off the poisoned locks as if nothing happened.
    let mut conn = connect_to(cluster.router.local_addr());
    let _ = conn.step(panicking, 10).expect("step after the panic");
    let _ = conn.step(users[2], 10).expect("step after the panic");
    let routed: Vec<Outcome> = users
        .iter()
        .map(|&user| {
            conn.run_to_completion(user, 7).expect("finish");
            let summary = conn.predict(user).expect("predict");
            let blob = conn.checkpoint(user).expect("checkpoint");
            (summary, blob)
        })
        .collect();
    let reference = run_single_node_reference(&users, 10, &BTreeSet::new(), None);
    assert_outcomes_match(&routed, &reference, &users);

    let metrics = cluster.router.metrics();
    assert_eq!(metrics.decode_rejects, 0);
    assert_eq!(
        cluster
            .router
            .backend_states()
            .iter()
            .filter(|(_, s)| *s == BackendState::Healthy)
            .count(),
        2,
        "no backend may be blamed for a router-side panic"
    );
    for backend in &mut cluster.backends {
        backend.shutdown();
    }
}

/// The deleted sizing rule: backends used to need `serve workers ≥
/// router workers + 2` or concurrent forwards would deadlock the old
/// per-worker connection pools into a silent stall. With one
/// multiplexed connection per backend there is nothing to size — even a
/// single-worker backend under a full router worker fan-in must make
/// progress and finish with zero forward failures.
#[test]
fn undersized_backend_no_longer_stalls_concurrent_forwards() {
    let serve_config = ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    };
    let mut cluster = start_cluster_with(1, None, serve_config, |_| {});
    let addr = cluster.router.local_addr();
    let handles: Vec<_> = [2u64, 11, 29, 31]
        .into_iter()
        .map(|user| {
            std::thread::spawn(move || {
                let mut conn = connect_to(addr);
                conn.create_session(user, user_spec(user)).expect("create");
                let _ = conn.step(user, 5).expect("step");
                conn.run_to_completion(user, 7).expect("finish");
                conn.checkpoint(user).expect("checkpoint")
            })
        })
        .collect();
    for handle in handles {
        let blob = handle.join().expect("concurrent session completes");
        assert_eq!(&blob[..8], &FLEET_MAGIC[..]);
    }
    let metrics = cluster.router.metrics();
    assert_eq!(
        metrics.forward_failures, 0,
        "a 1-worker backend must not cost a single forward"
    );
    for backend in &mut cluster.backends {
        backend.shutdown();
    }
}
