//! Durable-store integration: a store-attached fleet behaves bit-identically
//! to a RAM-only fleet, its counters reconcile with eviction counts, and
//! `FleetEngine::recover` rebuilds every session to its last sealed
//! checkpoint with bit-identical subsequent training.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use chameleon_core::ChameleonConfig;
use chameleon_fleet::{
    FleetConfig, FleetEngine, SessionCheckpoint, SessionCommand, SessionEventKind, SessionId,
    SessionSpec,
};
use chameleon_runtime::Runtime;
use chameleon_store::{SharedStore, StoreConfig};
use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};

fn scenario() -> Arc<DomainIlScenario> {
    Arc::new(DomainIlScenario::generate(
        &DatasetSpec::core50_tiny(),
        0x5709E,
    ))
}

fn spec(user: SessionId) -> SessionSpec {
    SessionSpec {
        learner: ChameleonConfig {
            long_term_capacity: 30,
            ..ChameleonConfig::default()
        },
        stream: StreamConfig::default(),
        learner_seed: user.wrapping_mul(17) ^ 3,
        stream_seed: user.wrapping_add(41),
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "chameleon-fleet-store-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> FleetConfig {
    FleetConfig {
        num_shards: 2,
        ..FleetConfig::default()
    }
}

/// Creates users, steps each, evicts each, then checkpoints each;
/// returns each user's blob from the Checkpointed event.
fn run_workload(fleet: &mut FleetEngine, users: &[SessionId]) -> HashMap<SessionId, Vec<u8>> {
    for &user in users {
        fleet.create_blocking(user, spec(user)).expect("create");
    }
    for &user in users {
        fleet
            .command_blocking(user, SessionCommand::Step { batches: 10 })
            .expect("step");
    }
    for &user in users {
        fleet
            .command_blocking(user, SessionCommand::Evict)
            .expect("evict");
    }
    for &user in users {
        fleet
            .command_blocking(user, SessionCommand::Checkpoint)
            .expect("checkpoint");
    }
    let mut blobs = HashMap::new();
    for event in fleet.drain_pending() {
        if let SessionEventKind::Checkpointed(blob) = event.kind {
            blobs.insert(event.session, blob);
        }
    }
    blobs
}

#[test]
fn store_attached_fleet_is_bit_identical_to_ram_only() {
    let users = [1u64, 2, 3, 4];
    let dir = scratch("parity");
    let store = SharedStore::open(StoreConfig::new(&dir)).expect("open store");

    let mut with_store =
        FleetEngine::with_store(scenario(), config(), Runtime::sim(7), store.clone());
    let stored_blobs = run_workload(&mut with_store, &users);

    let mut ram_only = FleetEngine::new_sim(scenario(), config(), 7);
    let ram_blobs = run_workload(&mut ram_only, &users);

    assert_eq!(stored_blobs.len(), users.len());
    for &user in &users {
        assert_eq!(
            stored_blobs[&user], ram_blobs[&user],
            "user {user}: spilling through the store changed checkpoint bytes"
        );
    }

    // Reconciliation: every eviction wrote through the store, exactly once
    // (budget is unbounded, so the 4 explicit evicts are the only ones).
    let evictions = with_store.metrics().evictions();
    let counters = store.counters();
    assert_eq!(counters.appends, evictions);
    assert_eq!(counters.appends, users.len() as u64);
    assert_eq!(counters.decode_rejects, 0);

    drop(with_store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recover_rebuilds_every_session_with_bit_identical_training() {
    let users = [10u64, 11, 12];
    let dir = scratch("recover");
    {
        let store = SharedStore::open(StoreConfig::new(&dir)).expect("open store");
        let mut fleet =
            FleetEngine::with_store(scenario(), config(), Runtime::sim(3), store.clone());
        run_workload(&mut fleet, &users);
        // Process dies here: engine dropped, store dropped, RAM gone.
    }

    let store = SharedStore::open(StoreConfig::new(&dir)).expect("reopen store");
    let (mut fleet, report) =
        FleetEngine::recover(scenario(), config(), Runtime::sim(9), store.clone())
            .expect("recover");
    assert_eq!(report.sessions_recovered, users.len());
    assert_eq!(report.decode_rejects, 0);
    assert_eq!(store.counters().sessions_recovered, users.len() as u64);

    for &user in &users {
        assert!(fleet.known(user), "recovered session {user} not known");
    }

    // Each recovered session serves its last sealed checkpoint verbatim...
    let mut recovered_blobs = HashMap::new();
    for &user in &users {
        fleet
            .command_blocking(user, SessionCommand::Checkpoint)
            .expect("checkpoint");
    }
    for event in fleet.drain_pending() {
        if let SessionEventKind::Checkpointed(blob) = event.kind {
            recovered_blobs.insert(event.session, blob);
        }
    }

    for &user in &users {
        let sealed = store.get(user).expect("store read").expect("sealed record");
        assert_eq!(
            recovered_blobs[&user], sealed,
            "user {user}: recovered checkpoint differs from last sealed record"
        );
    }

    // ...and training after recovery is bit-identical to a session restored
    // directly from the sealed blob (no store in the loop).
    for &user in &users {
        fleet
            .command_blocking(user, SessionCommand::Step { batches: 5 })
            .expect("step");
        fleet
            .command_blocking(user, SessionCommand::Checkpoint)
            .expect("checkpoint");
    }
    let mut post_blobs = HashMap::new();
    for event in fleet.drain_pending() {
        if let SessionEventKind::Checkpointed(blob) = event.kind {
            post_blobs.insert(event.session, blob);
        }
    }
    for &user in &users {
        let control = SessionCheckpoint::from_bytes(&recovered_blobs[&user])
            .expect("decode")
            .restore(scenario(), None)
            .expect("restore");
        let mut control = control;
        control.step_batches(5);
        let expected = SessionCheckpoint::capture(&control).to_bytes();
        assert_eq!(
            post_blobs[&user], expected,
            "user {user}: post-recovery training diverged from control"
        );
    }

    drop(fleet);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn budget_pressure_spills_through_the_store_and_restores_transparently() {
    let users = [20u64, 21, 22, 23, 24, 25];
    let dir = scratch("spill");
    let store = SharedStore::open(StoreConfig::new(&dir)).expect("open store");
    let tight = FleetConfig {
        num_shards: 2,
        budget_bytes: 1, // every admit evicts the previous resident
        ..FleetConfig::default()
    };
    let mut fleet = FleetEngine::with_store(scenario(), tight, Runtime::sim(5), store.clone());
    for &user in &users {
        fleet.create_blocking(user, spec(user)).expect("create");
    }
    // Round-robin steps force constant evict/restore churn through disk.
    for round in 0..3 {
        for &user in &users {
            fleet
                .command_blocking(user, SessionCommand::Step { batches: 2 + round })
                .expect("step");
        }
    }
    let events = fleet.drain_pending();
    assert!(
        events
            .iter()
            .all(|e| !matches!(e.kind, SessionEventKind::Failed(_))),
        "spill churn produced failures: {events:?}"
    );
    let metrics = fleet.metrics();
    let counters = store.counters();
    assert!(
        counters.appends > 0,
        "no spills under budget 1: {counters:?}"
    );
    assert_eq!(
        counters.appends,
        metrics.evictions(),
        "every eviction must write through the store exactly once"
    );
    assert!(metrics.restores() > 0, "no restores under churn");
    assert_eq!(counters.decode_rejects, 0);

    drop(fleet);
    std::fs::remove_dir_all(&dir).ok();
}
