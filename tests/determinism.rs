//! Reproducibility: every randomized component is seed-deterministic, so
//! each table in `EXPERIMENTS.md` can be regenerated bit-for-bit.

use chameleon_repro::core::{
    Chameleon, ChameleonConfig, Er, Gss, GssConfig, LatentReplay, ModelConfig, Strategy, Trainer,
};
use chameleon_repro::stream::{DatasetSpec, DomainIlScenario, StreamConfig};

type StrategyBuilder<'a> = Box<dyn Fn() -> Box<dyn Strategy> + 'a>;

fn run_acc(build: impl Fn() -> Box<dyn Strategy>, seed: u64) -> f32 {
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 10);
    let mut strategy = build();
    Trainer::new(StreamConfig::default())
        .run(&scenario, strategy.as_mut(), seed)
        .acc_all
}

#[test]
fn identical_seeds_reproduce_identical_accuracy() {
    let spec = DatasetSpec::core50_tiny();
    let model = ModelConfig::for_spec(&spec);
    let builders: Vec<(&str, StrategyBuilder)> = vec![
        (
            "chameleon",
            Box::new(|| Box::new(Chameleon::new(&model, ChameleonConfig::default(), 7))),
        ),
        (
            "latent",
            Box::new(|| Box::new(LatentReplay::new(&model, 40, 7))),
        ),
        ("er", Box::new(|| Box::new(Er::new(&model, 40, 7)))),
        (
            "gss",
            Box::new(|| Box::new(Gss::new(&model, GssConfig::new(40), 7))),
        ),
    ];
    for (name, build) in builders {
        let a = run_acc(&build, 3);
        let b = run_acc(&build, 3);
        assert_eq!(a, b, "{name} is not seed-deterministic");
    }
}

#[test]
fn different_stream_seeds_differ() {
    let spec = DatasetSpec::core50_tiny();
    let model = ModelConfig::for_spec(&spec);
    let build =
        || -> Box<dyn Strategy> { Box::new(Chameleon::new(&model, ChameleonConfig::default(), 7)) };
    let a = run_acc(build, 3);
    let b = run_acc(build, 4);
    // Different stream orders should produce (at least slightly) different
    // final models; equal accuracies are astronomically unlikely but not
    // impossible, so compare with a tolerance-free inequality and accept a
    // rare false failure by checking two alternative seeds as well.
    assert!(
        a != b || a != run_acc(build, 5),
        "stream seed appears to be ignored"
    );
}

#[test]
fn scenario_generation_is_seed_deterministic_across_crates() {
    let spec = DatasetSpec::openloris_tiny();
    let a = DomainIlScenario::generate(&spec, 77);
    let b = DomainIlScenario::generate(&spec, 77);
    assert_eq!(a.test_set().0.as_slice(), b.test_set().0.as_slice());
    let c = DomainIlScenario::generate(&spec, 78);
    assert_ne!(a.test_set().0.as_slice(), c.test_set().0.as_slice());
}

#[test]
fn run_many_is_order_independent() {
    // Parallel multi-seed aggregation must not depend on thread scheduling.
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 11);
    let model = ModelConfig::for_spec(&spec);
    let trainer = Trainer::new(StreamConfig::default());
    let agg1 = trainer.run_many(
        &scenario,
        |s| Box::new(LatentReplay::new(&model, 30, s)) as Box<dyn Strategy>,
        &[1, 2, 3, 4],
    );
    let agg2 = trainer.run_many(
        &scenario,
        |s| Box::new(LatentReplay::new(&model, 30, s)) as Box<dyn Strategy>,
        &[1, 2, 3, 4],
    );
    assert_eq!(agg1.acc_all.mean, agg2.acc_all.mean);
    assert_eq!(agg1.acc_all.std, agg2.acc_all.std);
}
