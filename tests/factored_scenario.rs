//! Integration: the OpenLORIS environmental-factor extension end to end.

use chameleon_repro::core::{
    backward_transfer, Chameleon, ChameleonConfig, ModelConfig, Slda, SldaConfig, Trainer,
};
use chameleon_repro::stream::{DatasetSpec, DomainFactor, DomainIlScenario, StreamConfig};

#[test]
fn factored_scenario_trains_end_to_end() {
    let mut spec = DatasetSpec::openloris_factored();
    // Shrink for test speed while keeping one factor per domain.
    spec.num_classes = 12;
    spec.train_per_class_per_domain = 8;
    spec.test_per_class_per_domain = 2;
    spec.validate().expect("shrunk spec stays valid");

    let scenario = DomainIlScenario::generate(&spec, 40);
    let model = ModelConfig::for_spec(&spec);
    let mut learner = Chameleon::new(
        &model,
        ChameleonConfig {
            long_term_capacity: 48,
            ..ChameleonConfig::default()
        },
        1,
    );
    let report = Trainer::new(StreamConfig::default()).run(&scenario, &mut learner, 1);
    let chance = 100.0 / spec.num_classes as f32;
    assert!(
        report.acc_all > 2.0 * chance,
        "factored acc {}",
        report.acc_all
    );
    assert_eq!(report.per_domain.len(), 12);
}

#[test]
fn factor_levels_order_difficulty_for_slda() {
    // Same factor family at rising levels should not get easier. SLDA is
    // the cleanest probe (no forgetting confound). Averaged over occlusion,
    // the most destructive family.
    let mut spec = DatasetSpec::openloris_factored();
    spec.num_classes = 15;
    spec.train_per_class_per_domain = 20;
    spec.test_per_class_per_domain = 4;

    let scenario = DomainIlScenario::generate(&spec, 41);
    let model = ModelConfig::for_spec(&spec);
    let mut slda = Slda::new(&model, SldaConfig::default(), 1);
    let report = Trainer::new(StreamConfig::default()).run(&scenario, &mut slda, 1);

    let level_acc = |level: u8| -> f32 {
        spec.factors
            .iter()
            .enumerate()
            .filter(|(_, f)| matches!(f, DomainFactor::Occlusion(l) if *l == level))
            .map(|(d, _)| report.per_domain[d])
            .sum::<f32>()
    };
    let l1 = level_acc(1);
    let l3 = level_acc(3);
    assert!(
        l1 + 10.0 > l3,
        "occlusion L3 ({l3}) should not be easier than L1 ({l1}) by a wide margin"
    );
}

#[test]
fn backward_transfer_is_negative_without_replay_coverage() {
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 42);
    let model = ModelConfig::for_spec(&spec);
    let mut finetune = chameleon_repro::core::Finetune::new(&model, 3);
    let snapshots =
        Trainer::new(StreamConfig::default()).run_with_domain_evals(&scenario, &mut finetune, 3);
    let bwt = backward_transfer(&snapshots);
    assert!(bwt < 0.0, "finetuning should have negative BWT, got {bwt}");
}

#[test]
fn chameleon_bwt_is_less_negative_than_finetune() {
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 43);
    let model = ModelConfig::for_spec(&spec);
    let trainer = Trainer::new(StreamConfig::default());

    let mut finetune = chameleon_repro::core::Finetune::new(&model, 4);
    let ft_bwt = backward_transfer(&trainer.run_with_domain_evals(&scenario, &mut finetune, 4));
    let mut chameleon = Chameleon::new(
        &model,
        ChameleonConfig {
            long_term_capacity: 60,
            ..ChameleonConfig::default()
        },
        4,
    );
    let ch_bwt = backward_transfer(&trainer.run_with_domain_evals(&scenario, &mut chameleon, 4));
    assert!(
        ch_bwt > ft_bwt,
        "replay should reduce forgetting: chameleon BWT {ch_bwt} vs finetune {ft_bwt}"
    );
}
