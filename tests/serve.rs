//! Serving-layer contract: a session driven over loopback CHAMWIRE is
//! bit-identical to the same session run in process (including under a
//! nonzero fault plan), backpressure surfaces as `RetryAfter` without
//! dropping connections, corrupt frames are counted and survivable, and
//! shutdown joins every thread.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use chameleon_core::{ChameleonConfig, EvalReport};
use chameleon_faults::FaultPlan;
use chameleon_fleet::{
    FleetConfig, SessionCheckpoint, SessionId, SessionSpec, UserSession, FLEET_MAGIC,
};
use chameleon_runtime::{Clock, VirtualClock};
use chameleon_serve::wire::{
    decode_frame, encode_frame, ErrorCode, Request, Response, MAX_PAYLOAD_BYTES,
};
use chameleon_serve::{Connection, ServeConfig, Server};
use chameleon_stream::{DatasetSpec, DomainIlScenario, PreferenceProfile, StreamConfig};

fn scenario() -> Arc<DomainIlScenario> {
    Arc::new(DomainIlScenario::generate(
        &DatasetSpec::core50_tiny(),
        0xF1EE7,
    ))
}

/// Same per-user spec construction as `tests/fleet.rs`, so wire-driven
/// sessions are comparable against the fleet determinism suite.
fn user_spec(user: SessionId) -> SessionSpec {
    let classes = DatasetSpec::core50_tiny().num_classes;
    let base = (user as usize * 3) % classes;
    SessionSpec {
        learner: ChameleonConfig {
            long_term_capacity: 30,
            ..ChameleonConfig::default()
        },
        stream: StreamConfig {
            preference: PreferenceProfile::Skewed {
                preferred: vec![base, (base + 1) % classes, (base + 2) % classes],
                boost: 8.0,
            },
            ..StreamConfig::default()
        },
        learner_seed: user.wrapping_mul(31) ^ 5,
        stream_seed: user.wrapping_add(100),
    }
}

fn run_solo(
    scenario: Arc<DomainIlScenario>,
    user: SessionId,
    faults: Option<&FaultPlan>,
) -> (EvalReport, Vec<u8>) {
    let mut session = UserSession::new(user, user_spec(user), scenario, faults);
    while session.step_batch() {}
    let report = session.evaluate();
    let blob = SessionCheckpoint::capture(&session).to_bytes();
    (report, blob)
}

/// Drives `users` over one wire connection with interleaved step slices,
/// then compares every observable against the solo (in-process) run.
fn assert_wire_matches_solo(faults: Option<FaultPlan>) {
    let scenario = scenario();
    let users: [SessionId; 3] = [2, 11, 29];
    let mut server = Server::start(
        Arc::clone(&scenario),
        FleetConfig {
            num_shards: 2,
            faults,
            ..FleetConfig::default()
        },
        ServeConfig::default(),
    )
    .expect("start server");

    let mut conn = Connection::connect(server.local_addr()).expect("connect");
    // Any RetryAfter backoff ages on virtual time, not wall time.
    conn.set_clock(VirtualClock::shared(0));
    for &user in &users {
        conn.create_session(user, user_spec(user)).expect("create");
    }
    // Interleave small step slices across users — the wire contract says
    // slicing and interleaving are invisible in the final state.
    let mut live: Vec<SessionId> = users.to_vec();
    while !live.is_empty() {
        let mut still = Vec::new();
        for &user in &live {
            let (_, done) = conn.step(user, 5).expect("step");
            if !done {
                still.push(user);
            }
        }
        live = still;
    }
    for &user in &users {
        let summary = conn.predict(user).expect("predict");
        let blob = conn.checkpoint(user).expect("checkpoint");
        assert_eq!(&blob[..8], &FLEET_MAGIC[..], "user {user} magic");

        let (solo_report, solo_blob) = run_solo(Arc::clone(&scenario), user, faults.as_ref());
        assert_eq!(summary.acc_all, solo_report.acc_all, "user {user} acc");
        assert_eq!(summary.per_domain, solo_report.per_domain, "user {user}");
        assert_eq!(summary.per_class, solo_report.per_class, "user {user}");
        assert_eq!(
            summary.memory_overhead_mb, solo_report.memory_overhead_mb,
            "user {user}"
        );
        assert_eq!(blob, solo_blob, "user {user} checkpoint diverged");
    }

    let stats = conn.stats().expect("stats");
    assert_eq!(stats.sessions_created, users.len() as u64);
    assert_eq!(stats.serve.decode_rejects, 0);
    server.shutdown();
}

#[test]
fn wire_driven_sessions_match_solo_bit_for_bit() {
    assert_wire_matches_solo(None);
}

#[test]
fn wire_determinism_holds_under_fault_plan() {
    assert_wire_matches_solo(Some(FaultPlan::bit_flips(0xBAD, 1e-4)));
}

#[test]
fn evict_over_the_wire_is_reproducible() {
    // Eviction resets transient training state, so an interrupted run need
    // not match an uninterrupted one (see `tests/fleet.rs`) — but the same
    // wire command sequence must reproduce the same checkpoint bit for
    // bit, and the evict/restore cycle must be visible in the stats.
    let run = || {
        let mut server = Server::start(scenario(), FleetConfig::default(), ServeConfig::default())
            .expect("start server");
        let user: SessionId = 7;
        let mut conn = Connection::connect(server.local_addr()).expect("connect");
        conn.set_clock(VirtualClock::shared(0));
        conn.create_session(user, user_spec(user)).expect("create");
        conn.step(user, 10).expect("step");
        conn.evict(user).expect("evict");
        // Stepping an evicted session restores it from its checkpoint
        // before delivering batches.
        conn.run_to_completion(user, 7).expect("finish");
        let blob = conn.checkpoint(user).expect("checkpoint");
        let stats = conn.stats().expect("stats");
        server.shutdown();
        (blob, stats)
    };

    let (blob_a, stats) = run();
    let (blob_b, _) = run();
    assert_eq!(&blob_a[..8], &FLEET_MAGIC[..]);
    assert_eq!(
        blob_a, blob_b,
        "evict/restore over the wire not reproducible"
    );
    assert!(stats.evictions >= 1, "eviction not recorded");
    assert!(stats.restores >= 1, "restore not recorded");
}

#[test]
fn backpressure_surfaces_as_retry_after_and_recovers() {
    let scenario = scenario();
    let mut server = Server::start(
        scenario,
        FleetConfig {
            num_shards: 1,
            queue_depth: 1,
            ..FleetConfig::default()
        },
        ServeConfig {
            workers: 6,
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr();

    let mut setup = Connection::connect(addr).expect("connect");
    setup.create_session(0, user_spec(0)).expect("create");

    // Four connections hammer the single-depth shard queue with raw
    // `request_once` (no client-side retry), so refusals are observable.
    // Retry backoff runs on a shared virtual clock: the advisory
    // `RetryAfter` delay ages virtually instead of stalling the test on
    // wall-clock sleeps.
    let clock = VirtualClock::shared(0);
    let mut handles = Vec::new();
    for _ in 0..4 {
        let clock = Arc::clone(&clock);
        handles.push(std::thread::spawn(move || {
            let mut conn = Connection::connect(addr).expect("connect");
            let mut retries = 0u64;
            loop {
                match conn.request_once(&Request::Step {
                    session: 0,
                    batches: 8,
                }) {
                    Ok(Response::Stepped { done: true, .. }) => break,
                    Ok(Response::Stepped { .. }) => {}
                    Ok(Response::RetryAfter { millis }) => {
                        retries += 1;
                        clock.sleep(std::time::Duration::from_millis(u64::from(millis.max(1))));
                    }
                    Ok(other) => panic!("unexpected response {other:?}"),
                    Err(e) => panic!("request failed: {e}"),
                }
            }
            // The connection that was refused is still serviceable.
            conn.ping().expect("ping after backpressure");
            retries
        }));
    }
    let client_retries: u64 = handles.into_iter().map(|h| h.join().expect("join")).sum();

    let counters = server.metrics();
    assert_eq!(
        counters.backpressure_replies, client_retries,
        "every client-observed RetryAfter must be counted server-side"
    );
    assert!(
        client_retries > 0,
        "a depth-1 queue under 4 concurrent steppers must refuse at least once"
    );
    // The session is still usable after the storm.
    let blob = setup.checkpoint(0).expect("checkpoint");
    assert_eq!(&blob[..8], &FLEET_MAGIC[..]);
    server.shutdown();
}

#[test]
fn idle_reaper_runs_on_virtual_time_not_wall_time() {
    let scenario = scenario();
    let clock = VirtualClock::shared(0);
    let mut server = Server::start_with_clock(
        scenario,
        FleetConfig::default(),
        ServeConfig::default(), // 30 s idle timeout — virtual, not wall
        Arc::clone(&clock) as Arc<dyn Clock>,
    )
    .expect("start server");

    let mut conn = Connection::connect(server.local_addr()).expect("connect");
    conn.ping().expect("fresh connection serves");
    // Virtual time hasn't moved, so no wall-clock dawdling of the test
    // harness can get this connection reaped.
    std::thread::sleep(std::time::Duration::from_millis(60));
    conn.ping()
        .expect("connection must survive while virtual time stands still");

    // Age the connection 31 virtual seconds. The worker notices on one
    // of its ~25 ms read-timeout ticks and closes the socket; keep
    // advancing until the closure is observable client-side.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let reaped = loop {
        clock.advance(std::time::Duration::from_secs(31));
        std::thread::sleep(std::time::Duration::from_millis(40));
        if conn.ping().is_err() {
            break true;
        }
        if std::time::Instant::now() > deadline {
            break false;
        }
    };
    assert!(reaped, "idle connection never reaped under virtual time");
    let counters = server.metrics();
    assert!(
        counters.connections_closed >= 1,
        "reaped connection not counted: {counters:?}"
    );
    server.shutdown();
}

/// Reads one CHAMWIRE frame off a raw socket and returns its payload.
fn read_raw_frame(stream: &mut TcpStream) -> Vec<u8> {
    let mut header = [0u8; 12];
    stream.read_exact(&mut header).expect("frame header");
    let len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
    let mut rest = vec![0u8; len + 4];
    stream.read_exact(&mut rest).expect("frame body");
    let mut frame = Vec::with_capacity(12 + rest.len());
    frame.extend_from_slice(&header);
    frame.extend_from_slice(&rest);
    let (payload, used) = decode_frame(&frame, MAX_PAYLOAD_BYTES).expect("valid reply frame");
    assert_eq!(used, frame.len());
    payload
}

#[test]
fn corrupt_frames_are_counted_and_survivable() {
    let scenario = scenario();
    let mut server = Server::start(scenario, FleetConfig::default(), ServeConfig::default())
        .expect("start server");
    let addr = server.local_addr();

    // Garbage that can never resync (bad magic): the server replies with a
    // typed error, then closes the connection.
    let mut stream = TcpStream::connect(addr).expect("connect raw");
    stream.write_all(b"NOTAWIREFRAMEATALL").expect("write");
    let payload = read_raw_frame(&mut stream);
    let (_, response) = Response::decode_payload(&payload).expect("decode error reply");
    match response {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected Error, got {other:?}"),
    }
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("read to close");
    assert!(rest.is_empty(), "connection must close after bad magic");

    // A checksum failure has a known frame boundary: the server replies
    // with an error, skips the frame, and the connection survives.
    let mut stream = TcpStream::connect(addr).expect("connect raw");
    let mut frame = encode_frame(&Request::Ping.encode_payload(99));
    let last = frame.len() - 5; // opcode byte; stale CRC now mismatches
    frame[last] ^= 0x40;
    stream.write_all(&frame).expect("write corrupt");
    let payload = read_raw_frame(&mut stream);
    let (correlation, response) = Response::decode_payload(&payload).expect("decode error reply");
    assert_eq!(correlation, 99, "error reply must carry the correlation id");
    assert!(matches!(response, Response::Error { .. }), "{response:?}");

    // Same socket, now a healthy ping: the server must still answer.
    let frame = encode_frame(&Request::Ping.encode_payload(100));
    stream.write_all(&frame).expect("write ping");
    let payload = read_raw_frame(&mut stream);
    let (correlation, response) = Response::decode_payload(&payload).expect("decode pong");
    assert_eq!(correlation, 100);
    assert_eq!(response, Response::Pong);
    drop(stream);

    let counters = server.metrics();
    assert_eq!(counters.decode_rejects, 2, "both corruptions counted");
    server.shutdown();
}

#[test]
fn shutdown_joins_every_thread_and_releases_the_scenario() {
    let scenario = scenario();
    let mut server = Server::start(
        Arc::clone(&scenario),
        FleetConfig::default(),
        ServeConfig::default(),
    )
    .expect("start server");

    let mut conn = Connection::connect(server.local_addr()).expect("connect");
    conn.create_session(1, user_spec(1)).expect("create");
    conn.step(1, 3).expect("step");
    conn.ping().expect("ping");

    // Shutdown with a live connection and in-flight session state: the
    // acceptor, every worker, and the engine thread must all join, which
    // releases every clone of the scenario Arc.
    server.shutdown();
    drop(server);
    drop(conn);
    assert_eq!(
        Arc::strong_count(&scenario),
        1,
        "a thread or session still holds the scenario after shutdown"
    );

    // Idempotence: double shutdown via Drop already happened above; a
    // fresh server on the same scenario must start cleanly afterwards.
    let server2 =
        Server::start(scenario, FleetConfig::default(), ServeConfig::default()).expect("restart");
    drop(server2);
}

/// Regression for the `run_to_completion` livelock: a server that keeps
/// answering `delivered == 0, done == false` used to spin the client
/// forever. The zero-progress budget now bounds the loop with a typed
/// `ClientError::Stalled`. (Pre-fix code hangs this test.)
#[test]
fn run_to_completion_stalls_out_instead_of_spinning_forever() {
    use std::net::TcpListener;

    // A minimal CHAMWIRE impostor: answer every request with a
    // zero-progress `Stepped`, echoing the request's correlation id.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let rounds_served = Arc::new(std::sync::atomic::AtomicU32::new(0));
    let served = Arc::clone(&rounds_served);
    let stall_server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        loop {
            let mut header = [0u8; 12];
            if stream.read_exact(&mut header).is_err() {
                return; // client gave up and closed — success
            }
            let len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
            let mut rest = vec![0u8; len + 4];
            stream.read_exact(&mut rest).expect("frame body");
            let mut frame = Vec::new();
            frame.extend_from_slice(&header);
            frame.extend_from_slice(&rest);
            let (payload, _) = decode_frame(&frame, MAX_PAYLOAD_BYTES).expect("request frame");
            let (correlation, _) = Request::decode_payload(&payload).expect("request");
            let reply = Response::Stepped {
                delivered: 0,
                done: false,
            };
            let out = encode_frame(&reply.encode_payload(correlation));
            if stream.write_all(&out).is_err() {
                return;
            }
            served.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    });

    let mut client = Connection::connect(addr).expect("connect");
    client.set_stall_budget(5);
    match client.run_to_completion(7, 4) {
        Err(chameleon_serve::ClientError::Stalled { rounds }) => assert_eq!(rounds, 5),
        other => panic!("expected Stalled after 5 zero-progress rounds, got {other:?}"),
    }
    drop(client);
    stall_server.join().expect("stall server");
    assert_eq!(
        rounds_served.load(std::sync::atomic::Ordering::Relaxed),
        5,
        "client must stop exactly at its stall budget"
    );
}

/// The `Observe` round-trip: span aggregates over the wire reconcile with
/// `Stats` nanos counters, encode/decode spans are counted, and the event
/// log narrates evictions.
#[test]
fn observe_round_trip_reconciles_spans_with_stats() {
    use chameleon_obs::Stage;

    let scenario = scenario();
    let mut server = Server::start(
        scenario,
        FleetConfig {
            num_shards: 2,
            ..FleetConfig::default()
        },
        ServeConfig::default(),
    )
    .expect("start server");
    let mut client = Connection::connect(server.local_addr()).expect("connect");

    client.create_session(1, user_spec(1)).expect("create");
    let delivered = client.run_to_completion(1, 8).expect("run");
    assert!(delivered > 0);
    client.predict(1).expect("predict");
    client.checkpoint(1).expect("checkpoint");
    client.evict(1).expect("evict");

    let observation = client.observe().expect("observe");

    // Per-stage span totals reconcile exactly with the fleet's nanos
    // counters: both sides of each pair come from one measurement.
    for (stage, counter) in [
        (Stage::Step, "fleet.step_nanos"),
        (Stage::Eval, "fleet.eval_nanos"),
        (Stage::Checkpoint, "fleet.checkpoint_nanos"),
        (Stage::Restore, "fleet.restore_nanos"),
    ] {
        let stats = observation.stage(stage).expect("stage present");
        assert_eq!(
            Some(stats.total_nanos),
            observation.counter(counter),
            "{stage} span total must equal {counter}"
        );
    }
    let step = observation.stage(Stage::Step).expect("step stage");
    assert!(step.count > 0 && step.total_nanos > 0, "no step spans");
    assert_eq!(step.histogram.count(), step.count);

    // The connection workers decoded and encoded every frame of this
    // conversation.
    assert!(observation.stage(Stage::Decode).expect("decode").count > 0);
    assert!(observation.stage(Stage::Encode).expect("encode").count > 0);

    // Flattened counters agree with the Stats snapshot's fleet view.
    let stats = client.stats().expect("stats");
    assert_eq!(observation.counter("fleet.batches"), Some(stats.batches));
    assert_eq!(observation.counter("serve.decode_rejects"), Some(0));

    // The explicit evict above must be narrated in the event log.
    assert!(
        observation
            .events
            .recent
            .iter()
            .any(|r| r.message.contains("evicted")),
        "event log missing the eviction: {:?}",
        observation.events.recent
    );
    assert_eq!(
        observation.events.next_seq as usize,
        observation.events.recent.len()
    );

    server.shutdown();
}

/// Durable serving: with `store_dir` set, evictions spill through the
/// session store, `Observe` exposes reconciling `store.*` counters, and
/// a *new* server started on the same directory recovers the sessions —
/// a wire client can checkpoint and keep stepping them without
/// re-creating anything.
#[test]
fn store_backed_server_survives_restart_with_sessions_intact() {
    let dir = std::env::temp_dir().join(format!("chameleon-serve-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let scenario = scenario();
    let users: [SessionId; 2] = [3, 7];
    let config = FleetConfig {
        num_shards: 2,
        ..FleetConfig::default()
    };
    let serve_config = ServeConfig {
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };

    let mut before_blobs = Vec::new();
    {
        let mut server = Server::start(Arc::clone(&scenario), config.clone(), serve_config.clone())
            .expect("start durable server");
        let mut client = Connection::connect(server.local_addr()).expect("connect");
        for &user in &users {
            client
                .create_session(user, user_spec(user))
                .expect("create");
            client.step(user, 6).expect("step");
            client.evict(user).expect("evict");
            before_blobs.push(client.checkpoint(user).expect("checkpoint"));
        }

        let observation = client.observe().expect("observe");
        assert_eq!(
            observation.counter("store.appends"),
            observation.counter("fleet.evictions"),
            "store appends must reconcile with fleet evictions"
        );
        assert_eq!(
            observation.counter("store.appends"),
            Some(users.len() as u64)
        );
        assert_eq!(observation.counter("store.decode_rejects"), Some(0));
        // The Prometheus exposition carries the same family.
        let text = chameleon_obs::expose(&observation);
        assert!(
            text.contains("chameleon_counter{name=\"store_appends\"}")
                || text.contains("store_appends"),
            "expose() missing store counters:\n{text}"
        );
        server.shutdown();
    }

    // "Crash": the first server is gone; only the segment files remain.
    let mut server =
        Server::start(Arc::clone(&scenario), config, serve_config).expect("restart durable server");
    let mut client = Connection::connect(server.local_addr()).expect("reconnect");
    let observation = client.observe().expect("observe after recovery");
    assert_eq!(
        observation.counter("store.sessions_recovered"),
        Some(users.len() as u64),
        "restart must recover every sealed session"
    );
    for (i, &user) in users.iter().enumerate() {
        // Recovered sessions serve their last sealed checkpoint verbatim
        // and accept further work without re-creation.
        let blob = client.checkpoint(user).expect("checkpoint after recovery");
        assert_eq!(
            blob, before_blobs[i],
            "user {user}: recovered checkpoint differs from pre-crash seal"
        );
        let (delivered, _done) = client.step(user, 2).expect("step after recovery");
        assert!(delivered > 0, "user {user} made no progress after recovery");
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
