//! Property-based tests (proptest) over the core data structures and
//! numeric invariants.

use proptest::prelude::*;

use chameleon_repro::core::PreferenceTracker;
use chameleon_repro::nn::{loss, MlpHead, Sgd};
use chameleon_repro::replay::{ClassBalancedBuffer, ReservoirBuffer, RingBuffer, StoredSample};
use chameleon_repro::tensor::stats::RunningMoments;
use chameleon_repro::tensor::{linalg, ops, Matrix, Prng};

fn sample(class: usize, v: f32) -> StoredSample {
    StoredSample::latent(vec![v], class)
}

proptest! {
    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-50.0f32..50.0, 1..64)) {
        let p = ops::softmax(&logits);
        prop_assert_eq!(p.len(), logits.len());
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {}", sum);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn softmax_preserves_argmax(logits in prop::collection::vec(-50.0f32..50.0, 2..64)) {
        let p = ops::softmax(&logits);
        prop_assert_eq!(ops::argmax(&logits), ops::argmax(&p));
    }

    #[test]
    fn kl_divergence_is_non_negative(
        a in prop::collection::vec(-10.0f32..10.0, 2..32),
        shift in -5.0f32..5.0,
    ) {
        let b: Vec<f32> = a.iter().map(|&v| v + shift * v.cos()).collect();
        let p = ops::softmax(&a);
        let q = ops::softmax(&b);
        let kl = ops::kl_divergence(&p, &q);
        prop_assert!(kl >= 0.0, "KL {}", kl);
        prop_assert!(kl.is_finite());
    }

    #[test]
    fn reservoir_never_exceeds_capacity(
        capacity in 1usize..32,
        offers in prop::collection::vec(0usize..10, 0..200),
        seed in 0u64..1000,
    ) {
        let mut rng = Prng::new(seed);
        let mut buffer = ReservoirBuffer::new(capacity);
        for (i, &class) in offers.iter().enumerate() {
            buffer.offer(sample(class, i as f32), &mut rng);
            prop_assert!(buffer.len() <= capacity);
            prop_assert_eq!(buffer.len(), capacity.min(i + 1));
        }
        prop_assert_eq!(buffer.seen(), offers.len() as u64);
    }

    #[test]
    fn class_balanced_total_equals_per_class_sum(
        capacity in 1usize..40,
        offers in prop::collection::vec(0usize..8, 0..300),
        seed in 0u64..1000,
    ) {
        let mut rng = Prng::new(seed);
        let mut buffer = ClassBalancedBuffer::new(capacity);
        for (i, &class) in offers.iter().enumerate() {
            buffer.insert(sample(class, i as f32), &mut rng);
            let total: usize = buffer.classes().iter().map(|&c| buffer.class_count(c)).sum();
            prop_assert_eq!(total, buffer.len());
            prop_assert!(buffer.len() <= capacity);
        }
    }

    #[test]
    fn class_balanced_no_class_dominates(
        offers in prop::collection::vec(0usize..4, 200..400),
        seed in 0u64..100,
    ) {
        // With capacity 8 and 4 classes each seen ≥ 20 times, balance means
        // no class may hold more than half the buffer.
        let mut counts = [0usize; 4];
        for &c in &offers { counts[c] += 1; }
        prop_assume!(counts.iter().all(|&c| c >= 20));
        let mut rng = Prng::new(seed);
        let mut buffer = ClassBalancedBuffer::new(8);
        for (i, &class) in offers.iter().enumerate() {
            buffer.insert(sample(class, i as f32), &mut rng);
        }
        for class in 0..4 {
            prop_assert!(
                buffer.class_count(class) <= 4,
                "class {} holds {}",
                class,
                buffer.class_count(class)
            );
        }
    }

    #[test]
    fn ring_buffer_is_bounded_and_fifo_below_capacity(
        capacity in 1usize..16,
        pushes in 0usize..40,
    ) {
        let mut buffer = RingBuffer::new(capacity);
        for i in 0..pushes {
            buffer.push(sample(0, i as f32));
            prop_assert!(buffer.len() <= capacity);
        }
        if pushes <= capacity {
            // Below capacity, insertion order is preserved.
            for (i, s) in buffer.items().iter().enumerate() {
                prop_assert_eq!(s.features[0] as usize, i);
            }
        }
    }

    #[test]
    fn preference_tracker_delta_stays_in_unit_interval(
        labels in prop::collection::vec(0usize..12, 1..500),
        k in 1usize..6,
        window in 5usize..60,
        rho in 0.0f32..1.0,
    ) {
        let mut tracker = PreferenceTracker::new(12, k, window, rho);
        for &label in &labels {
            tracker.observe(label);
            let d = tracker.delta();
            prop_assert!((0.0..=1.0).contains(&d), "delta {}", d);
            prop_assert!(tracker.preferred().len() <= k);
        }
        let total: u64 = tracker.total_counts().iter().sum();
        prop_assert_eq!(total, labels.len() as u64);
    }

    #[test]
    fn welford_merge_equals_sequential(
        a in prop::collection::vec(-100.0f32..100.0, 0..50),
        b in prop::collection::vec(-100.0f32..100.0, 0..50),
    ) {
        let mut left: RunningMoments = a.iter().copied().collect();
        let right: RunningMoments = b.iter().copied().collect();
        left.merge(&right);
        let all: RunningMoments = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(left.count(), all.count());
        prop_assert!((left.mean() - all.mean()).abs() < 1e-3);
        prop_assert!((left.sample_variance() - all.sample_variance()).abs() < 1e-1);
    }

    #[test]
    fn matmul_distributes_over_addition(seed in 0u64..500) {
        let mut rng = Prng::new(seed);
        let a = Matrix::randn(4, 3, &mut rng);
        let b = Matrix::randn(3, 5, &mut rng);
        let c = Matrix::randn(3, 5, &mut rng);
        let mut b_plus_c = b.clone();
        b_plus_c.axpy(1.0, &c);
        let left = a.matmul(&b_plus_c);
        let mut right = a.matmul(&b);
        right.axpy(1.0, &a.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn regularized_inverse_roundtrips_spd(seed in 0u64..200) {
        let mut rng = Prng::new(seed);
        let b = Matrix::randn(6, 6, &mut rng);
        let mut spd = b.matmul_nt(&b);
        for i in 0..6 {
            spd.set(i, i, spd.get(i, i) + 1.0);
        }
        let (inv, _) = linalg::invert_regularized(&spd, 0.0).expect("SPD invertible");
        let product = spd.matmul(&inv);
        for r in 0..6 {
            for c in 0..6 {
                let want = if r == c { 1.0 } else { 0.0 };
                prop_assert!(
                    (product.get(r, c) - want).abs() < 5e-2,
                    "({},{}) = {}",
                    r, c, product.get(r, c)
                );
            }
        }
    }

    #[test]
    fn prng_below_is_always_in_range(seed in 0u64..1000, bound in 1usize..10_000) {
        let mut rng = Prng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn head_gradients_match_finite_differences_for_random_architectures(
        seed in 0u64..200,
        in_dim in 2usize..8,
        hidden in 0usize..6,
        classes in 2usize..6,
    ) {
        let mut rng = Prng::new(seed);
        let dims: Vec<usize> = if hidden == 0 {
            vec![in_dim, classes]
        } else {
            vec![in_dim, hidden + 2, classes]
        };
        let head = MlpHead::new(&dims, &mut rng);
        let x = Matrix::randn(2, in_dim, &mut rng);
        let labels = [0usize, classes - 1];

        let fwd = head.forward(&x);
        let (_, dlogits) = loss::softmax_cross_entropy(fwd.logits(), &labels);
        let analytic = head.backward(&fwd, &dlogits).to_flat();

        let base = head.parameters();
        let eps = 1e-3;
        // Spot-check three parameter coordinates.
        for idx in [0, base.len() / 2, base.len() - 1] {
            let mut plus = base.clone();
            plus[idx] += eps;
            let mut minus = base.clone();
            minus[idx] -= eps;
            let mut hp = head.clone();
            hp.set_parameters(&plus);
            let mut hm = head.clone();
            hm.set_parameters(&minus);
            let lp = loss::softmax_cross_entropy(hp.forward(&x).logits(), &labels).0;
            let lm = loss::softmax_cross_entropy(hm.forward(&x).logits(), &labels).0;
            let numeric = (lp - lm) / (2.0 * eps);
            prop_assert!(
                (numeric - analytic[idx]).abs() < 5e-2,
                "param {}: numeric {} vs analytic {}",
                idx, numeric, analytic[idx]
            );
        }
    }

    #[test]
    fn sgd_training_never_diverges_on_separable_data(seed in 0u64..100) {
        let mut rng = Prng::new(seed);
        let mut head = MlpHead::new(&[4, 3], &mut rng);
        let mut sgd = Sgd::new(0.1);
        // Three well-separated clusters.
        let x = Matrix::from_rows(&[
            &[5.0, 0.0, 0.0, 0.0],
            &[0.0, 5.0, 0.0, 0.0],
            &[0.0, 0.0, 5.0, 0.0],
        ]);
        let labels = [0usize, 1, 2];
        let mut last = f32::INFINITY;
        for step in 0..60 {
            let fwd = head.forward(&x);
            let (l, dl) = loss::softmax_cross_entropy(fwd.logits(), &labels);
            prop_assert!(l.is_finite(), "loss diverged at step {}", step);
            let grads = head.backward(&fwd, &dl);
            head.apply(&grads, &mut sgd);
            last = l;
        }
        prop_assert!(last < 0.2, "final loss {}", last);
    }

    #[test]
    fn weighted_choice_never_picks_zero_weight(
        seed in 0u64..500,
        n in 2usize..20,
        zero_index in 0usize..20,
    ) {
        prop_assume!(zero_index < n);
        let mut rng = Prng::new(seed);
        let weights: Vec<f32> =
            (0..n).map(|i| if i == zero_index { 0.0 } else { 1.0 }).collect();
        for _ in 0..50 {
            prop_assert_ne!(rng.weighted_choice(&weights), zero_index);
        }
    }
}
