//! Latent-codec fuzzer: encode→decode round trips stay within each
//! precision's documented tolerance, and corrupt, truncated, and
//! oversized blobs produce typed [`CodecError`]s — never a panic, and
//! never an allocation sized by a hostile count prefix.
//!
//! Mirrors `tests/store_fuzz.rs` for the packed-latent blob format:
//! structured truncations and bit flips at every offset, plus the
//! `chameleon-faults` damage model applied to encoded blobs. The codec
//! deliberately carries no checksum of its own — every envelope that
//! embeds a blob (`CHAMLN03`, `CHAMFLT2`, `CHAMSEG1`) seals it under a
//! CRC32, and [`StoredSample`] keeps an insertion-time checksum — so a
//! flipped blob may decode *successfully* to different values; what it
//! must never do is panic or slip past the sample integrity check.

use chameleon_faults::{FaultInjector, FaultPlan, FileFaultModel};
use chameleon_replay::codec::MAX_PACKED_ELEMS;
use chameleon_replay::{decode_latent, encode_latent, CodecError, Precision, StoredSample};
use proptest::prelude::*;

const PRECISIONS: [Precision; 3] = [Precision::F32, Precision::F16, Precision::Int8];

/// Worst-case absolute round-trip error of one value for a precision,
/// given the min/max of the encoded tensor.
fn tolerance(precision: Precision, value: f32, min: f32, max: f32) -> f64 {
    match precision {
        Precision::F32 => 0.0,
        // Round-to-nearest-even half precision: 2^-11 relative error in
        // the normal range, 2^-25 absolute below it.
        Precision::F16 => f64::from(value.abs()) * (1.0 / 2048.0) + 3.0e-8,
        // Affine int8: half a quantization step, plus slack for the
        // f32-rounded scale/min parameters.
        Precision::Int8 => {
            let range = f64::from(max) - f64::from(min);
            range / 255.0 * 0.5 + range * 1e-6 + 1e-30
        }
    }
}

/// The tail-damage model the store's crash schedules use, aimed at
/// encoded codec blobs instead of segment files.
fn damage_plan(seed: u64) -> FaultPlan {
    FaultPlan::file_faults(
        seed,
        FileFaultModel {
            torn_write_prob: 0.5,
            partial_fsync_prob: 0.0,
            short_read_prob: 0.0,
            bit_flip_prob: 0.8,
        },
    )
}

proptest! {
    #[test]
    fn roundtrip_stays_within_tolerance(
        values in prop::collection::vec(-1000.0f32..1000.0, 0..128),
        which in 0usize..3,
    ) {
        let precision = PRECISIONS[which];
        let blob = encode_latent(precision, &values);
        prop_assert_eq!(blob.len(), precision.packed_len(values.len()));
        let (tag, decoded) = decode_latent(&blob).expect("intact blob");
        prop_assert_eq!(tag, precision);
        prop_assert_eq!(decoded.len(), values.len());
        let min = values.iter().copied().fold(f32::INFINITY, f32::min);
        let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for (&v, &d) in values.iter().zip(&decoded) {
            let err = (f64::from(v) - f64::from(d)).abs();
            prop_assert!(
                err <= tolerance(precision, v, min, max),
                "{precision}: {v} -> {d} (err {err:e})"
            );
        }
    }

    #[test]
    fn second_roundtrip_is_a_fixed_point(
        values in prop::collection::vec(-50.0f32..50.0, 1..64),
        which in 0usize..3,
    ) {
        // Once on the quantization grid, values stay there bit for bit:
        // this is what lets `StoredSample` keep decoded floats in RAM
        // while the packed blob remains the durable truth.
        let precision = PRECISIONS[which];
        let (_, once) = decode_latent(&encode_latent(precision, &values)).expect("decode");
        let (_, twice) = decode_latent(&encode_latent(precision, &once)).expect("decode");
        prop_assert_eq!(&once, &twice);
    }

    #[test]
    fn truncation_at_every_cut_is_a_typed_error(
        values in prop::collection::vec(-10.0f32..10.0, 0..32),
        which in 0usize..3,
    ) {
        let blob = encode_latent(PRECISIONS[which], &values);
        for cut in 0..blob.len() {
            match decode_latent(&blob[..cut]) {
                Err(CodecError::Truncated { .. }) => {}
                other => prop_assert!(false, "cut {} gave {:?}", cut, other),
            }
        }
    }

    #[test]
    fn oversized_count_is_rejected_before_allocation(
        count in (MAX_PACKED_ELEMS as u64 + 1..=u32::MAX as u64),
        which in 0usize..3,
    ) {
        // Hostile count prefix: if decode sized its output buffer from
        // the prefix this test would OOM long before the assertion.
        let precision = PRECISIONS[which];
        let mut blob = vec![precision.tag()];
        blob.extend_from_slice(&(count as u32).to_le_bytes());
        let err = decode_latent(&blob).unwrap_err();
        prop_assert!(matches!(err, CodecError::Oversized(_)), "{:?}", err);
    }

    #[test]
    fn bad_tags_and_trailing_bytes_are_typed_errors(
        tag in 3u8..=255,
        noise in prop::collection::vec(0u8..=255, 0..32),
    ) {
        let mut blob = vec![tag];
        blob.extend_from_slice(&0u32.to_le_bytes());
        blob.extend_from_slice(&noise);
        match decode_latent(&blob) {
            Err(CodecError::BadTag(t)) => prop_assert_eq!(t, tag),
            other => prop_assert!(false, "{:?}", other),
        }
        // A valid empty f32 blob with trailing garbage is Trailing.
        if !noise.is_empty() {
            let mut blob = encode_latent(Precision::F32, &[]);
            blob.extend_from_slice(&noise);
            match decode_latent(&blob) {
                Err(CodecError::Trailing(n)) => prop_assert_eq!(n, noise.len()),
                other => prop_assert!(false, "{:?}", other),
            }
        }
    }

    #[test]
    fn single_bit_flips_never_panic_and_never_fool_integrity(
        values in prop::collection::vec(-20.0f32..20.0, 1..48),
        which in 0usize..3,
        byte_frac in 0.0f64..1.0,
        bit in 0u64..8,
    ) {
        let precision = PRECISIONS[which];
        let sample = StoredSample::latent_quantized(values, 3, precision);
        let blob = sample.packed_for_write(precision);
        let index = ((byte_frac * blob.len() as f64) as usize).min(blob.len() - 1);
        let mut mutated = blob.clone();
        mutated[index] ^= 1u8 << bit;
        match StoredSample::from_packed_parts(mutated, 3, sample.checksum()) {
            // The blob has no checksum of its own, so a flip may decode
            // — but if the features moved, the insertion-time checksum
            // the enclosing formats persist must catch it.
            Ok(back) => {
                if back.features != sample.features {
                    prop_assert!(!back.integrity_ok(), "flip escaped the integrity check");
                }
            }
            Err(
                CodecError::Truncated { .. }
                | CodecError::BadTag(_)
                | CodecError::Oversized(_)
                | CodecError::Trailing(_),
            ) => {}
        }
    }

    #[test]
    fn garbage_bytes_never_panic_the_decoder(
        bytes in prop::collection::vec(0u8..=255, 0..96),
    ) {
        let _ = decode_latent(&bytes);
    }

    #[test]
    fn fault_injected_damage_never_panics(
        seed in 0u64..10_000,
        values in prop::collection::vec(-100.0f32..100.0, 1..48),
        which in 0usize..3,
    ) {
        // The exact damage model the store's crash schedules apply to
        // segment tails, aimed at a packed blob: torn truncation plus
        // tail bit flips. Decode must yield a typed error or a decode
        // the sample checksum can judge — never a panic.
        let precision = PRECISIONS[which];
        let blob = encode_latent(precision, &values);
        let mut injector = FaultInjector::new(damage_plan(seed));
        let mut damaged = blob.clone();
        let _ = injector.crash_damage(&mut damaged);
        if damaged == blob {
            decode_latent(&damaged).expect("intact blob");
        } else {
            let _ = decode_latent(&damaged);
        }
    }
}

/// Deterministic exhaustive sweep alongside the randomized cases: every
/// truncation and every single-bit XOR of a realistic packed blob, at
/// every precision.
#[test]
fn exhaustive_single_bit_damage_on_real_blobs() {
    let values: Vec<f32> = (0..32).map(|i| (i as f32) * 0.37 - 5.0).collect();
    for precision in PRECISIONS {
        let sample = StoredSample::latent_quantized(values.clone(), 7, precision);
        let blob = sample.packed_for_write(precision);
        for cut in 0..blob.len() {
            assert!(
                matches!(
                    decode_latent(&blob[..cut]),
                    Err(CodecError::Truncated { .. })
                ),
                "{precision}: cut {cut}"
            );
        }
        for index in 0..blob.len() {
            for bit in 0..8u8 {
                let mut mutated = blob.clone();
                mutated[index] ^= 1 << bit;
                if let Ok(back) = StoredSample::from_packed_parts(mutated, 7, sample.checksum()) {
                    if back.features != sample.features {
                        assert!(
                            !back.integrity_ok(),
                            "{precision}: index {index} bit {bit} escaped integrity"
                        );
                    }
                }
            }
        }
    }
}
