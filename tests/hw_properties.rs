//! Property-based tests over the hardware models: the cycle simulator's
//! scheduling invariants and the BFP datatype's quantization bounds.

use proptest::prelude::*;

use chameleon_repro::hw::sim::{Gemm, SystolicSim, SystolicSimConfig};
use chameleon_repro::hw::BfpFormat;
use chameleon_repro::tensor::Prng;

proptest! {
    #[test]
    fn gemm_cycles_are_monotone_in_every_dimension(
        m in 1usize..512,
        k in 1usize..512,
        n in 1usize..512,
    ) {
        let sim = SystolicSim::new(SystolicSimConfig::edge_tpu());
        let base = sim.gemm(&Gemm::new(m, k, n)).total_cycles;
        prop_assert!(sim.gemm(&Gemm::new(m + 64, k, n)).total_cycles >= base);
        prop_assert!(sim.gemm(&Gemm::new(m, k + 64, n)).total_cycles >= base);
        prop_assert!(sim.gemm(&Gemm::new(m, k, n + 64)).total_cycles >= base);
    }

    #[test]
    fn double_buffering_never_slows_a_gemm(
        m in 1usize..512,
        k in 1usize..512,
        n in 1usize..512,
    ) {
        let db = SystolicSim::new(SystolicSimConfig::edge_tpu());
        let sb = SystolicSim::new(SystolicSimConfig {
            double_buffered: false,
            ..SystolicSimConfig::edge_tpu()
        });
        let g = Gemm::new(m, k, n);
        prop_assert!(db.gemm(&g).total_cycles <= sb.gemm(&g).total_cycles);
    }

    #[test]
    fn utilization_never_exceeds_one(
        m in 1usize..2048,
        k in 1usize..512,
        n in 1usize..512,
    ) {
        // Even a binary-parallel array with infinite bandwidth cannot beat
        // peak throughput.
        let sim = SystolicSim::new(SystolicSimConfig {
            dram_gb_s: 1e9,
            ..SystolicSimConfig::binary_parallel()
        });
        let r = sim.gemm(&Gemm::new(m, k, n));
        prop_assert!(r.utilization_on(64, 64) <= 1.0 + 1e-9);
    }

    #[test]
    fn backward_macs_are_exactly_double(
        m in 1usize..256,
        k in 1usize..256,
        n in 1usize..256,
    ) {
        let g = Gemm::new(m, k, n);
        let total: u64 = g.backward().iter().map(Gemm::macs).sum();
        prop_assert_eq!(total, 2 * g.macs());
    }

    #[test]
    fn lower_bandwidth_never_reduces_latency(
        m in 1usize..256,
        k in 1usize..512,
        n in 1usize..512,
    ) {
        let fast = SystolicSim::new(SystolicSimConfig::edge_tpu());
        let slow = SystolicSim::new(SystolicSimConfig {
            dram_gb_s: 0.5,
            ..SystolicSimConfig::edge_tpu()
        });
        let g = Gemm::new(m, k, n);
        prop_assert!(slow.gemm(&g).total_cycles >= fast.gemm(&g).total_cycles);
    }

    #[test]
    fn bfp_error_is_bounded_by_the_mantissa_step(
        seed in 0u64..500,
        mantissa in 4u8..16,
    ) {
        let mut rng = Prng::new(seed);
        let block: Vec<f32> = (0..16).map(|_| rng.randn()).collect();
        let format = BfpFormat::new(mantissa, 16);
        let q = format.quantize_block(&block);
        let max = block.iter().fold(0.0f32, |a, &b| a.max(b.abs()));
        prop_assume!(max > 0.0);
        // Grid step: max / (2^(m-1) − 1) scaled to the next power of two —
        // at most 2 · max / levels.
        let levels = ((1u32 << (mantissa - 1)) - 1) as f32;
        let bound = 2.0 * max / levels + 1e-6;
        for (a, b) in block.iter().zip(&q) {
            prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
    }

    #[test]
    fn bfp_quantization_is_idempotent(seed in 0u64..500, mantissa in 3u8..12) {
        let mut rng = Prng::new(seed);
        let block: Vec<f32> = (0..8).map(|_| rng.randn() * 10.0).collect();
        let format = BfpFormat::new(mantissa, 8);
        let once = format.quantize_block(&block);
        let twice = format.quantize_block(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn bfp_preserves_signs_and_zero(seed in 0u64..500) {
        let mut rng = Prng::new(seed);
        let mut block: Vec<f32> = (0..16).map(|_| rng.randn()).collect();
        block[3] = 0.0;
        let q = BfpFormat::bfp8().quantize_block(&block);
        prop_assert_eq!(q[3], 0.0);
        for (a, b) in block.iter().zip(&q) {
            // Quantized values never flip sign (they may flush to zero).
            prop_assert!(*b == 0.0 || a.signum() == b.signum());
        }
    }
}
