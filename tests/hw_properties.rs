//! Property-based tests over the hardware models: the cycle simulator's
//! scheduling invariants, the BFP datatype's quantization bounds, and the
//! Table-II device cost models' monotonicity/positivity.

use proptest::prelude::*;

use chameleon_repro::hw::sim::{Gemm, SystolicSim, SystolicSimConfig};
use chameleon_repro::hw::{
    BfpFormat, CostReport, Device, JetsonNano, SystolicAccelerator, Workload, Zcu102,
};
use chameleon_repro::tensor::Prng;

/// The three Table-II cost models under test.
fn devices() -> [Box<dyn Device>; 3] {
    [
        Box::new(JetsonNano::new()),
        Box::new(Zcu102::new()),
        Box::new(SystolicAccelerator::new()),
    ]
}

/// A per-image workload that scales linearly with the replay batch size
/// (`rows` replayed samples trained alongside each incoming image), the
/// way every strategy's `Workload::from_trace` output does.
fn batch_workload(rows: f64, latent_fraction: f64) -> Workload {
    let offchip = rows * (1.0 - latent_fraction);
    Workload {
        trunk_macs: 41e6 * (1.0 + 0.1 * offchip),
        head_macs: 1.3e5 * (rows + 1.0),
        special_macs: 0.0,
        onchip_bytes: 512.0 * rows * latent_fraction,
        offchip_replay_bytes: 2048.0 * offchip,
        offchip_replay_elements: offchip,
        onchip_replay_elements: rows * latent_fraction,
        trained_rows: rows + 1.0,
    }
}

fn finite_and_non_negative(report: &CostReport) -> Result<(), String> {
    for (name, value) in [
        ("latency_ms", report.latency_ms),
        ("energy_j", report.energy_j),
        ("compute_ms", report.compute_ms),
        ("weight_stream_ms", report.weight_stream_ms),
        ("replay_traffic_ms", report.replay_traffic_ms),
    ] {
        if !value.is_finite() || value < 0.0 {
            return Err(format!("{name} = {value}"));
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn cost_models_price_any_workload_finite_and_non_negative(
        trunk in 0.0f64..1e9,
        head in 0.0f64..1e8,
        special in 0.0f64..1e10,
        onchip in 0.0f64..1e6,
        offchip_bytes in 0.0f64..1e7,
        offchip_elems in 0.0f64..1e3,
        onchip_elems in 0.0f64..1e3,
        rows in 0.0f64..1e3,
    ) {
        let workload = Workload {
            trunk_macs: trunk,
            head_macs: head,
            special_macs: special,
            onchip_bytes: onchip,
            offchip_replay_bytes: offchip_bytes,
            offchip_replay_elements: offchip_elems,
            onchip_replay_elements: onchip_elems,
            trained_rows: rows,
        };
        for device in devices() {
            let report = device.cost(&workload);
            if let Err(what) = finite_and_non_negative(&report) {
                prop_assert!(false, "{}: {}", device.name(), what);
            }
            prop_assert!(
                report.compute_ms <= report.latency_ms + 1e-9,
                "{}: compute share exceeds total latency",
                device.name()
            );
        }
    }

    #[test]
    fn latency_and_energy_are_monotone_in_replay_batch_size(
        rows in 0.0f64..200.0,
        extra in 0.1f64..50.0,
        latent_pct in 0u8..=100,
    ) {
        let latent = f64::from(latent_pct) / 100.0;
        let small = batch_workload(rows, latent);
        let large = batch_workload(rows + extra, latent);
        for device in devices() {
            let a = device.cost(&small);
            let b = device.cost(&large);
            prop_assert!(
                b.latency_ms >= a.latency_ms - 1e-9,
                "{}: latency fell from {} to {} when the replay batch grew",
                device.name(), a.latency_ms, b.latency_ms
            );
            prop_assert!(
                b.energy_j >= a.energy_j - 1e-12,
                "{}: energy fell from {} to {} when the replay batch grew",
                device.name(), a.energy_j, b.energy_j
            );
        }
    }

    #[test]
    fn cost_is_monotone_in_every_workload_field(
        rows in 0.0f64..100.0,
        bump in 0.01f64..2.0,
        field in 0usize..8,
    ) {
        let base = batch_workload(rows, 0.5);
        let mut bumped = base;
        // Scale one field up by a positive factor; cost must not drop.
        let target = match field {
            0 => &mut bumped.trunk_macs,
            1 => &mut bumped.head_macs,
            2 => &mut bumped.special_macs,
            3 => &mut bumped.onchip_bytes,
            4 => &mut bumped.offchip_replay_bytes,
            5 => &mut bumped.offchip_replay_elements,
            6 => &mut bumped.onchip_replay_elements,
            _ => &mut bumped.trained_rows,
        };
        *target += bump * (*target + 1.0);
        for device in devices() {
            let a = device.cost(&base);
            let b = device.cost(&bumped);
            prop_assert!(
                b.latency_ms >= a.latency_ms - 1e-9 && b.energy_j >= a.energy_j - 1e-12,
                "{}: growing field {} cut cost ({} ms, {} J) -> ({} ms, {} J)",
                device.name(), field, a.latency_ms, a.energy_j, b.latency_ms, b.energy_j
            );
        }
    }

    #[test]
    fn empty_workload_is_the_cheapest(
        rows in 0.0f64..500.0,
        latent_pct in 0u8..=100,
    ) {
        // Devices may charge a fixed per-image overhead (framework /
        // reconfiguration), so an empty workload is not free — but no
        // real workload may ever price below it.
        let workload = batch_workload(rows, f64::from(latent_pct) / 100.0);
        for device in devices() {
            let floor = device.cost(&Workload::default());
            let real = device.cost(&workload);
            prop_assert!(
                real.latency_ms >= floor.latency_ms - 1e-9
                    && real.energy_j >= floor.energy_j - 1e-12,
                "{}: workload priced below the empty-workload floor",
                device.name()
            );
        }
    }
}

proptest! {
    #[test]
    fn gemm_cycles_are_monotone_in_every_dimension(
        m in 1usize..512,
        k in 1usize..512,
        n in 1usize..512,
    ) {
        let sim = SystolicSim::new(SystolicSimConfig::edge_tpu());
        let base = sim.gemm(&Gemm::new(m, k, n)).total_cycles;
        prop_assert!(sim.gemm(&Gemm::new(m + 64, k, n)).total_cycles >= base);
        prop_assert!(sim.gemm(&Gemm::new(m, k + 64, n)).total_cycles >= base);
        prop_assert!(sim.gemm(&Gemm::new(m, k, n + 64)).total_cycles >= base);
    }

    #[test]
    fn double_buffering_never_slows_a_gemm(
        m in 1usize..512,
        k in 1usize..512,
        n in 1usize..512,
    ) {
        let db = SystolicSim::new(SystolicSimConfig::edge_tpu());
        let sb = SystolicSim::new(SystolicSimConfig {
            double_buffered: false,
            ..SystolicSimConfig::edge_tpu()
        });
        let g = Gemm::new(m, k, n);
        prop_assert!(db.gemm(&g).total_cycles <= sb.gemm(&g).total_cycles);
    }

    #[test]
    fn utilization_never_exceeds_one(
        m in 1usize..2048,
        k in 1usize..512,
        n in 1usize..512,
    ) {
        // Even a binary-parallel array with infinite bandwidth cannot beat
        // peak throughput.
        let sim = SystolicSim::new(SystolicSimConfig {
            dram_gb_s: 1e9,
            ..SystolicSimConfig::binary_parallel()
        });
        let r = sim.gemm(&Gemm::new(m, k, n));
        prop_assert!(r.utilization_on(64, 64) <= 1.0 + 1e-9);
    }

    #[test]
    fn backward_macs_are_exactly_double(
        m in 1usize..256,
        k in 1usize..256,
        n in 1usize..256,
    ) {
        let g = Gemm::new(m, k, n);
        let total: u64 = g.backward().iter().map(Gemm::macs).sum();
        prop_assert_eq!(total, 2 * g.macs());
    }

    #[test]
    fn lower_bandwidth_never_reduces_latency(
        m in 1usize..256,
        k in 1usize..512,
        n in 1usize..512,
    ) {
        let fast = SystolicSim::new(SystolicSimConfig::edge_tpu());
        let slow = SystolicSim::new(SystolicSimConfig {
            dram_gb_s: 0.5,
            ..SystolicSimConfig::edge_tpu()
        });
        let g = Gemm::new(m, k, n);
        prop_assert!(slow.gemm(&g).total_cycles >= fast.gemm(&g).total_cycles);
    }

    #[test]
    fn bfp_error_is_bounded_by_the_mantissa_step(
        seed in 0u64..500,
        mantissa in 4u8..16,
    ) {
        let mut rng = Prng::new(seed);
        let block: Vec<f32> = (0..16).map(|_| rng.randn()).collect();
        let format = BfpFormat::new(mantissa, 16);
        let q = format.quantize_block(&block);
        let max = block.iter().fold(0.0f32, |a, &b| a.max(b.abs()));
        prop_assume!(max > 0.0);
        // Grid step: max / (2^(m-1) − 1) scaled to the next power of two —
        // at most 2 · max / levels.
        let levels = ((1u32 << (mantissa - 1)) - 1) as f32;
        let bound = 2.0 * max / levels + 1e-6;
        for (a, b) in block.iter().zip(&q) {
            prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
    }

    #[test]
    fn bfp_quantization_is_idempotent(seed in 0u64..500, mantissa in 3u8..12) {
        let mut rng = Prng::new(seed);
        let block: Vec<f32> = (0..8).map(|_| rng.randn() * 10.0).collect();
        let format = BfpFormat::new(mantissa, 8);
        let once = format.quantize_block(&block);
        let twice = format.quantize_block(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn bfp_preserves_signs_and_zero(seed in 0u64..500) {
        let mut rng = Prng::new(seed);
        let mut block: Vec<f32> = (0..16).map(|_| rng.randn()).collect();
        block[3] = 0.0;
        let q = BfpFormat::bfp8().quantize_block(&block);
        prop_assert_eq!(q[3], 0.0);
        for (a, b) in block.iter().zip(&q) {
            // Quantized values never flip sign (they may flush to zero).
            prop_assert!(*b == 0.0 || a.signum() == b.signum());
        }
    }
}
