//! Integration: checkpoint round trips across the full pipeline — a
//! trained learner saved, reloaded, and resumed must behave like the
//! original.

use chameleon_repro::core::checkpoint::LoadCheckpointError;
use chameleon_repro::core::{
    Chameleon, ChameleonConfig, EvalReport, ModelConfig, Precision, Strategy,
};
use chameleon_repro::stream::{DatasetSpec, DomainIlScenario, StreamConfig};

fn trained_learner_at(
    scenario: &DomainIlScenario,
    model: &ModelConfig,
    precision: Precision,
) -> Chameleon {
    let config = ChameleonConfig {
        long_term_capacity: 40,
        precision,
        ..ChameleonConfig::default()
    };
    let mut learner = Chameleon::new(model, config, 5);
    let stream = StreamConfig::default();
    for domain in 0..2 {
        for batch in scenario.domain_stream(domain, &stream, 9 + domain as u64) {
            learner.observe(&batch);
        }
    }
    learner
}

fn trained_learner(scenario: &DomainIlScenario, model: &ModelConfig) -> Chameleon {
    trained_learner_at(scenario, model, Precision::F32)
}

#[test]
fn checkpoint_preserves_predictions_and_buffers() {
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 30);
    let model = ModelConfig::for_spec(&spec);
    let learner = trained_learner(&scenario, &model);

    let mut blob = Vec::new();
    learner.save_checkpoint(&mut blob).expect("save");
    let restored = Chameleon::load_checkpoint(
        &model,
        ChameleonConfig {
            long_term_capacity: 40,
            ..ChameleonConfig::default()
        },
        5,
        blob.as_slice(),
    )
    .expect("load");

    // Identical classifier behaviour.
    let (x, _) = scenario.test_set();
    assert_eq!(
        learner.logits(x).as_slice(),
        restored.logits(x).as_slice(),
        "restored head must predict identically"
    );
    assert_eq!(learner.short_term_len(), restored.short_term_len());
    assert_eq!(learner.long_term_len(), restored.long_term_len());
}

#[test]
fn restored_learner_continues_training() {
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 31);
    let model = ModelConfig::for_spec(&spec);
    let learner = trained_learner(&scenario, &model);
    let mut blob = Vec::new();
    learner.save_checkpoint(&mut blob).expect("save");
    let mut restored = Chameleon::load_checkpoint(
        &model,
        ChameleonConfig {
            long_term_capacity: 40,
            ..ChameleonConfig::default()
        },
        5,
        blob.as_slice(),
    )
    .expect("load");

    let stream = StreamConfig::default();
    for domain in 2..spec.num_domains {
        for batch in scenario.domain_stream(domain, &stream, 9 + domain as u64) {
            restored.observe(&batch);
        }
    }
    let report = EvalReport::evaluate(&scenario, &restored);
    assert!(
        report.acc_all > 100.0 / spec.num_classes as f32,
        "resumed training collapsed: {}",
        report.acc_all
    );
}

#[test]
fn quantized_checkpoint_roundtrips_bit_stable() {
    // The v3 record (`CHAMLN03`): a quantized learner serializes its
    // packed latent blobs verbatim, so save → load → save is a byte-level
    // fixed point and the restored head predicts identically.
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 35);
    let model = ModelConfig::for_spec(&spec);
    let config = ChameleonConfig {
        long_term_capacity: 40,
        precision: Precision::Int8,
        ..ChameleonConfig::default()
    };
    let learner = trained_learner_at(&scenario, &model, Precision::Int8);

    let mut blob = Vec::new();
    learner.save_checkpoint(&mut blob).expect("save");
    assert_eq!(&blob[..8], b"CHAMLN03", "quantized saves use the v3 magic");
    let restored = Chameleon::load_checkpoint(&model, config, 5, blob.as_slice()).expect("load v3");
    let (x, _) = scenario.test_set();
    assert_eq!(
        learner.logits(x).as_slice(),
        restored.logits(x).as_slice(),
        "restored head must predict identically"
    );
    assert_eq!(learner.short_term_len(), restored.short_term_len());
    assert_eq!(learner.long_term_len(), restored.long_term_len());
    let mut again = Vec::new();
    restored.save_checkpoint(&mut again).expect("re-save");
    assert_eq!(blob, again, "save → load → save must be byte-stable");
}

#[test]
fn v2_checkpoint_reads_back_into_a_quantized_config() {
    // v2→v3 migration: a pre-codec `CHAMLN02` checkpoint loaded under
    // `--precision int8` requantizes its replay buffers onto the int8
    // grid and writes v3 from then on. The head itself is never
    // quantized, so predictions are untouched.
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 30);
    let model = ModelConfig::for_spec(&spec);
    let learner = trained_learner(&scenario, &model);
    let mut blob = Vec::new();
    learner.save_checkpoint(&mut blob).expect("save");
    assert_eq!(&blob[..8], b"CHAMLN02", "f32 saves keep the v2 magic");

    let config = ChameleonConfig {
        long_term_capacity: 40,
        precision: Precision::Int8,
        ..ChameleonConfig::default()
    };
    let migrated = Chameleon::load_checkpoint(&model, config.clone(), 5, blob.as_slice())
        .expect("v2 blob must load under a quantized config");
    let (x, _) = scenario.test_set();
    // The head weights are untouched, but the quantized config runs the
    // chunked forward kernel, so logits agree only to kernel tolerance
    // (tests/kernel_equivalence.rs pins the ULP bound).
    for (&a, &b) in learner
        .logits(x)
        .as_slice()
        .iter()
        .zip(migrated.logits(x).as_slice())
    {
        assert!(
            (a - b).abs() <= 1e-4 * a.abs().max(1.0),
            "migration changed the head beyond kernel tolerance: {a} vs {b}"
        );
    }
    assert_eq!(learner.short_term_len(), migrated.short_term_len());
    assert_eq!(learner.long_term_len(), migrated.long_term_len());

    // The migrated learner saves v3, and from there the roundtrip is a
    // byte-level fixed point.
    let mut v3 = Vec::new();
    migrated.save_checkpoint(&mut v3).expect("save v3");
    assert_eq!(&v3[..8], b"CHAMLN03");
    let reloaded =
        Chameleon::load_checkpoint(&model, config, 5, v3.as_slice()).expect("load migrated");
    let mut again = Vec::new();
    reloaded.save_checkpoint(&mut again).expect("re-save");
    assert_eq!(v3, again, "post-migration saves must be byte-stable");
}

#[test]
fn bad_magic_is_rejected() {
    let model = ModelConfig::for_spec(&DatasetSpec::core50_tiny());
    let blob = b"NOTCHAM0rest-of-garbage".to_vec();
    let err = Chameleon::load_checkpoint(&model, ChameleonConfig::default(), 1, blob.as_slice())
        .expect_err("garbage must not load");
    assert!(matches!(err, LoadCheckpointError::BadMagic), "{err}");
}

#[test]
fn wrong_architecture_is_rejected() {
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 32);
    let model = ModelConfig::for_spec(&spec);
    let learner = trained_learner(&scenario, &model);
    let mut blob = Vec::new();
    learner.save_checkpoint(&mut blob).expect("save");

    // A model with a different latent width must refuse the checkpoint.
    let other = ModelConfig::for_spec(&spec).with_latent_dim(32);
    let err = Chameleon::load_checkpoint(&other, ChameleonConfig::default(), 1, blob.as_slice())
        .expect_err("mismatched architecture must not load");
    assert!(
        matches!(err, LoadCheckpointError::ShapeMismatch { .. }),
        "{err}"
    );
}

#[test]
fn truncated_checkpoint_is_rejected() {
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 33);
    let model = ModelConfig::for_spec(&spec);
    let learner = trained_learner(&scenario, &model);
    let mut blob = Vec::new();
    learner.save_checkpoint(&mut blob).expect("save");
    blob.truncate(blob.len() / 2);
    let err = Chameleon::load_checkpoint(
        &model,
        ChameleonConfig {
            long_term_capacity: 40,
            ..ChameleonConfig::default()
        },
        5,
        blob.as_slice(),
    )
    .expect_err("truncated checkpoint must not load");
    // The v2 envelope reports a cut-short blob as Truncated (or as a CRC
    // mismatch when the cut happens to leave 12+ bytes ending in what reads
    // as a footer).
    assert!(
        matches!(
            err,
            LoadCheckpointError::Truncated | LoadCheckpointError::BadChecksum { .. }
        ),
        "{err}"
    );
}

#[test]
fn every_truncation_point_is_rejected_and_recoverable() {
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 36);
    let model = ModelConfig::for_spec(&spec);
    let learner = trained_learner(&scenario, &model);
    let mut blob = Vec::new();
    learner.save_checkpoint(&mut blob).expect("save");

    // Sweep truncation points (stride keeps runtime sane on large blobs).
    let stride = (blob.len() / 97).max(1);
    for keep in (0..blob.len()).step_by(stride) {
        let cfg = ChameleonConfig {
            long_term_capacity: 40,
            ..ChameleonConfig::default()
        };
        let (fresh, err) = Chameleon::load_or_fresh(&model, cfg, 5, &blob[..keep]);
        assert!(err.is_some(), "truncation at {keep} accepted");
        assert_eq!(fresh.short_term_len(), 0, "recovery learner must be fresh");
    }
}

#[test]
fn corrupted_checkpoints_never_panic() {
    // Fuzz-style robustness: MAGIC followed by arbitrary bytes must decode
    // to an error, never a panic or a bogus learner.
    use chameleon_repro::tensor::Prng;
    let model = ModelConfig::for_spec(&DatasetSpec::core50_tiny());
    let mut rng = Prng::new(99);
    for trial in 0..200 {
        let len = rng.below(256);
        let mut blob = b"CHAMLN01".to_vec();
        for _ in 0..len {
            blob.push((rng.below(256)) as u8);
        }
        let result =
            Chameleon::load_checkpoint(&model, ChameleonConfig::default(), trial, blob.as_slice());
        assert!(
            result.is_err(),
            "garbage blob of {len} bytes decoded successfully"
        );
    }
}

mod arbitrary_bytes {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        // Property: the loader never panics, whatever bytes it is handed —
        // it returns Err for anything that is not a sealed checkpoint, and
        // load_or_fresh always yields a usable learner.
        #[test]
        fn loader_never_panics_on_arbitrary_bytes(
            bytes in proptest::collection::vec(any::<u8>(), 0..512)
        ) {
            let model = ModelConfig::for_spec(&DatasetSpec::core50_tiny());
            let result = Chameleon::load_checkpoint(
                &model,
                ChameleonConfig::default(),
                1,
                bytes.as_slice(),
            );
            // A random blob virtually never carries a valid CRC32 footer.
            prop_assert!(result.is_err());
            let (fresh, err) =
                Chameleon::load_or_fresh(&model, ChameleonConfig::default(), 1, bytes.as_slice());
            prop_assert!(err.is_some());
            prop_assert_eq!(fresh.short_term_len(), 0);
        }

        #[test]
        fn loader_never_panics_with_valid_magic_prefix(
            bytes in proptest::collection::vec(any::<u8>(), 0..512)
        ) {
            let model = ModelConfig::for_spec(&DatasetSpec::core50_tiny());
            let mut blob = b"CHAMLN02".to_vec();
            blob.extend_from_slice(&bytes);
            let result = Chameleon::load_checkpoint(
                &model,
                ChameleonConfig::default(),
                1,
                blob.as_slice(),
            );
            prop_assert!(result.is_err());
        }
    }
}

#[test]
fn bitflipped_valid_checkpoint_errors_or_roundtrips_sanely() {
    use chameleon_repro::tensor::Prng;
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 34);
    let model = ModelConfig::for_spec(&spec);
    let learner = trained_learner(&scenario, &model);
    let mut blob = Vec::new();
    learner.save_checkpoint(&mut blob).expect("save");

    let mut rng = Prng::new(5);
    for _ in 0..50 {
        let mut corrupted = blob.clone();
        // Flip a byte in the length-bearing early section.
        let pos = 8 + rng.below(64.min(corrupted.len() - 8));
        corrupted[pos] ^= 0xFF;
        // Must not panic; may error or (for payload-only flips) load.
        let _ = Chameleon::load_checkpoint(
            &model,
            ChameleonConfig {
                long_term_capacity: 40,
                ..ChameleonConfig::default()
            },
            5,
            corrupted.as_slice(),
        );
    }
}

#[test]
fn stored_precision_sniffs_the_blob_without_a_flag() {
    // `evaluate --load` matches its loading config to the precision the
    // blob records; this pins the sniffing helper it relies on.
    use chameleon_repro::core::checkpoint::stored_precision;
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 35);
    let model = ModelConfig::for_spec(&spec);
    for precision in [Precision::F32, Precision::F16, Precision::Int8] {
        let learner = trained_learner_at(&scenario, &model, precision);
        let mut blob = Vec::new();
        learner.save_checkpoint(&mut blob).expect("save");
        assert_eq!(stored_precision(&blob).expect("sniff"), precision);
        // The sniffed precision must actually open the blob.
        let config = ChameleonConfig {
            long_term_capacity: 40,
            precision: stored_precision(&blob).expect("sniff"),
            ..ChameleonConfig::default()
        };
        Chameleon::load_checkpoint(&model, config, 5, blob.as_slice()).expect("load at sniffed");
    }
    assert!(matches!(
        stored_precision(b"not a checkpoint at all"),
        Err(LoadCheckpointError::BadMagic)
    ));
    assert!(matches!(
        stored_precision(b"CHAM"),
        Err(LoadCheckpointError::Truncated)
    ));
}
