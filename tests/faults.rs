//! Integration: fault injection end to end — the injector's no-op and
//! determinism guarantees, and the hierarchy-model agreement between the
//! fault and hardware crates.

use chameleon_repro::core::{Chameleon, ChameleonConfig, ModelConfig, Strategy, Trainer};
use chameleon_repro::faults::{FaultInjector, FaultPlan, DRAM_TO_SRAM_RATIO};
use chameleon_repro::hw::memsim::SoftErrorModel;
use chameleon_repro::stream::{DatasetSpec, DomainIlScenario, StreamConfig};

fn setup() -> (DomainIlScenario, ModelConfig, Trainer) {
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 21);
    let model = ModelConfig::for_spec(&spec);
    (scenario, model, Trainer::new(StreamConfig::default()))
}

#[test]
fn zero_rate_plan_is_bit_identical_to_no_injector() {
    let (scenario, model, trainer) = setup();

    let mut clean = Chameleon::new(&model, ChameleonConfig::default(), 7);
    let clean_report = trainer.run(&scenario, &mut clean, 7);

    let mut faulted = Chameleon::new(&model, ChameleonConfig::default(), 7);
    let mut injector = FaultInjector::new(FaultPlan::disabled(99));
    let faulted_report = trainer.run_with_faults(&scenario, &mut faulted, 7, &mut injector);

    // Bit-for-bit identical learners: same predictions, same accuracy,
    // and the injector must not have recorded a single event.
    let (x, _) = scenario.test_set();
    let clean_bits: Vec<u32> = clean
        .logits(x)
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let faulted_bits: Vec<u32> = faulted
        .logits(x)
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(
        clean_bits, faulted_bits,
        "zero-rate injector perturbed the run"
    );
    assert_eq!(clean_report.acc_all, faulted_report.acc_all);
    assert!(!injector.stats().any(), "{:?}", injector.stats());
    assert_eq!(clean.resilience(), faulted.resilience());
}

#[test]
fn same_fault_seed_reproduces_identical_runs() {
    let (scenario, model, trainer) = setup();
    let run = |fault_seed: u64| {
        let mut c = Chameleon::new(&model, ChameleonConfig::default(), 7);
        let mut injector = FaultInjector::new(FaultPlan::bit_flips(fault_seed, 1e-5));
        let report = trainer.run_with_faults(&scenario, &mut c, 7, &mut injector);
        let (x, _) = scenario.test_set();
        let bits: Vec<u32> = c.logits(x).as_slice().iter().map(|v| v.to_bits()).collect();
        (report.acc_all, bits, injector.stats(), c.resilience())
    };

    let (acc_a, bits_a, stats_a, res_a) = run(42);
    let (acc_b, bits_b, stats_b, res_b) = run(42);
    assert_eq!(acc_a, acc_b);
    assert_eq!(
        bits_a, bits_b,
        "same fault seed must reproduce bit-identically"
    );
    assert_eq!(stats_a, stats_b);
    assert_eq!(res_a, res_b);
    assert!(stats_a.bits_flipped > 0, "rate 1e-5 injected nothing");

    // A different fault seed lands flips elsewhere.
    let (_, bits_c, stats_c, _) = run(43);
    assert!(
        bits_c != bits_a || stats_c != stats_a,
        "fault seed had no effect"
    );
}

#[test]
fn quarantine_detects_injected_corruption() {
    let (scenario, model, trainer) = setup();
    let mut c = Chameleon::new(&model, ChameleonConfig::default(), 7);
    let mut injector = FaultInjector::new(FaultPlan::bit_flips(1, 1e-4));
    trainer.run_with_faults(&scenario, &mut c, 7, &mut injector);
    assert!(injector.stats().bits_flipped > 0);
    let r = c.resilience();
    assert!(
        r.short_term_evictions + r.long_term_evictions > 0,
        "heavy bit-flip campaign went undetected: {r:?}"
    );
}

#[test]
fn fault_and_hw_crates_agree_on_hierarchy_asymmetry() {
    // The two crates cannot share the constant without a dependency cycle;
    // this pins them together.
    assert_eq!(DRAM_TO_SRAM_RATIO, SoftErrorModel::DRAM_TO_SRAM_RATIO);
}

#[test]
fn injected_checkpoint_damage_is_always_detected() {
    let (scenario, model, trainer) = setup();
    let mut c = Chameleon::new(&model, ChameleonConfig::default(), 7);
    trainer.run(&scenario, &mut c, 7);
    let mut blob = Vec::new();
    c.save_checkpoint(&mut blob).expect("save");

    let plan = FaultPlan {
        checkpoint: chameleon_repro::faults::CheckpointFaultModel {
            truncate_prob: 0.5,
            corrupt_prob: 1.0,
            max_corrupt_bytes: 16,
        },
        ..FaultPlan::disabled(3)
    };
    let mut injector = FaultInjector::new(plan);
    for _ in 0..50 {
        let mut damaged = blob.clone();
        let damage = injector.corrupt_checkpoint(&mut damaged);
        assert!(damage.any(), "checkpoint fault model injected nothing");
        let (fresh, err) =
            Chameleon::load_or_fresh(&model, ChameleonConfig::default(), 7, damaged.as_slice());
        assert!(err.is_some(), "damaged checkpoint loaded cleanly");
        assert_eq!(fresh.short_term_len(), 0);
    }
}
