//! CHAMWIRE frame fuzzer: corrupt, truncated, and oversized frames must
//! produce typed [`WireError`]s — never a panic, and never an allocation
//! sized by attacker-controlled length prefixes.
//!
//! Corruption is driven two ways: structured single-bit/byte mutations at
//! every offset, and the `chameleon-faults` checkpoint damage model
//! (truncation + XOR bursts) applied to encoded frames, so the wire codec
//! is fuzzed by the same machinery the rest of the repo uses for storage
//! faults.

use chameleon_faults::{
    CheckpointFaultModel, FaultInjector, FaultPlan, FileFaultModel, MemoryFaultModel,
    NetFaultModel, StreamFaultModel,
};
use chameleon_serve::wire::{
    decode_frame, encode_frame, ErrorCode, Request, Response, WireError, FRAME_OVERHEAD,
    MAX_PAYLOAD_BYTES, WIRE_MAGIC,
};
use proptest::prelude::*;

/// A fault plan that only damages "checkpoints" (here: encoded frames).
fn frame_damage_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        memory: MemoryFaultModel::disabled(),
        checkpoint: CheckpointFaultModel {
            truncate_prob: 0.5,
            corrupt_prob: 1.0,
            max_corrupt_bytes: 16,
        },
        stream: StreamFaultModel::disabled(),
        file: FileFaultModel::disabled(),
        net: NetFaultModel::disabled(),
    }
}

proptest! {
    #[test]
    fn frame_roundtrip_is_identity(
        payload in prop::collection::vec(0u8..=255, 9..256),
    ) {
        let frame = encode_frame(&payload);
        prop_assert_eq!(frame.len(), payload.len() + FRAME_OVERHEAD);
        let (decoded, used) = decode_frame(&frame, MAX_PAYLOAD_BYTES).expect("roundtrip");
        prop_assert_eq!(&decoded, &payload);
        prop_assert_eq!(used, frame.len());
    }

    #[test]
    fn truncation_at_every_cut_is_a_typed_error(
        payload in prop::collection::vec(0u8..=255, 9..64),
    ) {
        let frame = encode_frame(&payload);
        for cut in 0..frame.len() {
            let err = decode_frame(&frame[..cut], MAX_PAYLOAD_BYTES).unwrap_err();
            // A cut inside the magic can only yield Truncated (waiting for
            // more bytes); anything after the full prefix arrived is also
            // Truncated. BadMagic would mean we misread intact bytes.
            prop_assert!(matches!(err, WireError::Truncated),
                "cut {} gave {:?}", cut, err);
        }
    }

    #[test]
    fn single_bit_flip_never_decodes_to_the_original(
        payload in prop::collection::vec(0u8..=255, 9..64),
        byte_frac in 0.0f64..1.0,
        bit in 0u64..8,
    ) {
        let frame = encode_frame(&payload);
        let index = ((byte_frac * frame.len() as f64) as usize).min(frame.len() - 1);
        let mut mutated = frame.clone();
        mutated[index] ^= 1u8 << bit;
        match decode_frame(&mutated, MAX_PAYLOAD_BYTES) {
            // CRC32 detects all single-bit payload/footer errors; magic and
            // length damage is caught structurally. The only decode that may
            // "succeed" is a shrunken length prefix whose bytes accidentally
            // self-describe — and then the payload cannot equal the original.
            Ok((decoded, _)) => prop_assert_ne!(decoded, payload),
            Err(
                WireError::BadMagic
                | WireError::Truncated
                | WireError::Oversized { .. }
                | WireError::BadChecksum { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation(
        len in (MAX_PAYLOAD_BYTES as u64 + 1..=u32::MAX as u64),
    ) {
        // Header only: magic + hostile length. If decode tried to allocate
        // `len` bytes up front this test would OOM long before failing.
        let mut bytes = Vec::from(&WIRE_MAGIC[..]);
        bytes.extend_from_slice(&(len as u32).to_le_bytes());
        let err = decode_frame(&bytes, MAX_PAYLOAD_BYTES).unwrap_err();
        prop_assert!(matches!(err, WireError::Oversized { .. }), "{:?}", err);
    }

    #[test]
    fn small_payload_cap_is_honored(
        payload in prop::collection::vec(0u8..=255, 9..128),
        cap in 1usize..9,
    ) {
        let frame = encode_frame(&payload);
        let err = decode_frame(&frame, cap).unwrap_err();
        prop_assert!(matches!(err, WireError::Oversized { max, .. } if max == cap as u64),
            "{:?}", err);
    }

    #[test]
    fn garbage_payloads_never_panic_request_or_response_decode(
        payload in prop::collection::vec(0u8..=255, 0..96),
    ) {
        // Any outcome is fine — typed error or a successful decode of a
        // syntactically valid payload — as long as nothing panics and no
        // attacker-sized allocation happens.
        let _ = Request::decode_payload(&payload);
        let _ = Response::decode_payload(&payload);
    }

    #[test]
    fn fault_injected_frame_damage_is_detected(
        seed in 0u64..10_000,
        correlation in 0u64..u64::MAX,
        session in 0u64..1_000,
        batches in 1u32..64,
    ) {
        let request = Request::Step { session, batches };
        let payload = request.encode_payload(correlation);
        let frame = encode_frame(&payload);

        let mut injector = FaultInjector::new(frame_damage_plan(seed));
        let mut damaged = frame.clone();
        let _ = injector.corrupt_checkpoint(&mut damaged);

        if damaged == frame {
            // XOR bursts can cancel out (same byte hit twice); an intact
            // frame must still decode to the original request.
            let (decoded, _) = decode_frame(&damaged, MAX_PAYLOAD_BYTES).expect("intact");
            prop_assert_eq!(Request::decode_payload(&decoded).expect("intact payload").1, request);
        } else {
            if let Ok((decoded, _)) = decode_frame(&damaged, MAX_PAYLOAD_BYTES) {
                prop_assert_ne!(decoded, payload);
            }
        }
    }

    #[test]
    fn request_payloads_roundtrip(
        correlation in 0u64..u64::MAX,
        session in 0u64..u64::MAX,
        batches in 0u32..u32::MAX,
        blob in prop::collection::vec(0u8..=255, 0..64),
        which in 0u8..8,
    ) {
        let request = match which {
            0 => Request::Ping,
            1 => Request::Step { session, batches },
            2 => Request::Predict { session },
            3 => Request::Checkpoint { session },
            4 => Request::Probe,
            5 => Request::HandoffExport { session },
            6 => Request::Handoff { session, blob: blob.clone() },
            _ => Request::Evict { session },
        };
        let payload = request.encode_payload(correlation);
        let (corr, decoded) = Request::decode_payload(&payload).expect("roundtrip");
        prop_assert_eq!(corr, correlation);
        prop_assert_eq!(decoded, request);
    }

    #[test]
    fn response_payloads_roundtrip(
        correlation in 0u64..u64::MAX,
        delivered in 0u32..u32::MAX,
        millis in 0u32..u32::MAX,
        blob in prop::collection::vec(0u8..=255, 0..64),
        acc in 0.0f32..100.0,
        per_domain in prop::collection::vec(0.0f32..100.0, 0..8),
        which in 0u8..9,
    ) {
        let response = match which {
            0 => Response::Pong,
            1 => Response::Stepped { delivered, done: delivered % 2 == 0 },
            2 => Response::Checkpointed(blob.clone()),
            3 => Response::RetryAfter { millis },
            4 => Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("detail {delivered}"),
            },
            5 => Response::ProbeAck(chameleon_serve::wire::ProbeSummary {
                sessions_resident: u64::from(delivered),
                sessions_cold: u64::from(millis),
                in_flight: correlation % 97,
            }),
            6 => Response::HandoffExported(blob.clone()),
            7 => Response::HandoffAck,
            _ => Response::Predicted(chameleon_serve::wire::PredictSummary {
                acc_all: acc,
                per_domain: per_domain.clone(),
                per_class: vec![acc; 3],
                memory_overhead_mb: f64::from(acc) / 4.0,
            }),
        };
        let payload = response.encode_payload(correlation);
        let (corr, decoded) = Response::decode_payload(&payload).expect("roundtrip");
        prop_assert_eq!(corr, correlation);
        prop_assert_eq!(decoded, response);
    }
}

/// Deterministic exhaustive sweep alongside the randomized cases: every
/// single-byte truncation and every single-byte XOR of a realistic frame.
#[test]
fn exhaustive_single_byte_damage_on_a_real_request_frame() {
    let payload = Request::Step {
        session: 42,
        batches: 7,
    }
    .encode_payload(0xDEAD_BEEF);
    let frame = encode_frame(&payload);
    for cut in 0..frame.len() {
        assert!(decode_frame(&frame[..cut], MAX_PAYLOAD_BYTES).is_err());
    }
    for index in 0..frame.len() {
        for bit in 0..8u8 {
            let mut mutated = frame.clone();
            mutated[index] ^= 1 << bit;
            if let Ok((decoded, _)) = decode_frame(&mutated, MAX_PAYLOAD_BYTES) {
                assert_ne!(decoded, payload, "index {index} bit {bit}");
            }
        }
    }
}
