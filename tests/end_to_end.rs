//! Cross-crate integration: the full pipeline — synthetic scenario →
//! online strategies → evaluation — must reproduce the paper's qualitative
//! orderings on the miniature benchmarks.

use chameleon_repro::core::{
    Chameleon, ChameleonConfig, Finetune, Joint, JointConfig, LatentReplay, ModelConfig, Slda,
    SldaConfig, Strategy, Trainer,
};
use chameleon_repro::stream::{DatasetSpec, DomainIlScenario, StreamConfig};
use chameleon_repro::tensor::stats::MeanStd;

fn acc_over_seeds<F>(scenario: &DomainIlScenario, _model: &ModelConfig, factory: F) -> MeanStd
where
    F: Fn(u64) -> Box<dyn Strategy> + Sync,
{
    Trainer::new(StreamConfig::default())
        .run_many(scenario, factory, &[1, 2, 3])
        .acc_all
}

#[test]
fn joint_upper_bounds_everything() {
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 0);
    let model = ModelConfig::for_spec(&spec);
    let joint = acc_over_seeds(&scenario, &model, |s| {
        Box::new(Joint::new(&model, JointConfig::default(), s))
    });
    let finetune = acc_over_seeds(&scenario, &model, |s| Box::new(Finetune::new(&model, s)));
    assert!(
        joint.mean > finetune.mean,
        "joint {} should beat finetune {}",
        joint.mean,
        finetune.mean
    );
}

#[test]
fn chameleon_beats_finetune_with_tiny_memory() {
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 1);
    let model = ModelConfig::for_spec(&spec);
    let config = ChameleonConfig {
        long_term_capacity: 60,
        ..ChameleonConfig::default()
    };
    let chameleon = acc_over_seeds(&scenario, &model, |s| {
        Box::new(Chameleon::new(&model, config.clone(), s))
    });
    let finetune = acc_over_seeds(&scenario, &model, |s| Box::new(Finetune::new(&model, s)));
    assert!(
        chameleon.mean > finetune.mean + 3.0,
        "chameleon {} vs finetune {}",
        chameleon.mean,
        finetune.mean
    );
}

#[test]
fn slda_is_strong_on_both_benchmarks() {
    for (spec, floor) in [
        (DatasetSpec::core50_tiny(), 55.0f32),
        (DatasetSpec::openloris_tiny(), 55.0),
    ] {
        let scenario = DomainIlScenario::generate(&spec, 2);
        let model = ModelConfig::for_spec(&spec);
        let mut slda = Slda::new(&model, SldaConfig::default(), 1);
        let report = Trainer::new(StreamConfig::default()).run(&scenario, &mut slda, 1);
        assert!(
            report.acc_all > floor,
            "{}: SLDA only {}",
            spec.name,
            report.acc_all
        );
    }
}

#[test]
fn openloris_is_easier_than_core50() {
    // The paper's consistent observation: every method scores higher on
    // OpenLORIS (smoother domains, more data).
    let c50 = DatasetSpec::core50_tiny();
    let ol = DatasetSpec::openloris_tiny();
    let s_c50 = DomainIlScenario::generate(&c50, 3);
    let s_ol = DomainIlScenario::generate(&ol, 3);
    let m_c50 = ModelConfig::for_spec(&c50);
    let m_ol = ModelConfig::for_spec(&ol);
    let acc_c50 = acc_over_seeds(&s_c50, &m_c50, |s| {
        Box::new(LatentReplay::new(&m_c50, 60, s))
    });
    let acc_ol = acc_over_seeds(&s_ol, &m_ol, |s| Box::new(LatentReplay::new(&m_ol, 60, s)));
    assert!(
        acc_ol.mean > acc_c50.mean,
        "openloris {} should exceed core50 {}",
        acc_ol.mean,
        acc_c50.mean
    );
}

#[test]
fn bigger_long_term_store_never_hurts_much() {
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 4);
    let model = ModelConfig::for_spec(&spec);
    let small = acc_over_seeds(&scenario, &model, |s| {
        Box::new(Chameleon::new(
            &model,
            ChameleonConfig {
                long_term_capacity: 20,
                ..ChameleonConfig::default()
            },
            s,
        ))
    });
    let large = acc_over_seeds(&scenario, &model, |s| {
        Box::new(Chameleon::new(
            &model,
            ChameleonConfig {
                long_term_capacity: 120,
                ..ChameleonConfig::default()
            },
            s,
        ))
    });
    assert!(
        large.mean + 6.0 > small.mean,
        "LT 120 ({}) much worse than LT 20 ({})",
        large.mean,
        small.mean
    );
}

#[test]
fn finetune_shows_recency_bias_chameleon_does_not() {
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 5);
    let model = ModelConfig::for_spec(&spec);
    let trainer = Trainer::new(StreamConfig::default());

    let mut ft = Finetune::new(&model, 2);
    let ft_report = trainer.run(&scenario, &mut ft, 2);
    let mut ch = Chameleon::new(
        &model,
        ChameleonConfig {
            long_term_capacity: 60,
            ..ChameleonConfig::default()
        },
        2,
    );
    let ch_report = trainer.run(&scenario, &mut ch, 2);

    // Finetune: last domain much better than first. Chameleon: flatter.
    let ft_gap = -ft_report.first_vs_last_domain();
    let ch_gap = -ch_report.first_vs_last_domain();
    assert!(ft_gap > 10.0, "finetune recency gap only {ft_gap}");
    assert!(
        ch_gap < ft_gap,
        "chameleon gap {ch_gap} should be flatter than finetune {ft_gap}"
    );
}
