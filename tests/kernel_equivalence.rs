//! Pins the numeric contract between the scalar reference kernels and
//! the chunked autovectorizable ones (`chameleon_tensor::kernels`), and
//! the fused dequantize-on-read decode path.
//!
//! The contract (documented on the kernels module): reassociating a
//! float reduction changes rounding, so chunked results are not
//! bit-identical to the scalar reference — instead, on the
//! well-conditioned inputs this suite sweeps (no catastrophic
//! cancellation), every chunked dot product lands within **2 ULPs** of
//! the correctly-rounded f64 ground truth and within **8 ULPs** of the
//! scalar reference — the slack is the *scalar* chain's own drift (its
//! single dependent sum reaches 5 ULPs from truth by length 70, the
//! four-lane tree stays at 2). On mixed-sign inputs, where cancellation makes ULP
//! distance meaningless, both kernels stay within a condition-scaled
//! absolute bound of the ground truth. The softmax max-scan is
//! bit-identical (`max` is associative); probabilities carry the same
//! ULP bound. All sweeps include ragged tails — lengths not divisible
//! by the 4-lane chunk width.

use chameleon_core::{Chameleon, ChameleonConfig, ModelConfig, Strategy, Trainer};
use chameleon_nn::{Kernel, Linear};
use chameleon_replay::{decode_latent, decode_latent_into, encode_latent, Precision};
use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};
use chameleon_tensor::kernels::{dot_chunked, matmul_nt_chunked, softmax_chunked, LANES};
use chameleon_tensor::{ops, Matrix, Prng};

/// Maps a float to a sign-magnitude ordered integer so ULP distance is
/// a subtraction. Standard trick; NaN never reaches it in this suite.
fn ordered(x: f32) -> i64 {
    let bits = x.to_bits();
    if bits & 0x8000_0000 != 0 {
        -i64::from(bits & 0x7fff_ffff)
    } else {
        i64::from(bits)
    }
}

fn ulps(a: f32, b: f32) -> u64 {
    (ordered(a) - ordered(b)).unsigned_abs()
}

/// Correctly-rounded ground truth: f64 products accumulated in f64,
/// rounded to f32 once at the end.
fn dot_truth(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| f64::from(x) * f64::from(y))
        .sum::<f64>() as f32
}

/// The scalar reference: the exact sequential `mul → add` chain
/// `Matrix::matmul_nt` runs per output element.
fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    if a.is_empty() {
        return 0.0;
    }
    let a = Matrix::from_vec(1, a.len(), a.to_vec());
    let b = Matrix::from_vec(1, b.len(), b.to_vec());
    a.matmul_nt(&b).as_slice()[0]
}

fn fill(rng: &mut Prng, n: usize, low: f32, high: f32) -> Vec<f32> {
    (0..n).map(|_| rng.uniform_in(low, high)).collect()
}

#[test]
fn dot_chunked_ulp_contract_on_well_conditioned_inputs() {
    // All-positive operands: partial sums grow monotonically, so ULP
    // distance is meaningful and the documented 2/8-ULP bounds must
    // hold at every length, ragged tails included.
    for seed in [3, 17, 92] {
        let mut rng = Prng::new(seed);
        for len in 0..=70 {
            let a = fill(&mut rng, len, 0.25, 1.0);
            let b = fill(&mut rng, len, 0.25, 1.0);
            let chunked = dot_chunked(&a, &b);
            let scalar = dot_scalar(&a, &b);
            let truth = dot_truth(&a, &b);
            assert!(
                ulps(chunked, scalar) <= 8,
                "seed {seed} len {len}: chunked {chunked} vs scalar {scalar} = {} ULPs",
                ulps(chunked, scalar)
            );
            assert!(
                ulps(chunked, truth) <= 2,
                "seed {seed} len {len}: chunked {chunked} vs truth {truth} = {} ULPs",
                ulps(chunked, truth)
            );
        }
    }
}

#[test]
fn dot_chunked_mixed_sign_stays_within_condition_scaled_bound() {
    // Mixed-sign reductions can cancel to near zero, where relative
    // (ULP) comparison is meaningless; the honest bound scales with the
    // mass Σ|aᵢ·bᵢ| that actually flowed through the accumulators.
    for seed in [7, 41, 1234] {
        let mut rng = Prng::new(seed);
        for len in 1..=70 {
            let a = fill(&mut rng, len, -1.0, 1.0);
            let b = fill(&mut rng, len, -1.0, 1.0);
            let mass: f64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| (f64::from(x) * f64::from(y)).abs())
                .sum();
            let bound = f64::from(f32::EPSILON) * mass * len.max(4) as f64;
            let truth = f64::from(dot_truth(&a, &b));
            for (name, got) in [
                ("chunked", dot_chunked(&a, &b)),
                ("scalar", dot_scalar(&a, &b)),
            ] {
                let err = (f64::from(got) - truth).abs();
                assert!(
                    err <= bound,
                    "seed {seed} len {len}: {name} off truth by {err:e} (bound {bound:e})"
                );
            }
        }
    }
}

#[test]
fn matmul_nt_chunked_matches_scalar_across_ragged_shapes() {
    let shapes = [
        (1, 1, 1),
        (2, 2, 2),
        (2, 3, 2),
        (3, 5, 4),
        (4, 6, 3),
        (2, 7, 5),
        (5, 8, 2),
        (3, 13, 3),
        (2, 17, 4),
        (1, 31, 2),
        (2, 33, 2),
        (4, 64, 4),
        (3, 65, 3),
    ];
    let mut rng = Prng::new(2024);
    for (m, k, n) in shapes {
        assert!(
            shapes.iter().any(|&(_, kk, _)| kk % LANES != 0),
            "shape sweep must include ragged inner dims"
        );
        let a = Matrix::from_vec(m, k, fill(&mut rng, m * k, 0.25, 1.0));
        let b = Matrix::from_vec(n, k, fill(&mut rng, n * k, 0.25, 1.0));
        let chunked = matmul_nt_chunked(&a, &b);
        let scalar = a.matmul_nt(&b);
        assert_eq!((chunked.rows(), chunked.cols()), (m, n));
        for i in 0..m {
            for j in 0..n {
                let c = chunked.as_slice()[i * n + j];
                let s = scalar.as_slice()[i * n + j];
                let truth = dot_truth(
                    &a.as_slice()[i * k..(i + 1) * k],
                    &b.as_slice()[j * k..(j + 1) * k],
                );
                assert!(
                    ulps(c, s) <= 8,
                    "{m}x{k}x{n} [{i},{j}]: {c} vs scalar {s} = {} ULPs",
                    ulps(c, s)
                );
                assert!(
                    ulps(c, truth) <= 2,
                    "{m}x{k}x{n} [{i},{j}]: {c} vs truth {truth} = {} ULPs",
                    ulps(c, truth)
                );
            }
        }
    }
}

#[test]
fn softmax_chunked_matches_scalar_within_ulps() {
    let mut rng = Prng::new(77);
    for n in [
        1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 13, 16, 17, 31, 32, 33, 50, 64, 65, 100,
    ] {
        let logits = fill(&mut rng, n, -4.0, 4.0);
        let chunked = softmax_chunked(&logits);
        let scalar = ops::softmax(&logits);
        assert_eq!(chunked.len(), scalar.len());
        let argmax = |p: &[f32]| {
            p.iter()
                .enumerate()
                .max_by(|x, y| x.1.partial_cmp(y.1).expect("finite"))
                .map(|(i, _)| i)
        };
        assert_eq!(argmax(&chunked), argmax(&scalar), "n={n} argmax moved");
        let total: f32 = chunked.iter().sum();
        assert!((total - 1.0).abs() < 1e-5, "n={n} sums to {total}");
        for (i, (&c, &s)) in chunked.iter().zip(&scalar).enumerate() {
            assert!(
                ulps(c, s) <= 4,
                "n={n} [{i}]: {c} vs {s} = {} ULPs",
                ulps(c, s)
            );
        }
    }
    // The max scan is associative, so degenerate inputs take the exact
    // same uniform fallback as the scalar path — bit-identical.
    for degenerate in [vec![f32::NEG_INFINITY; 5], vec![f32::NAN; 3]] {
        let c = softmax_chunked(&degenerate);
        let s = ops::softmax(&degenerate);
        assert_eq!(
            c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            s.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}

#[test]
fn kernel_dispatch_is_bit_exact_per_path() {
    let mut rng = Prng::new(5);
    let logits = fill(&mut rng, 11, -3.0, 3.0);
    let bits = |v: Vec<f32>| v.into_iter().map(f32::to_bits).collect::<Vec<_>>();
    assert_eq!(
        bits(Kernel::Scalar.softmax(&logits)),
        bits(ops::softmax(&logits))
    );
    assert_eq!(
        bits(Kernel::Chunked.softmax(&logits)),
        bits(softmax_chunked(&logits))
    );
}

#[test]
fn linear_forward_with_chunked_stays_close_to_scalar() {
    // Kaiming weights are mixed-sign, so individual outputs can cancel
    // toward zero; the bound is hybrid — tight in ULPs away from zero,
    // absolute near it.
    let mut rng = Prng::new(99);
    for in_features in [5, 13, 16, 33] {
        let layer = Linear::new(in_features, 7, &mut rng);
        let x = Matrix::from_vec(3, in_features, fill(&mut rng, 3 * in_features, -1.0, 1.0));
        let scalar = layer.forward_with(&x, Kernel::Scalar);
        let chunked = layer.forward_with(&x, Kernel::Chunked);
        assert_eq!(
            layer.forward(&x),
            scalar,
            "forward() must be the scalar path"
        );
        for (i, (&c, &s)) in chunked.as_slice().iter().zip(scalar.as_slice()).enumerate() {
            assert!(
                ulps(c, s) <= 8 || (c - s).abs() <= 1e-6,
                "in={in_features} [{i}]: {c} vs {s} ({} ULPs)",
                ulps(c, s)
            );
        }
    }
}

#[test]
fn fused_decode_into_is_bit_identical_to_decode() {
    let mut rng = Prng::new(31);
    for precision in [Precision::F32, Precision::F16, Precision::Int8] {
        let values = fill(&mut rng, 19, -10.0, 10.0);
        let blob = encode_latent(precision, &values);
        let (tag, decoded) = decode_latent(&blob).expect("intact blob");
        // Pre-seeded buffer: the fused path appends after the sentinel.
        let mut out = vec![42.0f32];
        let tag_into = decode_latent_into(&blob, &mut out).expect("intact blob");
        assert_eq!(tag, precision);
        assert_eq!(tag_into, precision);
        assert_eq!(out[0].to_bits(), 42.0f32.to_bits());
        assert_eq!(
            out[1..].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            decoded.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // On error the buffer is untouched.
        let mut out = vec![7.0f32];
        assert!(decode_latent_into(&blob[..3], &mut out).is_err());
        assert_eq!(out, vec![7.0f32]);
    }
}

#[test]
fn quantized_replay_accuracy_delta_is_bounded() {
    // The end-to-end half of the ablation
    // (results/ablation_quantized_latent.md): storing the replay
    // buffers through the int8 codec *and* switching the head to the
    // chunked kernels must stay within run-to-run noise of the f32
    // baseline. Seed std on this benchmark is ~1.5 points; 3.0 is the
    // enforced bound.
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 1);
    let model = ModelConfig::for_spec(&spec);
    let trainer = Trainer::new(StreamConfig::default());
    let acc_at = |precision: Precision| {
        let config = ChameleonConfig {
            long_term_capacity: 60,
            precision,
            ..ChameleonConfig::default()
        };
        trainer
            .run_many(
                &scenario,
                |s| Box::new(Chameleon::new(&model, config.clone(), s)) as Box<dyn Strategy>,
                &[1, 2, 3],
            )
            .acc_all
            .mean
    };
    let f32_acc = acc_at(Precision::F32);
    let int8_acc = acc_at(Precision::Int8);
    assert!(
        (f32_acc - int8_acc).abs() <= 3.0,
        "quantized accuracy drifted: f32 {f32_acc} vs int8 {int8_acc}"
    );
}
