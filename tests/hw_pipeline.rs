//! Cross-crate integration: strategy traces recorded during real training
//! runs, priced through the hardware models, must reproduce Table II's
//! orderings.

use chameleon_repro::core::{
    Chameleon, ChameleonConfig, Er, LatentReplay, ModelConfig, Slda, SldaConfig, Strategy,
};
use chameleon_repro::hw::{
    Device, JetsonNano, NominalModel, SystolicAccelerator, Workload, Zcu102,
};
use chameleon_repro::stream::{DatasetSpec, DomainIlScenario, StreamConfig};

fn trace(mut strategy: Box<dyn Strategy>) -> Workload {
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 20);
    // Paper hardware configuration: batch size one.
    let stream = StreamConfig {
        batch_size: 1,
        ..StreamConfig::default()
    };
    for domain in 0..spec.num_domains {
        for batch in scenario.domain_stream(domain, &stream, 3 + domain as u64) {
            strategy.observe(&batch);
        }
    }
    Workload::from_trace(
        &strategy.trace().per_input().expect("inputs observed"),
        &NominalModel::mobilenet_v1(),
    )
}

fn workloads() -> (Workload, Workload, Workload) {
    let spec = DatasetSpec::core50_tiny();
    let model = ModelConfig::for_spec(&spec);
    let chameleon = trace(Box::new(Chameleon::new(
        &model,
        ChameleonConfig {
            long_term_capacity: 60,
            ..ChameleonConfig::default()
        },
        1,
    )));
    let latent = trace(Box::new(LatentReplay::new(&model, 60, 1)));
    let slda = trace(Box::new(Slda::new(&model, SldaConfig::default(), 1)));
    (chameleon, latent, slda)
}

#[test]
fn table2_jetson_ordering() {
    let (ch, lr, sl) = workloads();
    let gpu = JetsonNano::new();
    let c = gpu.cost(&ch);
    let l = gpu.cost(&lr);
    let s = gpu.cost(&sl);
    // Paper: Chameleon 33 < SLDA 69 < Latent Replay 115 ms.
    assert!(
        c.latency_ms < s.latency_ms,
        "chameleon {} vs slda {}",
        c.latency_ms,
        s.latency_ms
    );
    assert!(
        s.latency_ms < l.latency_ms,
        "slda {} vs latent {}",
        s.latency_ms,
        l.latency_ms
    );
    assert!(c.energy_j < l.energy_j);
}

#[test]
fn table2_fpga_ordering_and_factor() {
    let (ch, lr, _) = workloads();
    let fpga = Zcu102::new();
    let c = fpga.cost(&ch);
    let l = fpga.cost(&lr);
    let latency_ratio = l.latency_ms / c.latency_ms;
    let energy_ratio = l.energy_j / c.energy_j;
    // Paper: 6.75× / 7.07×; our first-order model must stay in the same
    // multi-fold regime.
    assert!(latency_ratio > 2.5, "latency ratio {latency_ratio}");
    assert!(energy_ratio > 2.5, "energy ratio {energy_ratio}");
}

#[test]
fn table2_edgetpu_slda_penalty() {
    let (ch, _, sl) = workloads();
    let tpu = SystolicAccelerator::new();
    let c = tpu.cost(&ch);
    let s = tpu.cost(&sl);
    // Paper: 11.7× — the O(N³) pseudo-inverse dominates.
    let ratio = s.latency_ms / c.latency_ms;
    assert!(ratio > 4.0, "EdgeTPU SLDA/Chameleon ratio {ratio}");
}

#[test]
fn raw_replay_pays_trunk_reextraction() {
    let spec = DatasetSpec::core50_tiny();
    let model = ModelConfig::for_spec(&spec);
    let er = trace(Box::new(Er::new(&model, 60, 1)));
    let (_, lr, _) = workloads();
    // ER re-runs the trunk for every replayed raw image; latent replay
    // does not.
    assert!(
        er.trunk_macs > 2.0 * lr.trunk_macs,
        "ER trunk {} vs LR trunk {}",
        er.trunk_macs,
        lr.trunk_macs
    );
    // And its replay bytes are raw-sized (48 KB) not latent-sized (32 KB).
    assert!(er.offchip_replay_bytes > lr.offchip_replay_bytes);
}

#[test]
fn chameleon_offchip_traffic_is_an_order_below_latent_replay() {
    let (ch, lr, _) = workloads();
    assert!(
        lr.offchip_replay_bytes > 5.0 * ch.offchip_replay_bytes,
        "LR {} bytes vs Chameleon {} bytes off-chip",
        lr.offchip_replay_bytes,
        ch.offchip_replay_bytes
    );
    assert!(
        ch.onchip_bytes > 0.0,
        "chameleon must use the on-chip store"
    );
    assert_eq!(lr.onchip_bytes, 0.0, "latent replay has no on-chip store");
}

#[test]
fn resource_model_matches_table3_exactly() {
    let usage = Zcu102::new().resources();
    assert_eq!((usage.dsp, usage.bram, usage.lut), (1164, 632, 169_428));
}
