//! Simulation-harness contract at the workspace level: a range of
//! scheduler seeds holds the shard-count-invariance and
//! replay-determinism invariants, the committed golden corpus matches a
//! fresh derivation, and the drift gate demonstrably fails when pinned
//! bytes change without a version bump.

use std::path::PathBuf;

use chameleon_simtest::{check_seed, derive_corpus, diff, golden, parse, soak, SoakConfig};

/// Seeds the in-test sweep covers. The CI soak job drives 200+ seeds
/// through the release binary (`chameleon simtest --seeds 200`); here a
/// smaller default keeps `cargo test` snappy. Raise it via
/// `CHAM_SIMTEST_SEEDS` for a deeper local run.
fn seeds_to_sweep() -> u64 {
    std::env::var("CHAM_SIMTEST_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30)
}

fn committed_golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn a_seed_range_holds_the_simulation_invariants() {
    let scenario = golden::golden_scenario();
    let config = SoakConfig {
        start_seed: 0,
        seeds: seeds_to_sweep(),
        budget: None,
    };
    let report = soak::run(&scenario, &config, |_, _| {});
    assert_eq!(report.checked, config.seeds);
    assert!(
        report.all_passed(),
        "seeds violated invariants: {:#?}",
        report.failures
    );
    // The sweep must exercise both the clean and the fault-injected
    // halves of the seed space.
    assert!(report.faulted > 0, "no faulted seeds in the sweep");
    assert!(
        report.faulted < report.checked,
        "no clean seeds in the sweep"
    );
}

#[test]
fn a_seed_reproduces_its_outcome_bit_for_bit() {
    let scenario = golden::golden_scenario();
    let first = check_seed(&scenario, 5).expect("invariants hold");
    let second = check_seed(&scenario, 5).expect("invariants hold");
    assert_eq!(first, second, "same seed, different outcome");
}

#[test]
fn committed_golden_corpus_matches_a_fresh_derivation() {
    let dir = committed_golden_dir();
    for derived in derive_corpus() {
        let path = dir.join(derived.file);
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{} unreadable ({e}) — regenerate with \
                 `cargo run -p chameleon-cli -- simtest --regen-golden` and commit it",
                path.display()
            )
        });
        let committed = parse(derived.file, &text).expect("committed corpus parses");
        let findings = diff(&committed, &derived);
        assert!(findings.is_empty(), "golden drift: {findings:#?}");
    }
}

/// The acceptance property of the drift gate itself: flipping one byte
/// of a pinned CHAMWIRE frame or CHAMFLT1 checkpoint without bumping
/// the format version must produce a failure finding.
#[test]
fn drift_gate_fails_on_unbumped_wire_and_checkpoint_byte_changes() {
    let dir = committed_golden_dir();
    for file in ["wire_frames.golden", "checkpoints.golden"] {
        let derived = derive_corpus()
            .into_iter()
            .find(|f| f.file == file)
            .expect("family derived");
        let text = std::fs::read_to_string(dir.join(file)).expect("committed corpus");
        // Tamper: flip the last hex nibble of the first pinned value.
        let tampered = {
            let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
            let line = lines
                .iter_mut()
                .find(|l| l.contains(" = "))
                .expect("an entry line");
            let last = line.pop().expect("non-empty value");
            line.push(if last == '0' { '1' } else { '0' });
            lines.join("\n")
        };
        let committed = parse(derived.file, &tampered).expect("tampered corpus still parses");
        let findings = diff(&committed, &derived);
        assert!(
            findings
                .iter()
                .any(|f| f.contains("WITHOUT a version bump")),
            "{file}: unbumped byte change not flagged: {findings:#?}"
        );
    }
}

/// A deliberate format change (bumped version line) is reported as
/// "regenerate", not as silent drift.
#[test]
fn drift_gate_asks_for_regeneration_on_a_version_bump() {
    let derived = derive_corpus().into_iter().next().expect("wire family");
    let mut committed = derived.clone();
    committed.version = format!("{}-old", derived.version);
    let findings = diff(&committed, &derived);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert!(findings[0].contains("regenerate"), "{findings:#?}");
}
